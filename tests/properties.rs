//! Property-style tests over the core data structures and analyses.
//!
//! These were originally written with `proptest`; the build environment
//! has no registry access, so they now run as deterministic seeded
//! sweeps over the same input distributions, drawn from the vendored
//! `rand` shim. Coverage per property matches the old case counts.

use calibrate::fit::fit_monotone_table;
use crystal::analyzer::{analyze, Edge, Scenario};
use crystal::models::ModelKind;
use crystal::rctree::{uniform_ladder, RcTree};
use crystal::tech::{SlopeTable, Technology};
use mosnet::generators::{inverter_chain, pass_chain, random_network, RandomNetworkConfig, Style};
use mosnet::units::{Farads, Ohms, Seconds};
use mosnet::{sim_format, spice_format};
use rand::{rngs::StdRng, Rng, SeedableRng};

const CASES: usize = 64;

/// Any random network survives a `.sim` write/parse round trip with
/// identical structure.
#[test]
fn sim_format_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0x51A1);
    for case in 0..CASES {
        let net = random_network(RandomNetworkConfig {
            nodes: rng.gen_range(3usize..20),
            transistors: rng.gen_range(1usize..30),
            style: Style::Cmos,
            seed: rng.gen_range(0u64..500),
        })
        .expect("valid config");
        let text = sim_format::write(&net);
        let back = sim_format::parse(&text, net.name()).expect("own output parses");
        assert_eq!(net.node_count(), back.node_count(), "case {case}");
        assert_eq!(
            net.transistor_count(),
            back.transistor_count(),
            "case {case}"
        );
        for (_, n) in net.nodes() {
            let id2 = back.node_by_name(n.name()).expect("name preserved");
            assert_eq!(n.kind(), back.node(id2).kind(), "case {case}");
            assert!(
                (n.capacitance().femto() - back.node(id2).capacitance().femto()).abs() < 1e-6,
                "case {case}"
            );
        }
    }
}

/// SPICE round trip preserves device counts and kinds.
#[test]
fn spice_format_roundtrip() {
    for seed in 0u64..CASES as u64 {
        let net = random_network(RandomNetworkConfig {
            seed: seed * 7 + 1,
            ..Default::default()
        })
        .expect("valid config");
        let deck = spice_format::write(&net);
        let back = spice_format::parse(&deck, net.name()).expect("own deck parses");
        assert_eq!(
            net.transistor_count(),
            back.transistor_count(),
            "seed {seed}"
        );
        let kinds = |n: &mosnet::Network| {
            let mut v: Vec<_> = n.transistors().map(|(_, t)| t.kind()).collect();
            v.sort_by_key(|k| k.index());
            v
        };
        assert_eq!(kinds(&net), kinds(&back), "seed {seed}");
    }
}

/// Elmore delay always lies between the Penfield–Rubinstein bounds'
/// lower edge and the lumped product, on arbitrary random trees.
#[test]
fn tree_delay_orderings() {
    for seed in 0u64..CASES as u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = RcTree::new();
        let mut nodes = vec![tree.root()];
        for _ in 0..rng.gen_range(1..10) {
            let parent = nodes[rng.gen_range(0..nodes.len())];
            let idx = tree.add_child(
                parent,
                Ohms(rng.gen_range(10.0..1e5)),
                Farads(rng.gen_range(1e-15..1e-12)),
                None,
            );
            nodes.push(idx);
        }
        let target = *nodes.last().expect("nonempty");
        let elmore = tree.elmore(target);
        let (r, c) = tree.lumped(target);
        let lumped = r * c;
        let (lower, upper) = tree.delay_bounds(target, 0.5);
        assert!(lower <= upper, "seed {seed}");
        assert!(elmore.value() <= lumped.value() + 1e-18, "seed {seed}");
        assert!(lower.value() <= elmore.value() + 1e-18, "seed {seed}");
    }
}

/// Slope tables evaluate monotonically after a monotone fit.
#[test]
fn slope_table_eval_monotone() {
    let mut rng = StdRng::seed_from_u64(0x5107E);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..8);
        let points: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen_range(0.0..100.0), rng.gen_range(0.1..10.0)))
            .collect();
        let Ok(table) = fit_monotone_table(&points) else {
            continue; // mirrors the old prop_assume! on fit failure
        };
        let table: SlopeTable = table;
        let mut last = f64::MIN;
        for i in 0..200 {
            let v = table.eval(i as f64 * 0.6);
            assert!(v >= last - 1e-12, "case {case}");
            last = v;
        }
    }
}

/// Analyzer delays grow monotonically with output load for every
/// model (more capacitance can never be faster).
#[test]
fn analyzer_monotone_in_load() {
    let tech = Technology::nominal();
    let mut rng = StdRng::seed_from_u64(0x10AD);
    for case in 0..16 {
        let load_femto = rng.gen_range(20.0..500.0);
        let small =
            inverter_chain(Style::Cmos, 2, 2.0, Farads::from_femto(load_femto)).expect("valid");
        let large = inverter_chain(Style::Cmos, 2, 2.0, Farads::from_femto(load_femto * 2.0))
            .expect("valid");
        for model in ModelKind::ALL {
            let d = |net: &mosnet::Network| {
                let input = net.node_by_name("in").expect("in");
                let out = net.node_by_name("out").expect("out");
                analyze(net, &tech, model, &Scenario::step(input, Edge::Rising))
                    .expect("analyzes")
                    .delay_to(net, out)
                    .expect("switches")
                    .time
            };
            assert!(
                d(&large) > d(&small),
                "{model} not monotone in load (case {case})"
            );
        }
    }
}

/// Slope-model delay is monotone in the input transition time.
#[test]
fn slope_monotone_in_input_transition() {
    let tech = Technology::nominal();
    let net = inverter_chain(Style::Cmos, 1, 1.0, Farads::from_femto(100.0)).expect("valid");
    let input = net.node_by_name("in").expect("in");
    let out = net.node_by_name("out").expect("out");
    let d = |tr: f64| {
        let s = Scenario::step(input, Edge::Rising).with_input_transition(Seconds::from_nanos(tr));
        analyze(&net, &tech, ModelKind::Slope, &s)
            .expect("analyzes")
            .delay_to(&net, out)
            .expect("switches")
            .time
    };
    let mut rng = StdRng::seed_from_u64(0x7124);
    for case in 0..32 {
        let t1 = rng.gen_range(0.0..5.0);
        let dt = rng.gen_range(0.1..10.0);
        assert!(d(t1 + dt) >= d(t1), "case {case}: t1={t1} dt={dt}");
    }
}

/// Pass-chain delay is strictly increasing in chain length for all
/// models, and superlinear for the lumped model.
#[test]
fn pass_chain_length_scaling() {
    let tech = Technology::nominal();
    let d = |n: usize, model: ModelKind| {
        let net = pass_chain(
            Style::Cmos,
            n,
            Farads::from_femto(50.0),
            Farads::from_femto(100.0),
        )
        .expect("valid");
        let input = net.node_by_name("in").expect("in");
        let ctl = net.node_by_name("ctl").expect("ctl");
        let out = net.node_by_name("out").expect("out");
        let s = Scenario::step(input, Edge::Falling).with_static(ctl, true);
        analyze(&net, &tech, model, &s)
            .expect("analyzes")
            .delay_to(&net, out)
            .expect("switches")
            .time
            .value()
    };
    for base in 1usize..4 {
        for model in ModelKind::ALL {
            assert!(d(base + 1, model) > d(base, model), "base {base} {model}");
        }
        // Lumped grows faster than linearly: d(2n) > 2 d(n).
        assert!(
            d(base * 2, ModelKind::Lumped) > 2.0 * d(base, ModelKind::Lumped),
            "base {base}"
        );
    }
}

/// Ladder helper sanity: uniform ladders match the closed-form Elmore
/// sum for many sizes.
#[test]
fn ladder_closed_form() {
    for n in 1..=20 {
        let (tree, e) = uniform_ladder(n, Ohms(500.0), Farads(2e-14), Farads(2e-14));
        let rc = 500.0 * 2e-14;
        let expect = (n * (n + 1)) as f64 / 2.0 * rc;
        assert!((tree.elmore(e).value() - expect).abs() < 1e-18, "n={n}");
    }
}
