//! Property-based tests over the core data structures and analyses.

use crystal::analyzer::{analyze, Edge, Scenario};
use crystal::models::ModelKind;
use crystal::rctree::{uniform_ladder, RcTree};
use crystal::tech::{SlopeTable, Technology};
use mosnet::generators::{inverter_chain, pass_chain, random_network, RandomNetworkConfig, Style};
use mosnet::units::{Farads, Ohms, Seconds};
use mosnet::{sim_format, spice_format};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any random network survives a `.sim` write/parse round trip with
    /// identical structure.
    #[test]
    fn sim_format_roundtrip(seed in 0u64..500, nodes in 3usize..20, ts in 1usize..30) {
        let net = random_network(RandomNetworkConfig {
            nodes,
            transistors: ts,
            style: Style::Cmos,
            seed,
        }).expect("valid config");
        let text = sim_format::write(&net);
        let back = sim_format::parse(&text, net.name()).expect("own output parses");
        prop_assert_eq!(net.node_count(), back.node_count());
        prop_assert_eq!(net.transistor_count(), back.transistor_count());
        for (id, n) in net.nodes() {
            let id2 = back.node_by_name(n.name()).expect("name preserved");
            prop_assert_eq!(n.kind(), back.node(id2).kind());
            prop_assert!((n.capacitance().femto() - back.node(id2).capacitance().femto()).abs() < 1e-6);
            let _ = id;
        }
    }

    /// SPICE round trip preserves device counts and kinds.
    #[test]
    fn spice_format_roundtrip(seed in 0u64..500) {
        let net = random_network(RandomNetworkConfig { seed, ..Default::default() })
            .expect("valid config");
        let deck = spice_format::write(&net);
        let back = spice_format::parse(&deck, net.name()).expect("own deck parses");
        prop_assert_eq!(net.transistor_count(), back.transistor_count());
        let kinds = |n: &mosnet::Network| {
            let mut v: Vec<_> = n.transistors().map(|(_, t)| t.kind()).collect();
            v.sort_by_key(|k| k.index());
            v
        };
        prop_assert_eq!(kinds(&net), kinds(&back));
    }

    /// Elmore delay always lies between the Penfield–Rubinstein bounds'
    /// lower edge and the lumped product, on arbitrary random trees.
    #[test]
    fn tree_delay_orderings(seed in 0u64..1000) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut tree = RcTree::new();
        let mut nodes = vec![tree.root()];
        for _ in 0..rng.gen_range(1..10) {
            let parent = nodes[rng.gen_range(0..nodes.len())];
            let idx = tree.add_child(
                parent,
                Ohms(rng.gen_range(10.0..1e5)),
                Farads(rng.gen_range(1e-15..1e-12)),
                None,
            );
            nodes.push(idx);
        }
        let target = *nodes.last().expect("nonempty");
        let elmore = tree.elmore(target);
        let (r, c) = tree.lumped(target);
        let lumped = r * c;
        let (lower, upper) = tree.delay_bounds(target, 0.5);
        prop_assert!(lower <= upper);
        prop_assert!(elmore.value() <= lumped.value() + 1e-18);
        prop_assert!(lower.value() <= elmore.value() + 1e-18);
    }

    /// Slope tables evaluate monotonically after a monotone fit.
    #[test]
    fn slope_table_eval_monotone(points in prop::collection::vec((0.0f64..100.0, 0.1f64..10.0), 1..8)) {
        let fitted = calibrate::fit::fit_monotone_table(&points);
        prop_assume!(fitted.is_ok());
        let table: SlopeTable = fitted.expect("checked");
        let mut last = f64::MIN;
        for i in 0..200 {
            let v = table.eval(i as f64 * 0.6);
            prop_assert!(v >= last - 1e-12);
            last = v;
        }
    }

    /// Analyzer delays grow monotonically with output load for every
    /// model (more capacitance can never be faster).
    #[test]
    fn analyzer_monotone_in_load(load_femto in 20.0f64..500.0) {
        let tech = Technology::nominal();
        let small = inverter_chain(Style::Cmos, 2, 2.0, Farads::from_femto(load_femto)).expect("valid");
        let large = inverter_chain(Style::Cmos, 2, 2.0, Farads::from_femto(load_femto * 2.0)).expect("valid");
        for model in ModelKind::ALL {
            let d = |net: &mosnet::Network| {
                let input = net.node_by_name("in").expect("in");
                let out = net.node_by_name("out").expect("out");
                analyze(net, &tech, model, &Scenario::step(input, Edge::Rising))
                    .expect("analyzes")
                    .delay_to(net, out)
                    .expect("switches")
                    .time
            };
            prop_assert!(d(&large) > d(&small), "{} not monotone in load", model);
        }
    }

    /// Slope-model delay is monotone in the input transition time.
    #[test]
    fn slope_monotone_in_input_transition(t1 in 0.0f64..5.0, dt in 0.1f64..10.0) {
        let tech = Technology::nominal();
        let net = inverter_chain(Style::Cmos, 1, 1.0, Farads::from_femto(100.0)).expect("valid");
        let input = net.node_by_name("in").expect("in");
        let out = net.node_by_name("out").expect("out");
        let d = |tr: f64| {
            let s = Scenario::step(input, Edge::Rising)
                .with_input_transition(Seconds::from_nanos(tr));
            analyze(&net, &tech, ModelKind::Slope, &s)
                .expect("analyzes")
                .delay_to(&net, out)
                .expect("switches")
                .time
        };
        prop_assert!(d(t1 + dt) >= d(t1));
    }

    /// Pass-chain delay is strictly increasing in chain length for all
    /// models, and superlinear for the lumped model.
    #[test]
    fn pass_chain_length_scaling(base in 1usize..4) {
        let tech = Technology::nominal();
        let d = |n: usize, model: ModelKind| {
            let net = pass_chain(
                Style::Cmos,
                n,
                Farads::from_femto(50.0),
                Farads::from_femto(100.0),
            ).expect("valid");
            let input = net.node_by_name("in").expect("in");
            let ctl = net.node_by_name("ctl").expect("ctl");
            let out = net.node_by_name("out").expect("out");
            let s = Scenario::step(input, Edge::Falling).with_static(ctl, true);
            analyze(&net, &tech, model, &s)
                .expect("analyzes")
                .delay_to(&net, out)
                .expect("switches")
                .time
                .value()
        };
        for model in ModelKind::ALL {
            prop_assert!(d(base + 1, model) > d(base, model));
        }
        // Lumped grows faster than linearly: d(2n) > 2 d(n).
        prop_assert!(d(base * 2, ModelKind::Lumped) > 2.0 * d(base, ModelKind::Lumped));
    }
}

/// Ladder helper sanity outside proptest: uniform ladders match the
/// closed-form Elmore sum for many sizes.
#[test]
fn ladder_closed_form() {
    for n in 1..=20 {
        let (tree, e) = uniform_ladder(n, Ohms(500.0), Farads(2e-14), Farads(2e-14));
        let rc = 500.0 * 2e-14;
        let expect = (n * (n + 1)) as f64 / 2.0 * rc;
        assert!((tree.elmore(e).value() - expect).abs() < 1e-18, "n={n}");
    }
}
