//! The switch-level logic simulator must agree with the circuit
//! simulator's DC operating point on every steady state of the benchmark
//! gates — `crystal::logic` is the analyzer's ground truth for which
//! nodes switch, so it has to match the device physics.

use crystal::logic::{self, LogicValue};
use mosnet::generators::{decoder2to4, inverter, nand, nor, Style};
use mosnet::units::Farads;
use mosnet::{Network, NodeId};
use nanospice::devices::Waveshape;
use nanospice::{elaborate, MosModelSet, Simulator};
use std::collections::HashMap;

/// DC-solves the network with the given input levels and returns each
/// requested node's voltage.
fn op_voltages(net: &Network, inputs: &HashMap<NodeId, bool>, probe: &[NodeId]) -> Vec<f64> {
    let models = MosModelSet::default();
    let drives: HashMap<NodeId, Waveshape> = net
        .inputs()
        .into_iter()
        .map(|n| {
            let level = inputs.get(&n).copied().unwrap_or(false);
            (n, Waveshape::Dc(if level { models.vdd } else { 0.0 }))
        })
        .collect();
    let elab = elaborate(net, &models, &drives);
    let sim = Simulator::new(&elab.circuit);
    let x = sim.op().expect("operating point converges");
    probe
        .iter()
        .map(|&n| match elab.terminal(n) {
            nanospice::devices::NodeRef::Ground => 0.0,
            nanospice::devices::NodeRef::Node(i) => x[i],
        })
        .collect()
}

/// Checks logic-vs-OP agreement for one circuit over all input vectors.
fn check_all_vectors(net: &Network, outputs: &[&str]) {
    let inputs = net.inputs();
    assert!(inputs.len() <= 4, "exhaustive check limited to 4 inputs");
    let probes: Vec<NodeId> = outputs
        .iter()
        .map(|name| net.node_by_name(name).expect("output exists"))
        .collect();
    for vector in 0..(1u32 << inputs.len()) {
        let assignment: HashMap<NodeId, bool> = inputs
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, vector >> i & 1 == 1))
            .collect();
        let state = logic::solve(net, &assignment);
        let voltages = op_voltages(net, &assignment, &probes);
        for (&probe, &v) in probes.iter().zip(&voltages) {
            let expected = state.value(probe);
            // Ratioed logic leaves the low level above ground; use the
            // midpoint as the discriminator.
            let simulated = if v > 2.5 {
                LogicValue::One
            } else {
                LogicValue::Zero
            };
            if expected.is_known() {
                assert_eq!(
                    expected,
                    simulated,
                    "{}: vector {vector:b}, node {}, v = {v:.2}",
                    net.name(),
                    net.node(probe).name()
                );
            }
        }
    }
}

#[test]
fn inverters_agree() {
    for style in [Style::Cmos, Style::Nmos] {
        let net = inverter(style, Farads::from_femto(20.0));
        check_all_vectors(&net, &["out"]);
    }
}

#[test]
fn nand_gates_agree() {
    for style in [Style::Cmos, Style::Nmos] {
        for k in [2, 3] {
            let net = nand(style, k, Farads::from_femto(20.0)).unwrap();
            check_all_vectors(&net, &["out"]);
        }
    }
}

#[test]
fn nor_gates_agree() {
    for style in [Style::Cmos, Style::Nmos] {
        for k in [2, 3] {
            let net = nor(style, k, Farads::from_femto(20.0)).unwrap();
            check_all_vectors(&net, &["out"]);
        }
    }
}

#[test]
fn decoder_agrees() {
    let net = decoder2to4(Style::Cmos, Farads::from_femto(20.0)).unwrap();
    check_all_vectors(&net, &["w0", "w1", "w2", "w3"]);
}
