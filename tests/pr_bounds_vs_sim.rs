//! Physics validation of the RC-tree machinery: on randomly generated
//! pure-RC trees, the simulated 50% step-response time must fall inside
//! the Penfield–Rubinstein-style bounds computed by `crystal::rctree`,
//! with the Elmore delay at or above the lower bound.
//!
//! Because the circuits are linear, `nanospice` solves them essentially
//! exactly, making this a strong check of the bound formulas.

use crystal::rctree::RcTree;
use mosnet::units::{Farads, Ohms};
use nanospice::devices::{NodeRef, Waveshape};
use nanospice::{Circuit, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random RC tree plus the matching nanospice circuit. Returns
/// `(tree, target_index, circuit, target_node_name)`.
fn random_tree(seed: u64) -> (RcTree, usize, Circuit) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..9);
    let mut tree = RcTree::new();
    let mut ckt = Circuit::new();
    let root = ckt.add_node("root");
    // Ideal step at the root.
    ckt.add_vsource(
        root,
        NodeRef::Ground,
        Waveshape::Pwl(vec![(0.0, 0.0), (1e-15, 1.0)]),
    );
    let mut sim_nodes = vec![root];
    let mut tree_nodes = vec![tree.root()];
    for i in 0..n {
        let parent = rng.gen_range(0..tree_nodes.len());
        let r = rng.gen_range(100.0..10_000.0);
        let c = rng.gen_range(10e-15..500e-15);
        let t_idx = tree.add_child(tree_nodes[parent], Ohms(r), Farads(c), None);
        let s_node = ckt.add_node(format!("n{i}"));
        ckt.add_resistor(sim_nodes[parent], s_node, r);
        ckt.add_capacitor(s_node, NodeRef::Ground, c);
        tree_nodes.push(t_idx);
        sim_nodes.push(s_node);
    }
    // Target: the deepest node added last (always a real tree node).
    let target = *tree_nodes.last().expect("at least one child");
    (tree, target, ckt)
}

#[test]
fn simulated_t50_falls_within_pr_bounds() {
    for seed in 0..24u64 {
        let (tree, target, ckt) = random_tree(seed);
        let (lower, upper) = tree.delay_bounds(target, 0.5);
        let elmore = tree.elmore(target);

        // Simulate long enough for the slowest plausible settling.
        let tstop = (10.0 * tree.t_di().value()).max(1e-9);
        let dt = tstop / 8000.0;
        let sim = Simulator::new(&ckt);
        let result = sim.transient(tstop, dt).expect("linear circuit converges");
        let name = format!("n{}", tree.len() - 2); // last added child
        let wave = result.voltage_by_name(&name).expect("target exists");
        let t50 = wave
            .crossing(0.5, true, 0.0)
            .expect("step response reaches 50%");

        let tol = 2.0 * dt; // discretization slack
        assert!(
            t50 >= lower.value() - tol,
            "seed {seed}: t50 {t50:.3e} below lower bound {:.3e}",
            lower.value()
        );
        assert!(
            t50 <= upper.value() + tol,
            "seed {seed}: t50 {t50:.3e} above upper bound {:.3e}",
            upper.value()
        );
        // Elmore (the first moment) is a classical upper estimate of t50
        // for RC trees under step input.
        assert!(
            elmore.value() >= t50 - tol,
            "seed {seed}: elmore {:.3e} below simulated t50 {t50:.3e}",
            elmore.value()
        );
    }
}

#[test]
fn bounds_tighten_for_single_segment() {
    // Degenerate check: one RC, bounds collapse to the exact answer.
    let mut tree = RcTree::new();
    let t = tree.add_child(tree.root(), Ohms(1000.0), Farads(100e-15), None);
    let (lower, upper) = tree.delay_bounds(t, 0.5);
    assert!((upper.value() - lower.value()) < 1e-15 * 1e3);

    let mut ckt = Circuit::new();
    let root = ckt.add_node("root");
    ckt.add_vsource(
        root,
        NodeRef::Ground,
        Waveshape::Pwl(vec![(0.0, 0.0), (1e-15, 1.0)]),
    );
    let out = ckt.add_node("out");
    ckt.add_resistor(root, out, 1000.0);
    ckt.add_capacitor(out, NodeRef::Ground, 100e-15);
    let sim = Simulator::new(&ckt);
    let result = sim.transient(2e-9, 0.25e-12).unwrap();
    let t50 = result
        .voltage_by_name("out")
        .unwrap()
        .crossing(0.5, true, 0.0)
        .unwrap();
    assert!(
        (t50 - lower.value()).abs() < 2e-12,
        "t50 {t50:.3e} vs exact {:.3e}",
        lower.value()
    );
}
