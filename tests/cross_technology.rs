//! Calibration generality: the same pipeline must adapt the slope model
//! to a different (faster, scaled) process and still track that process's
//! own reference simulations — nothing in the model is hard-wired to one
//! technology.

use calibrate::{calibrate_technology, CalibrationConfig};
use crystal::models::ModelKind;
use crystal::tech::Direction;
use crystal::{Edge, Scenario, Technology};
use mos_timing::compare::{compare_scenario, SimGrid};
use mosnet::generators::{inverter_chain, Style};
use mosnet::units::Farads;
use mosnet::TransistorKind;
use nanospice::MosModelSet;
use std::sync::OnceLock;

fn techs() -> &'static (Technology, Technology) {
    static TECHS: OnceLock<(Technology, Technology)> = OnceLock::new();
    TECHS.get_or_init(|| {
        let config = CalibrationConfig {
            ratios: vec![1.0, 4.0, 16.0],
            ..CalibrationConfig::default()
        };
        let slow = calibrate_technology(&MosModelSet::default(), &config)
            .expect("default process calibrates");
        let fast = calibrate_technology(&MosModelSet::scaled_2um(), &config)
            .expect("scaled process calibrates");
        (slow, fast)
    })
}

#[test]
fn scaled_process_fits_smaller_resistances() {
    let (slow, fast) = techs();
    for kind in [TransistorKind::NEnhancement, TransistorKind::PEnhancement] {
        for direction in Direction::ALL {
            let r_slow = slow.drive(kind, direction).r_square.value();
            let r_fast = fast.drive(kind, direction).r_square.value();
            assert!(
                r_fast < r_slow,
                "{kind:?}/{direction:?}: scaled process must be stronger \
                 ({r_fast:.0} vs {r_slow:.0} ohm/sq)"
            );
        }
    }
}

#[test]
fn slope_model_tracks_the_scaled_process() {
    let (_, fast_tech) = techs();
    let models = MosModelSet::scaled_2um();
    let net = inverter_chain(Style::Cmos, 3, 2.0, Farads::from_femto(100.0)).unwrap();
    let input = net.node_by_name("in").unwrap();
    let out = net.node_by_name("out").unwrap();
    let c = compare_scenario(
        &net,
        fast_tech,
        &models,
        &Scenario::step(input, Edge::Rising),
        out,
        SimGrid::auto(),
    )
    .unwrap();
    let err = c.percent_error(ModelKind::Slope).abs();
    assert!(err < 15.0, "scaled-process slope error {err:.1}%");
    // And the circuit really is faster than on the default process.
    assert!(
        c.reference.nanos() < 1.0,
        "scaled chain {} ns",
        c.reference.nanos()
    );
}

#[test]
fn mixing_technologies_mispredicts() {
    // Using the slow technology's tables against the fast process must be
    // visibly wrong — evidence the fit carries real information.
    let (slow_tech, _) = techs();
    let models = MosModelSet::scaled_2um();
    let net = inverter_chain(Style::Cmos, 3, 2.0, Farads::from_femto(100.0)).unwrap();
    let input = net.node_by_name("in").unwrap();
    let out = net.node_by_name("out").unwrap();
    let c = compare_scenario(
        &net,
        slow_tech,
        &models,
        &Scenario::step(input, Edge::Rising),
        out,
        SimGrid::auto(),
    )
    .unwrap();
    let err = c.percent_error(ModelKind::Slope);
    assert!(
        err > 40.0,
        "mismatched technology should overestimate strongly, got {err:+.1}%"
    );
}
