//! Cross-crate accuracy gates: the slope model, calibrated against the
//! reference simulator, must beat the lumped model on every benchmark
//! class and stay within a reproduction tolerance — the paper's central
//! claim, enforced as a test.

use calibrate::{calibrate_technology, CalibrationConfig};
use crystal::models::ModelKind;
use crystal::{Edge, Scenario, Technology};
use mos_timing::compare::{compare_scenario, Comparison, SimGrid};
use mosnet::generators::{inverter_chain, nand, pass_chain, Style};
use mosnet::units::{Farads, Seconds};
use mosnet::Network;
use nanospice::MosModelSet;
use std::sync::OnceLock;

fn tech() -> &'static Technology {
    static TECH: OnceLock<Technology> = OnceLock::new();
    TECH.get_or_init(|| {
        calibrate_technology(
            &MosModelSet::default(),
            &CalibrationConfig {
                ratios: vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
                ..CalibrationConfig::default()
            },
        )
        .expect("calibration succeeds on the default models")
    })
}

fn compare(net: &Network, scenario: &Scenario) -> Comparison {
    let out = net
        .node_by_name("out")
        .expect("benchmarks name the output `out`");
    compare_scenario(
        net,
        tech(),
        &MosModelSet::default(),
        scenario,
        out,
        SimGrid::auto(),
    )
    .expect("comparison completes")
}

#[test]
fn slope_model_tracks_simulator_on_cmos_chain() {
    let net = inverter_chain(Style::Cmos, 3, 2.0, Farads::from_femto(100.0)).unwrap();
    let input = net.node_by_name("in").unwrap();
    let c = compare(&net, &Scenario::step(input, Edge::Rising));
    let slope_err = c.percent_error(ModelKind::Slope).abs();
    let lumped_err = c.percent_error(ModelKind::Lumped).abs();
    assert!(slope_err < 15.0, "slope error {slope_err:.1}%");
    assert!(
        slope_err < lumped_err,
        "slope {slope_err:.1}% must beat lumped {lumped_err:.1}%"
    );
}

#[test]
fn slope_model_handles_slow_inputs_where_lumped_collapses() {
    let net = inverter_chain(Style::Cmos, 2, 2.0, Farads::from_femto(100.0)).unwrap();
    let input = net.node_by_name("in").unwrap();
    let scenario =
        Scenario::step(input, Edge::Rising).with_input_transition(Seconds::from_nanos(8.0));
    let c = compare(&net, &scenario);
    let slope_err = c.percent_error(ModelKind::Slope).abs();
    let lumped_err = c.percent_error(ModelKind::Lumped).abs();
    assert!(slope_err < 30.0, "slope error {slope_err:.1}%");
    assert!(
        lumped_err > 2.0 * slope_err,
        "slow input must wreck the lumped model (lumped {lumped_err:.1}%, slope {slope_err:.1}%)"
    );
}

#[test]
fn lumped_model_is_pessimistic_on_pass_chains_and_rctree_fixes_it() {
    let net = pass_chain(
        Style::Cmos,
        6,
        Farads::from_femto(50.0),
        Farads::from_femto(100.0),
    )
    .unwrap();
    let input = net.node_by_name("in").unwrap();
    let ctl = net.node_by_name("ctl").unwrap();
    let scenario = Scenario::step(input, Edge::Falling).with_static(ctl, true);
    let c = compare(&net, &scenario);
    // The paper's Table-3 shape: lumped roughly doubles the true delay.
    let lumped_err = c.percent_error(ModelKind::Lumped);
    let rctree_err = c.percent_error(ModelKind::RcTree);
    assert!(lumped_err > 60.0, "lumped error {lumped_err:.1}%");
    assert!(
        rctree_err < lumped_err / 2.0,
        "rc-tree {rctree_err:.1}% must remove most of the lumped pessimism {lumped_err:.1}%"
    );
    assert!(rctree_err.abs() < 40.0);
}

#[test]
fn gate_stacks_stay_conservative_but_close() {
    let net = nand(Style::Cmos, 3, Farads::from_femto(200.0)).unwrap();
    let a0 = net.node_by_name("a0").unwrap();
    let mut scenario = Scenario::step(a0, Edge::Rising);
    for other in ["a1", "a2"] {
        scenario = scenario.with_static(net.node_by_name(other).unwrap(), true);
    }
    let c = compare(&net, &scenario);
    let slope_err = c.percent_error(ModelKind::Slope);
    // Worst-case tools must not be optimistic by much, nor wildly
    // pessimistic.
    assert!(slope_err > -10.0, "too optimistic: {slope_err:.1}%");
    assert!(slope_err < 30.0, "too pessimistic: {slope_err:.1}%");
}

#[test]
fn nmos_chain_within_tolerance() {
    let net = inverter_chain(Style::Nmos, 2, 1.0, Farads::from_femto(100.0)).unwrap();
    let input = net.node_by_name("in").unwrap();
    let c = compare(&net, &Scenario::step(input, Edge::Rising));
    let slope_err = c.percent_error(ModelKind::Slope).abs();
    let lumped_err = c.percent_error(ModelKind::Lumped).abs();
    assert!(slope_err < 30.0, "slope error {slope_err:.1}%");
    assert!(slope_err < lumped_err);
}

#[test]
fn all_models_predict_positive_delays_everywhere() {
    let net = inverter_chain(Style::Cmos, 4, 2.0, Farads::from_femto(50.0)).unwrap();
    let input = net.node_by_name("in").unwrap();
    let c = compare(&net, &Scenario::step(input, Edge::Falling));
    for model in ModelKind::ALL {
        assert!(c.prediction(model).value() > 0.0, "{model}");
    }
    assert!(c.reference.value() > 0.0);
}
