//! Hierarchical netlists end to end: parse a subcircuit-based design,
//! time it with the slope model, and confirm against the reference
//! simulator — the full downstream-user workflow.

use calibrate::{calibrate_technology, CalibrationConfig};
use crystal::models::ModelKind;
use crystal::{Edge, Scenario};
use mos_timing::compare::{compare_scenario, SimGrid};
use mosnet::sim_format;
use nanospice::MosModelSet;

/// Three buffer stages (each two inverters) built hierarchically.
const DESIGN: &str = "\
| hierarchical repeater chain
subckt inv a y
n a y gnd 2 8
p a y vdd 2 16
ends
subckt buf a y
x g1 inv a m
x g2 inv m y
C m 8
ends
i in
o out
x b0 buf in w1
x b1 buf w1 w2
x b2 buf w2 out
C w1 30
C w2 30
C out 120
";

#[test]
fn hierarchical_design_parses_and_flattens() {
    let net = sim_format::parse(DESIGN, "repeater").unwrap();
    assert_eq!(net.transistor_count(), 12); // 3 bufs × 2 invs × 2 devices
    for inst in ["b0", "b1", "b2"] {
        assert!(
            net.node_by_name(&format!("{inst}.m")).is_some(),
            "{inst} internal net exists"
        );
    }
    assert!(mosnet::validate::validate(&net).unwrap().is_empty());
}

#[test]
fn hierarchical_design_times_accurately() {
    let net = sim_format::parse(DESIGN, "repeater").unwrap();
    let models = MosModelSet::default();
    let tech = calibrate_technology(
        &models,
        &CalibrationConfig {
            ratios: vec![1.0, 4.0, 16.0],
            ..CalibrationConfig::default()
        },
    )
    .expect("calibration succeeds");
    let input = net.node_by_name("in").unwrap();
    let out = net.node_by_name("out").unwrap();
    let c = compare_scenario(
        &net,
        &tech,
        &models,
        &Scenario::step(input, Edge::Rising),
        out,
        SimGrid::auto(),
    )
    .unwrap();
    let err = c.percent_error(ModelKind::Slope).abs();
    assert!(err < 12.0, "hierarchical chain slope error {err:.1}%");
    // Six inversions: output follows the input's direction.
    let arrival = crystal::analyze(
        &net,
        &tech,
        ModelKind::Slope,
        &Scenario::step(input, Edge::Rising),
    )
    .unwrap()
    .delay_to(&net, out)
    .unwrap();
    assert_eq!(arrival.edge, crystal::Edge::Rising);
    // The critical path runs through every buffer's internal node.
    let result = crystal::analyze(
        &net,
        &tech,
        ModelKind::Slope,
        &Scenario::step(input, Edge::Rising),
    )
    .unwrap();
    let path = result.critical_path(out);
    assert_eq!(path.len(), 7); // in, b0.m, w1, b1.m, w2, b2.m, out
}
