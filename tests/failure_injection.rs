//! Failure injection: every defective input must come back as a clean
//! `Err`, never a panic or a silent wrong answer.

use crystal::analyzer::{analyze, Edge, Scenario};
use crystal::models::ModelKind;
use crystal::tech::Technology;
use mosnet::generators::{random_network, RandomNetworkConfig, Style};
use nanospice::devices::{NodeRef, Waveshape};
use nanospice::engine::Options;
use nanospice::{Circuit, MosModelSet, SimError, Simulator};

#[test]
fn parallel_ideal_sources_report_singular_matrix() {
    // Two ideal voltage sources across the same pair of nodes make the
    // MNA matrix rank-deficient.
    let mut ckt = Circuit::new();
    let a = ckt.add_node("a");
    ckt.add_vsource(a, NodeRef::Ground, Waveshape::Dc(1.0));
    ckt.add_vsource(a, NodeRef::Ground, Waveshape::Dc(2.0));
    let sim = Simulator::new(&ckt);
    assert!(matches!(sim.op(), Err(SimError::SingularMatrix { .. })));
}

#[test]
fn starved_newton_budget_reports_no_convergence() {
    use nanospice::devices::MosParams;
    // A nonlinear circuit cannot settle in a single Newton iteration.
    let mut ckt = Circuit::new();
    let vdd = ckt.add_node("vdd");
    let inp = ckt.add_node("in");
    let out = ckt.add_node("out");
    ckt.add_vsource(vdd, NodeRef::Ground, Waveshape::Dc(5.0));
    ckt.add_vsource(inp, NodeRef::Ground, Waveshape::Dc(2.5));
    ckt.add_mosfet(
        out,
        inp,
        NodeRef::Ground,
        8e-6,
        2e-6,
        MosParams::nmos_default(),
    );
    ckt.add_mosfet(out, inp, vdd, 16e-6, 2e-6, MosParams::pmos_default());
    let sim = Simulator::with_options(
        &ckt,
        Options {
            max_nr_iterations: 1,
            ..Options::default()
        },
    );
    assert!(matches!(sim.op(), Err(SimError::NoConvergence { .. })));
}

#[test]
fn bad_device_reference_is_reported_before_solving() {
    let mut ckt = Circuit::new();
    let a = ckt.add_node("a");
    ckt.add_resistor(a, NodeRef::Node(999), 100.0);
    let sim = Simulator::new(&ckt);
    assert!(matches!(sim.op(), Err(SimError::BadNode { index: 999 })));
    assert!(matches!(
        sim.transient(1e-9, 1e-12),
        Err(SimError::BadNode { index: 999 })
    ));
}

#[test]
fn analyzer_never_panics_on_random_networks() {
    // Random networks include rail-to-rail shorts, floating gates, and
    // pass meshes; the analyzer must always return cleanly.
    let tech = Technology::nominal();
    for seed in 0..60u64 {
        let net = random_network(RandomNetworkConfig {
            nodes: 14,
            transistors: 24,
            style: if seed % 2 == 0 { Style::Cmos } else { Style::Nmos },
            seed,
        })
        .expect("valid config");
        for &input in net.inputs().iter().take(2) {
            for edge in [Edge::Rising, Edge::Falling] {
                for model in ModelKind::ALL {
                    // Any Ok/Err outcome is acceptable; panics are not.
                    let _ = analyze(&net, &tech, model, &Scenario::step(input, edge));
                }
            }
        }
    }
}

#[test]
fn charge_analysis_never_panics_on_random_networks() {
    use std::collections::HashMap;
    let tech = Technology::nominal();
    for seed in 0..30u64 {
        let net = random_network(RandomNetworkConfig {
            seed,
            ..Default::default()
        })
        .expect("valid config");
        let stored: HashMap<_, _> = net
            .nodes()
            .filter(|(_, n)| n.kind() == mosnet::NodeKind::Internal)
            .map(|(id, _)| (id, seed % 2 == 0))
            .collect();
        let _ = crystal::charge::charge_sharing_events(
            &net,
            &tech,
            &HashMap::new(),
            &stored,
            0.1,
        );
    }
}

#[test]
fn simulator_survives_random_networks_or_fails_cleanly() {
    use std::collections::HashMap;
    let models = MosModelSet::default();
    for seed in 0..10u64 {
        let net = random_network(RandomNetworkConfig {
            nodes: 8,
            transistors: 12,
            style: Style::Cmos,
            seed,
        })
        .expect("valid config");
        // Random networks can short the rails through always-on devices;
        // the simulator must still produce a result or a typed error.
        let result = nanospice::NetSim::run(
            &net,
            &models,
            &HashMap::new(),
            mosnet::units::Seconds::from_nanos(1.0),
            mosnet::units::Seconds::from_picos(10.0),
        );
        if let Err(e) = result {
            let rendered = e.to_string();
            assert!(!rendered.is_empty());
        }
    }
}
