//! Failure injection: every defective input must come back as a clean
//! `Err`, never a panic or a silent wrong answer.

use crystal::analyzer::{analyze, Edge, Scenario};
use crystal::models::ModelKind;
use crystal::tech::Technology;
use mosnet::generators::{random_network, RandomNetworkConfig, Style};
use nanospice::devices::{NodeRef, Waveshape};
use nanospice::engine::Options;
use nanospice::{Circuit, MosModelSet, SimError, Simulator};

#[test]
fn parallel_ideal_sources_report_singular_matrix() {
    // Two ideal voltage sources across the same pair of nodes make the
    // MNA matrix rank-deficient.
    let mut ckt = Circuit::new();
    let a = ckt.add_node("a");
    ckt.add_vsource(a, NodeRef::Ground, Waveshape::Dc(1.0));
    ckt.add_vsource(a, NodeRef::Ground, Waveshape::Dc(2.0));
    let sim = Simulator::new(&ckt);
    assert!(matches!(sim.op(), Err(SimError::SingularMatrix { .. })));
}

#[test]
fn starved_newton_budget_reports_no_convergence() {
    use nanospice::devices::MosParams;
    // A nonlinear circuit cannot settle in a single Newton iteration.
    let mut ckt = Circuit::new();
    let vdd = ckt.add_node("vdd");
    let inp = ckt.add_node("in");
    let out = ckt.add_node("out");
    ckt.add_vsource(vdd, NodeRef::Ground, Waveshape::Dc(5.0));
    ckt.add_vsource(inp, NodeRef::Ground, Waveshape::Dc(2.5));
    ckt.add_mosfet(
        out,
        inp,
        NodeRef::Ground,
        8e-6,
        2e-6,
        MosParams::nmos_default(),
    );
    ckt.add_mosfet(out, inp, vdd, 16e-6, 2e-6, MosParams::pmos_default());
    let sim = Simulator::with_options(
        &ckt,
        Options {
            max_nr_iterations: 1,
            ..Options::default()
        },
    );
    assert!(matches!(sim.op(), Err(SimError::NoConvergence { .. })));
}

#[test]
fn bad_device_reference_is_reported_before_solving() {
    let mut ckt = Circuit::new();
    let a = ckt.add_node("a");
    ckt.add_resistor(a, NodeRef::Node(999), 100.0);
    let sim = Simulator::new(&ckt);
    assert!(matches!(sim.op(), Err(SimError::BadNode { index: 999 })));
    assert!(matches!(
        sim.transient(1e-9, 1e-12),
        Err(SimError::BadNode { index: 999 })
    ));
}

#[test]
fn rescue_ladder_recovers_starved_operating_points() {
    use nanospice::devices::MosParams;
    use nanospice::RecoveryPolicy;
    // Inverter bias points across the transfer curve: healthy defaults
    // converge, a one-iteration Newton budget does not, and the rescue
    // ladder must close the gap and name the winning strategy.
    for vin in [0.5, 2.0, 2.5, 3.0, 4.5] {
        let mut ckt = Circuit::new();
        let vdd = ckt.add_node("vdd");
        let inp = ckt.add_node("in");
        let out = ckt.add_node("out");
        ckt.add_vsource(vdd, NodeRef::Ground, Waveshape::Dc(5.0));
        ckt.add_vsource(inp, NodeRef::Ground, Waveshape::Dc(vin));
        ckt.add_mosfet(
            out,
            inp,
            NodeRef::Ground,
            8e-6,
            2e-6,
            MosParams::nmos_default(),
        );
        ckt.add_mosfet(out, inp, vdd, 16e-6, 2e-6, MosParams::pmos_default());
        let healthy = Simulator::new(&ckt)
            .op()
            .expect("healthy defaults converge");
        let starved = Simulator::with_options(
            &ckt,
            Options {
                max_nr_iterations: 1,
                ..Options::default()
            },
        );
        assert!(
            matches!(starved.op(), Err(SimError::NoConvergence { .. })),
            "vin={vin}: the starved budget should fail on its own"
        );
        let (rescued, log) = starved
            .op_recovered(&RecoveryPolicy::default())
            .unwrap_or_else(|e| panic!("vin={vin}: rescue ladder failed: {e}"));
        assert!(log.needed_rescue(), "vin={vin}");
        let strategy = log.succeeded_with().expect("a strategy won");
        assert!(!strategy.to_string().is_empty());
        for (a, b) in rescued.iter().zip(&healthy) {
            assert!(
                (a - b).abs() < 1e-3,
                "vin={vin}: rescued {a} vs healthy {b}"
            );
        }
    }
}

/// A random 24-transistor pass mesh: a CMOS inverter anchors the mesh to
/// the rails, and every mesh node hangs off a randomly chosen earlier
/// node through an n-pass device gated by `ctl`. With `ctl` high, a
/// rising input drains the whole mesh through the inverter's pull-down —
/// two dozen switching nodes for the budget to interrupt.
fn random_pass_mesh(seed: u64) -> mosnet::Network {
    use mosnet::network::NetworkBuilder;
    use mosnet::units::Farads;
    use mosnet::{Geometry, NodeKind, TransistorKind};
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new("pass-mesh");
    let vdd = b.power();
    let gnd = b.ground();
    let inp = b.node("in", NodeKind::Input);
    let ctl = b.node("ctl", NodeKind::Input);
    let drv = b.node("drv", NodeKind::Internal);
    b.set_capacitance(drv, Farads::from_femto(20.0));
    b.add_transistor(
        TransistorKind::NEnhancement,
        inp,
        drv,
        gnd,
        Geometry::from_microns(8.0, 2.0),
    );
    b.add_transistor(
        TransistorKind::PEnhancement,
        inp,
        drv,
        vdd,
        Geometry::from_microns(16.0, 2.0),
    );
    let mut nodes = vec![drv];
    for i in 0..22 {
        let kind = if i == 21 {
            NodeKind::Output
        } else {
            NodeKind::Internal
        };
        let n = b.node(&format!("m{i}"), kind);
        b.set_capacitance(n, Farads::from_femto(rng.gen_range(20.0..120.0)));
        let from = nodes[rng.gen_range(0..nodes.len())];
        b.add_transistor(
            TransistorKind::NEnhancement,
            ctl,
            from,
            n,
            Geometry::from_microns(8.0, 2.0),
        );
        nodes.push(n);
    }
    b.build().expect("pass mesh is a valid network")
}

#[test]
fn budget_exhausted_partial_is_a_prefix_of_the_full_result() {
    use crystal::analyzer::{analyze_with_options, AnalyzerOptions};
    use crystal::budget::AnalysisBudget;
    use crystal::TimingError;
    use std::time::{Duration, Instant};
    // Random 24-transistor pass meshes: a one-evaluation budget must stop
    // the analysis promptly and hand back a non-empty subset of the
    // arrivals an unbudgeted run produces.
    let tech = Technology::nominal();
    for seed in 0..10u64 {
        let net = random_pass_mesh(seed);
        let inp = net.node_by_name("in").unwrap();
        let ctl = net.node_by_name("ctl").unwrap();
        let scenario = Scenario::step(inp, Edge::Rising).with_static(ctl, true);
        let full = analyze(&net, &tech, ModelKind::Slope, &scenario)
            .unwrap_or_else(|e| panic!("seed {seed}: unbudgeted analysis failed: {e}"));
        assert!(
            full.arrivals().count() >= 20,
            "seed {seed}: the whole mesh should switch, got {}",
            full.arrivals().count()
        );
        let options = AnalyzerOptions {
            budget: AnalysisBudget {
                max_stage_evals: Some(1),
                ..AnalysisBudget::default()
            },
            ..AnalyzerOptions::default()
        };
        let started = Instant::now();
        match analyze_with_options(&net, &tech, ModelKind::Slope, &scenario, options) {
            Err(TimingError::BudgetExhausted { partial }) => {
                assert!(
                    started.elapsed() < Duration::from_secs(5),
                    "seed {seed}: budgeted analysis must stop promptly"
                );
                let nodes: Vec<_> = partial.result.arrivals().map(|(n, _)| n).collect();
                assert!(!nodes.is_empty(), "seed {seed}: partial must be non-empty");
                for n in nodes {
                    assert!(
                        full.arrival(n).is_some(),
                        "seed {seed}: partial arrival missing from full result"
                    );
                }
            }
            Ok(_) => panic!("seed {seed}: a 1-eval budget cannot finish a 24-node mesh"),
            Err(e) => panic!("seed {seed}: unexpected error {e}"),
        }
    }
}

#[test]
fn batch_survives_injected_panics() {
    use crystal::batch::{run_batch_with, BatchFailure};
    let items: Vec<(String, usize)> = (0..6).map(|i| (format!("scenario{i}"), i)).collect();
    let run = run_batch_with(
        &items,
        |&i| {
            if i == 2 {
                panic!("injected panic in scenario {i}");
            }
            Ok::<usize, String>(i)
        },
        false,
    );
    // Every scenario after the panic still ran.
    assert_eq!(run.results.len(), 6);
    assert!(!run.all_ok());
    let failures: Vec<_> = run.failures().collect();
    assert_eq!(failures.len(), 1);
    assert_eq!(failures[0].0, "scenario2");
    assert!(matches!(
        failures[0].1,
        BatchFailure::Panicked { message } if message.contains("injected panic")
    ));
    // With fail-fast, the batch stops right after the panic instead.
    let run = run_batch_with(
        &items,
        |&i| {
            if i == 2 {
                panic!("injected panic");
            }
            Ok::<usize, String>(i)
        },
        true,
    );
    assert_eq!(run.results.len(), 3);
    assert!(run.aborted_early);
    assert!(run.failure_summary().contains("aborted early"));
}

#[test]
fn analyzer_never_panics_on_random_networks() {
    // Random networks include rail-to-rail shorts, floating gates, and
    // pass meshes; the analyzer must always return cleanly.
    let tech = Technology::nominal();
    for seed in 0..60u64 {
        let net = random_network(RandomNetworkConfig {
            nodes: 14,
            transistors: 24,
            style: if seed % 2 == 0 {
                Style::Cmos
            } else {
                Style::Nmos
            },
            seed,
        })
        .expect("valid config");
        for &input in net.inputs().iter().take(2) {
            for edge in [Edge::Rising, Edge::Falling] {
                for model in ModelKind::ALL {
                    // Any Ok/Err outcome is acceptable; panics are not.
                    let _ = analyze(&net, &tech, model, &Scenario::step(input, edge));
                }
            }
        }
    }
}

#[test]
fn charge_analysis_never_panics_on_random_networks() {
    use std::collections::HashMap;
    let tech = Technology::nominal();
    for seed in 0..30u64 {
        let net = random_network(RandomNetworkConfig {
            seed,
            ..Default::default()
        })
        .expect("valid config");
        let stored: HashMap<_, _> = net
            .nodes()
            .filter(|(_, n)| n.kind() == mosnet::NodeKind::Internal)
            .map(|(id, _)| (id, seed % 2 == 0))
            .collect();
        let _ = crystal::charge::charge_sharing_events(&net, &tech, &HashMap::new(), &stored, 0.1);
    }
}

#[test]
fn simulator_survives_random_networks_or_fails_cleanly() {
    use std::collections::HashMap;
    let models = MosModelSet::default();
    for seed in 0..10u64 {
        let net = random_network(RandomNetworkConfig {
            nodes: 8,
            transistors: 12,
            style: Style::Cmos,
            seed,
        })
        .expect("valid config");
        // Random networks can short the rails through always-on devices;
        // the simulator must still produce a result or a typed error.
        let result = nanospice::NetSim::run(
            &net,
            &models,
            &HashMap::new(),
            mosnet::units::Seconds::from_nanos(1.0),
            mosnet::units::Seconds::from_picos(10.0),
        );
        if let Err(e) = result {
            let rendered = e.to_string();
            assert!(!rendered.is_empty());
        }
    }
}
