//! Differential property suite for the linear-solver backends: the CSC
//! sparse LU must agree with the dense LU oracle on random
//! diagonally-dominant systems and on real generator-derived MNA
//! systems, including across the value-only restamps a gmin ladder
//! performs, and must match its singular-matrix verdicts on floating
//! subcircuits.

use std::collections::HashMap;

use mosnet::generators::{barrel_shifter, carry_chain, inverter_chain, Style};
use mosnet::network::Network;
use mosnet::node::NodeKind;
use mosnet::units::Farads;
use nanospice::circuit::MosModelSet;
use nanospice::devices::Waveshape;
use nanospice::{create_solver, elaborate, LinearSolver, Options, Simulator, SolverChoice};
use nanospice::{SimError, SparseLu};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A linear system kept as a stamp list, the exact shape the engine
/// feeds a [`LinearSolver`]: duplicates at the same coordinate are
/// intentional (MNA stamps accumulate).
struct StampedSystem {
    n: usize,
    stamps: Vec<(usize, usize, f64)>,
    rhs: Vec<f64>,
}

impl StampedSystem {
    /// Stamps this system into `s` (one full begin/add round) and solves
    /// its right-hand side.
    fn solve_with(&self, s: &mut dyn LinearSolver) -> Result<Vec<f64>, SimError> {
        assert_eq!(s.dim(), self.n);
        s.begin();
        for &(r, c, v) in &self.stamps {
            s.add(r, c, v);
        }
        s.factor()?;
        let mut x = self.rhs.clone();
        s.solve_in_place(&mut x);
        Ok(x)
    }

    /// Infinity norm of `b - A·x`, evaluated from the raw stamps.
    fn residual(&self, x: &[f64]) -> f64 {
        let mut r = self.rhs.clone();
        for &(row, col, v) in &self.stamps {
            r[row] -= v * x[col];
        }
        r.iter().fold(0.0f64, |m, v| m.max(v.abs()))
    }

    /// Scale for relative residual checks: max row sum of |A| times
    /// ||x||∞, floored at 1 so empty systems do not divide by zero.
    fn scale(&self, x: &[f64]) -> f64 {
        let mut row_sum = vec![0.0f64; self.n];
        for &(row, _, v) in &self.stamps {
            row_sum[row] += v.abs();
        }
        let a_norm = row_sum.iter().fold(0.0f64, |m, v| m.max(*v));
        let x_norm = x.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        (a_norm * x_norm).max(1.0)
    }
}

/// Builds a random sparse strictly diagonally-dominant system with
/// `extra` off-diagonal stamps (possibly duplicated coordinates).
fn random_dd_system(rng: &mut StdRng, n: usize, extra: usize) -> StampedSystem {
    let mut stamps = Vec::new();
    let mut row_mass = vec![0.0f64; n];
    for _ in 0..extra {
        let r = rng.gen_range(0..n);
        let c = rng.gen_range(0..n);
        if r == c {
            continue;
        }
        let v: f64 = rng.gen_range(-1.0..1.0);
        row_mass[r] += v.abs();
        stamps.push((r, c, v));
    }
    for (i, mass) in row_mass.iter().enumerate() {
        // Strict dominance with a random margin; sign flips keep the
        // pivoting logic honest.
        let sign = if rng.gen_range(0.0..1.0) < 0.5 {
            -1.0
        } else {
            1.0
        };
        stamps.push((i, i, sign * (mass + rng.gen_range(0.5..2.0))));
    }
    let rhs = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
    StampedSystem { n, stamps, rhs }
}

/// Linearized switch-level MNA for a generator network: every
/// transistor contributes an on-conductance `g = g0·W/L` between drain
/// and source, every node a `gmin` leak to ground, and the power rail
/// plus each input gets an ideal-voltage-source branch row — the same
/// matrix shape `nanospice::engine` assembles, with real circuit
/// topology and real conductance spreads.
fn generator_mna(net: &Network, gmin: f64) -> StampedSystem {
    let mut unknown = vec![usize::MAX; net.node_count()];
    let mut n_nodes = 0usize;
    for (id, node) in net.nodes() {
        if node.kind() != NodeKind::Ground {
            unknown[id.index()] = n_nodes;
            n_nodes += 1;
        }
    }
    let mut driven: Vec<(usize, f64)> = vec![(unknown[net.power().index()], 5.0)];
    for (k, input) in net.inputs().into_iter().enumerate() {
        driven.push((unknown[input.index()], if k % 2 == 0 { 5.0 } else { 0.0 }));
    }
    let n = n_nodes + driven.len();

    let mut sys = StampedSystem {
        n,
        stamps: Vec::new(),
        rhs: vec![0.0; n],
    };
    let stamp_g = |a: usize, b: usize, g: f64, sys: &mut StampedSystem| {
        // a/b are unknown indices or usize::MAX for ground.
        if a != usize::MAX {
            sys.stamps.push((a, a, g));
        }
        if b != usize::MAX {
            sys.stamps.push((b, b, g));
        }
        if a != usize::MAX && b != usize::MAX {
            sys.stamps.push((a, b, -g));
            sys.stamps.push((b, a, -g));
        }
    };
    for (_, t) in net.transistors() {
        let g = 1e-4 * t.geometry().aspect();
        stamp_g(
            unknown[t.drain().index()],
            unknown[t.source().index()],
            g,
            &mut sys,
        );
    }
    for i in 0..n_nodes {
        sys.stamps.push((i, i, gmin));
    }
    for (k, &(node, volts)) in driven.iter().enumerate() {
        let row = n_nodes + k;
        sys.stamps.push((node, row, 1.0));
        sys.stamps.push((row, node, 1.0));
        sys.rhs[row] = volts;
    }
    sys
}

fn assert_close(dense: &[f64], sparse: &[f64], tol: f64, what: &str) {
    let scale = 1.0 + dense.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    for (i, (d, s)) in dense.iter().zip(sparse).enumerate() {
        assert!(
            (d - s).abs() <= tol * scale,
            "{what}: x[{i}] dense={d} sparse={s} (tol {tol}, scale {scale})"
        );
    }
}

/// Random diagonally-dominant systems: dense and sparse agree to 1e-9
/// and both leave a tiny residual, across several value rounds on the
/// same pattern (exercising the sparse refactorization path).
#[test]
fn random_diag_dominant_dense_sparse_agree() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for &n in &[4usize, 23, 64, 97, 180] {
        let mut dense = create_solver(SolverChoice::Dense, n);
        let mut sparse = create_solver(SolverChoice::Sparse, n);
        let base = random_dd_system(&mut rng, n, 6 * n);
        for round in 0..4 {
            // Same sparsity pattern, fresh values each round.
            let mut sys = StampedSystem {
                n,
                stamps: base.stamps.clone(),
                rhs: base.rhs.clone(),
            };
            for (i, (_, _, v)) in sys.stamps.iter_mut().enumerate() {
                *v *= 1.0 + 0.1 * ((round * 31 + i) % 7) as f64;
            }
            // Rescale diagonals back to dominance.
            let mut row_mass = vec![0.0f64; n];
            for &(r, c, v) in &sys.stamps {
                if r != c {
                    row_mass[r] += v.abs();
                }
            }
            for (r, c, v) in sys.stamps.iter_mut() {
                if r == c {
                    *v = v.signum() * (row_mass[*r] + 1.0);
                }
            }

            let xd = sys.solve_with(dense.as_mut()).expect("dense solves");
            let xs = sys.solve_with(sparse.as_mut()).expect("sparse solves");
            assert_close(&xd, &xs, 1e-9, &format!("n={n} round={round}"));
            let s = sys.scale(&xd);
            assert!(sys.residual(&xd) <= 1e-9 * s, "dense residual n={n}");
            assert!(sys.residual(&xs) <= 1e-9 * s, "sparse residual n={n}");
        }
    }
}

/// A gmin ladder restamps the same pattern with a shrinking leak; the
/// sparse backend must track the dense oracle at every rung while
/// reusing one symbolic analysis (factor fill stays put after the
/// first rung).
#[test]
fn gmin_ladder_restamps_agree_and_reuse_pattern() {
    let mut rng = StdRng::seed_from_u64(0x61B1);
    let n = 120;
    let base = random_dd_system(&mut rng, n, 5 * n);
    let mut dense = create_solver(SolverChoice::Dense, n);
    let mut sparse = SparseLu::new(n);

    let mut fill_after_first = None;
    for (rung, exp) in [-3i32, -5, -7, -9, -10, -12].into_iter().enumerate() {
        let gmin = 10f64.powi(exp);
        let mut sys = StampedSystem {
            n,
            stamps: base.stamps.clone(),
            rhs: base.rhs.clone(),
        };
        for i in 0..n {
            sys.stamps.push((i, i, gmin));
        }
        let xd = sys.solve_with(dense.as_mut()).expect("dense solves");
        let xs = sys.solve_with(&mut sparse).expect("sparse solves");
        assert_close(&xd, &xs, 1e-9, &format!("gmin rung {rung}"));

        match fill_after_first {
            None => fill_after_first = Some(sparse.factor_nnz()),
            Some(fill) => assert_eq!(
                sparse.factor_nnz(),
                fill,
                "restamp of an identical pattern must not re-analyze"
            ),
        }
    }
}

/// Generator-derived MNA systems (linearized switch-level conductance
/// matrices of real benchmark circuits): dense and sparse agree to
/// 1e-9, including after a gmin-ladder style restamp sequence.
#[test]
fn generator_mna_dense_sparse_agree() {
    let circuits: Vec<(&str, Network)> = vec![
        (
            "inv_chain",
            inverter_chain(Style::Cmos, 40, 2.0, Farads::from_femto(50.0)).unwrap(),
        ),
        (
            "carry_chain",
            carry_chain(Style::Nmos, 16, Farads::from_femto(20.0)).unwrap(),
        ),
        (
            "barrel",
            barrel_shifter(Style::Cmos, 8, Farads::from_femto(20.0)).unwrap(),
        ),
    ];
    for (name, net) in &circuits {
        let probe = generator_mna(net, 1e-9);
        let n = probe.n;
        let mut dense = create_solver(SolverChoice::Dense, n);
        let mut sparse = create_solver(SolverChoice::Sparse, n);
        for (rung, exp) in [-3i32, -6, -9].into_iter().enumerate() {
            let sys = generator_mna(net, 10f64.powi(exp));
            let xd = sys.solve_with(dense.as_mut()).expect("dense solves");
            let xs = sys.solve_with(sparse.as_mut()).expect("sparse solves");
            assert_close(&xd, &xs, 1e-9, &format!("{name} rung {rung}"));
            let s = sys.scale(&xd);
            assert!(
                sys.residual(&xs) <= 1e-9 * s,
                "{name}: sparse residual {} vs scale {s}",
                sys.residual(&xs)
            );
        }
    }
}

/// Full nonlinear operating point through the engine: forcing the
/// sparse backend on an elaborated generator circuit lands on the same
/// node voltages as the dense oracle.
#[test]
fn engine_op_matches_across_backends() {
    let net = inverter_chain(Style::Cmos, 12, 1.5, Farads::from_femto(30.0)).unwrap();
    let models = MosModelSet::default();
    let mut drives = HashMap::new();
    drives.insert(
        net.node_by_name("in").expect("generated"),
        Waveshape::Dc(models.vdd),
    );
    let elab = elaborate(&net, &models, &drives);

    let solve = |choice: SolverChoice| {
        let opts = Options {
            solver: choice,
            ..Options::default()
        };
        Simulator::with_options(&elab.circuit, opts)
            .op()
            .expect("operating point converges")
    };
    let dense = solve(SolverChoice::Dense);
    let sparse = solve(SolverChoice::Sparse);
    assert_eq!(dense.len(), sparse.len());
    // Both backends satisfy the same Newton convergence criterion; the
    // converged points agree far below abstol.
    assert_close(&dense, &sparse, 1e-8, "engine op");
}

/// A floating subcircuit (a resistor chain with no path to ground and
/// no gmin) is singular; dense and sparse must both say so, at small
/// and large sizes, and both must recover once a single leak to ground
/// is added.
#[test]
fn floating_subcircuit_singular_parity() {
    for &n in &[10usize, 200] {
        // n nodes, conductances only between neighbours: every row sums
        // to zero, so the matrix is exactly rank-deficient.
        let mut sys = StampedSystem {
            n,
            stamps: Vec::new(),
            rhs: vec![1.0; n],
        };
        for i in 0..n - 1 {
            let g = 1e-3 * (1.0 + i as f64 * 0.01);
            sys.stamps.push((i, i, g));
            sys.stamps.push((i + 1, i + 1, g));
            sys.stamps.push((i, i + 1, -g));
            sys.stamps.push((i + 1, i, -g));
        }

        let mut dense = create_solver(SolverChoice::Dense, n);
        let mut sparse = create_solver(SolverChoice::Sparse, n);
        let dense_err = sys.solve_with(dense.as_mut());
        let sparse_err = sys.solve_with(&mut *sparse);
        assert!(
            matches!(dense_err, Err(SimError::SingularMatrix { .. })),
            "dense must reject the floating chain (n={n}), got {dense_err:?}"
        );
        assert!(
            matches!(sparse_err, Err(SimError::SingularMatrix { .. })),
            "sparse must reject the floating chain (n={n}), got {sparse_err:?}"
        );

        // One leak to ground makes it solvable for both — and after the
        // sparse backend's singular failure, at that.
        sys.stamps.push((0, 0, 1e-6));
        sys.rhs = vec![0.5; n];
        let xd = sys.solve_with(dense.as_mut()).expect("grounded dense");
        let xs = sys.solve_with(&mut *sparse).expect("grounded sparse");
        assert_close(&xd, &xs, 1e-9, &format!("grounded chain n={n}"));
    }
}
