//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to the crates.io registry, so this
//! workspace vendors the small slice of the `rand` 0.8 API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over half-open ranges, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64. Sequences are
//! deterministic in the seed — the property every test in this workspace
//! relies on — but they are **not** bit-compatible with the real
//! `StdRng` (ChaCha12); nothing here depends on specific values.

#![warn(missing_docs)]

use std::ops::Range;

/// Seeding support: construct a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire state is derived from `state`.
    /// Equal seeds yield equal sequences.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// The user-facing random-value interface.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from the half-open `range`.
    ///
    /// # Panics
    /// Panics when the range is empty, matching `rand`'s contract.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(
            range.start < range.end,
            "gen_range called with an empty range"
        );
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        unit_f64(self.next_u64()) < p
    }
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high-quality mantissa bits.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                // Widths always fit in u64 for the types below; modulo
                // bias is irrelevant at test-suite scale.
                let width = (high as i128 - low as i128) as u64;
                let offset = rng.next_u64() % width;
                ((low as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let v = low + (high - low) * unit_f64(rng.next_u64());
        // Guard the half-open contract against rounding at the top end.
        if v >= high {
            low
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// The workspace's standard seedable generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> StdRng {
        // SplitMix64 expansion, the conventional xoshiro seeding routine.
        let mut x = state;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).all(|_| a.next_u64() == b.next_u64());
        assert!(!same);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(2..9);
            assert!((2..9).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
            let n = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&n));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(1e-15..1e-12);
            assert!((1e-15..1e-12).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = rng.gen_range(5..5);
    }
}
