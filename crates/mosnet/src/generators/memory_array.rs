//! A static RAM array: 6-transistor cells on a wordline/bitline grid with
//! per-row wordline drivers — the benchmark generator for the 10k+
//! transistor range (a 64×64 array is ~25k devices) with the RC
//! structure memory designers care about: long, heavily loaded
//! wordlines crossing long, diffusion-loaded bitlines.

use super::{emit_inverter, Sizing, Style};
use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::{NodeId, NodeKind};
use crate::transistor::{Geometry, TransistorKind};
use crate::units::Farads;

/// Emits one 6T cell at (`row`, `col`): a cross-coupled inverter pair on
/// internal nodes `m<r>_<c>` / `mb<r>_<c>`, plus two access transistors
/// gated by `wl` connecting them to the column's bitlines.
#[allow(clippy::too_many_arguments)]
fn emit_cell(
    b: &mut NetworkBuilder,
    style: Style,
    s: Sizing,
    wl: NodeId,
    bit: NodeId,
    nbit: NodeId,
    row: usize,
    col: usize,
) {
    let m = b.node(&format!("m{row}_{col}"), NodeKind::Internal);
    let mb = b.node(&format!("mb{row}_{col}"), NodeKind::Internal);
    b.add_capacitance(m, Farads::from_femto(4.0));
    b.add_capacitance(mb, Farads::from_femto(4.0));
    // Cross-coupled pair at half unit strength (cells are drawn minimal).
    emit_inverter(b, style, s, m, mb, 0.5);
    emit_inverter(b, style, s, mb, m, 0.5);
    let access = Geometry::from_microns(s.n_width_um * 0.5, s.length_um);
    b.add_transistor(TransistorKind::NEnhancement, wl, bit, m, access);
    b.add_transistor(TransistorKind::NEnhancement, wl, nbit, mb, access);
}

/// A `rows × cols` SRAM array with wordline drivers.
///
/// Row-select inputs `row<r>` each drive a 4× wordline driver (inverter)
/// onto wordline `wl<r>`; the wordline crosses all `cols` columns,
/// picking up two access-gate loads per cell plus 2 fF of wire per
/// column. Column bitlines `bl<c>` / `blb<c>` are outputs, loaded with
/// `load` plus the diffusion of `rows` access transistors and 1.5 fF of
/// wire per row. Cell internals are `m<r>_<c>` / `mb<r>_<c>`.
///
/// The cell count is `rows × cols` at six transistors per cell, plus
/// one two-transistor driver per row: a 64×64 array is 24 704 devices.
///
/// # Errors
/// Returns [`NetworkError::Invalid`] unless both dimensions are in
/// `2..=256`.
pub fn memory_array(
    style: Style,
    rows: usize,
    cols: usize,
    load: Farads,
) -> Result<Network, NetworkError> {
    for (what, v) in [("rows", rows), ("cols", cols)] {
        if !(2..=256).contains(&v) {
            return Err(NetworkError::Invalid {
                message: format!("memory array needs 2..=256 {what}, got {v}"),
            });
        }
    }
    let s = Sizing::default();
    let mut b = NetworkBuilder::new(format!(
        "sram_{}x{cols}_{}",
        rows,
        if style == Style::Cmos { "cmos" } else { "nmos" }
    ));
    b.power();
    b.ground();

    let mut bitlines = Vec::with_capacity(cols);
    for c in 0..cols {
        let bit = b.node(&format!("bl{c}"), NodeKind::Output);
        let nbit = b.node(&format!("blb{c}"), NodeKind::Output);
        let wire = Farads::from_femto(1.5 * rows as f64);
        b.add_capacitance(bit, load + wire);
        b.add_capacitance(nbit, load + wire);
        bitlines.push((bit, nbit));
    }

    for r in 0..rows {
        let sel = b.node(&format!("row{r}"), NodeKind::Input);
        let wl = b.node(&format!("wl{r}"), NodeKind::Internal);
        emit_inverter(&mut b, style, s, sel, wl, 4.0);
        b.add_capacitance(wl, Farads::from_femto(2.0 * cols as f64));
        for (c, &(bit, nbit)) in bitlines.iter().enumerate() {
            emit_cell(&mut b, style, s, wl, bit, nbit, r, c);
        }
    }
    Ok(b.build().expect("generator produces a valid network"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn array_counts() {
        for style in Style::ALL {
            let (rows, cols) = (4usize, 8usize);
            let net = memory_array(style, rows, cols, Farads::from_femto(200.0)).unwrap();
            // 6 devices per cell + 2 per wordline driver.
            assert_eq!(net.transistor_count(), 6 * rows * cols + 2 * rows);
            assert!(validate(&net).unwrap().is_empty());
            // Two bitline outputs per column.
            assert_eq!(net.outputs().len(), 2 * cols);
        }
    }

    #[test]
    fn wordline_gates_access_transistors_across_all_columns() {
        let cols = 8;
        let net = memory_array(Style::Cmos, 4, cols, Farads::ZERO).unwrap();
        let wl2 = net.node_by_name("wl2").unwrap();
        // wl2 gates exactly 2 access transistors per column.
        assert_eq!(net.gated_by(wl2).len(), 2 * cols);
    }

    #[test]
    fn cell_is_cross_coupled() {
        let net = memory_array(Style::Cmos, 2, 2, Farads::ZERO).unwrap();
        let m = net.node_by_name("m1_1").unwrap();
        let mb = net.node_by_name("mb1_1").unwrap();
        // m gates transistors whose channels touch mb and vice versa.
        let m_drives_mb = net
            .gated_by(m)
            .iter()
            .any(|&tid| net.transistor(tid).touches_channel(mb));
        let mb_drives_m = net
            .gated_by(mb)
            .iter()
            .any(|&tid| net.transistor(tid).touches_channel(m));
        assert!(m_drives_mb && mb_drives_m);
    }

    #[test]
    fn bitline_loading_scales_with_rows() {
        let small = memory_array(Style::Cmos, 4, 4, Farads::ZERO).unwrap();
        let tall = memory_array(Style::Cmos, 64, 4, Farads::ZERO).unwrap();
        let c_small = small.node(small.node_by_name("bl0").unwrap()).capacitance();
        let c_tall = tall.node(tall.node_by_name("bl0").unwrap()).capacitance();
        assert!(c_tall > c_small);
    }

    #[test]
    fn sixty_four_square_reaches_benchmark_scale() {
        let net = memory_array(Style::Cmos, 64, 64, Farads::from_femto(400.0)).unwrap();
        assert_eq!(net.transistor_count(), 6 * 64 * 64 + 2 * 64);
        assert!(net.transistor_count() > 24_000);
    }

    #[test]
    fn rejects_degenerate_sizes() {
        assert!(memory_array(Style::Cmos, 1, 8, Farads::ZERO).is_err());
        assert!(memory_array(Style::Cmos, 8, 257, Farads::ZERO).is_err());
    }
}
