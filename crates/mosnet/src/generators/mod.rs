//! Parametric generators for the benchmark circuits used throughout the
//! paper's evaluation: inverter chains, NAND/NOR stacks, pass-transistor
//! chains, superbuffers, a barrel shifter, a Manchester carry chain, a
//! decoder, and random networks for property testing.
//!
//! All generators return a plain [`Network`](crate::network::Network); the
//! interesting nets carry conventional names (`in`, `out`, `s<i>`, ...)
//! documented per generator and resolvable with
//! [`Network::node_by_name`](crate::network::Network::node_by_name).

mod barrel_shifter;
mod carry_chain;
mod decoder;
mod gates;
mod inverter_chain;
mod memory_array;
mod mux_tree;
mod pass_chain;
mod random;
mod superbuffer;
mod wordline;
mod xor_gate;

pub use barrel_shifter::barrel_shifter;
pub use carry_chain::carry_chain;
pub use decoder::{decoder, decoder2to4};
pub use gates::{nand, nor};
pub use inverter_chain::{inverter, inverter_chain};
pub use memory_array::memory_array;
pub use mux_tree::mux_tree;
pub use pass_chain::pass_chain;
pub use random::{random_network, RandomNetworkConfig};
pub use superbuffer::superbuffer;
pub use wordline::wordline;
pub use xor_gate::xor2;

use crate::network::NetworkBuilder;
use crate::node::NodeId;
use crate::transistor::{Geometry, TransistorKind};

/// Logic family for the generated circuits.
///
/// * `Cmos`: complementary n/p pairs, 2:1 p/n width ratio.
/// * `Nmos`: enhancement pull-downs with depletion loads (gate tied to
///   source), 4:1 pull-down/load strength ratio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Style {
    /// Complementary MOS.
    Cmos,
    /// nMOS with depletion loads.
    Nmos,
}

impl Style {
    /// Both styles, for sweeping experiments.
    pub const ALL: [Style; 2] = [Style::Cmos, Style::Nmos];
}

/// Sizing conventions shared by the generators (a 2 µm drawn-length,
/// 4 µm-pitch class process).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sizing {
    /// Pull-down (nMOS) width in microns for a unit inverter.
    pub n_width_um: f64,
    /// Pull-up (pMOS) width in microns for a unit CMOS inverter.
    pub p_width_um: f64,
    /// Depletion-load width in microns for a unit nMOS inverter.
    pub load_width_um: f64,
    /// Depletion-load length in microns (long channel = weak load).
    pub load_length_um: f64,
    /// Drawn channel length in microns for switching devices.
    pub length_um: f64,
}

impl Default for Sizing {
    fn default() -> Sizing {
        Sizing {
            n_width_um: 8.0,
            p_width_um: 16.0,
            load_width_um: 2.0,
            load_length_um: 8.0,
            length_um: 2.0,
        }
    }
}

/// Emits one inverter (style-dependent) driving `out` from `a`, with every
/// device scaled by `scale`. Shared by several generators.
pub(crate) fn emit_inverter(
    b: &mut NetworkBuilder,
    style: Style,
    sizing: Sizing,
    a: NodeId,
    out: NodeId,
    scale: f64,
) {
    let vdd = b.power();
    let gnd = b.ground();
    b.add_transistor(
        TransistorKind::NEnhancement,
        a,
        out,
        gnd,
        Geometry::from_microns(sizing.n_width_um * scale, sizing.length_um),
    );
    match style {
        Style::Cmos => {
            b.add_transistor(
                TransistorKind::PEnhancement,
                a,
                out,
                vdd,
                Geometry::from_microns(sizing.p_width_um * scale, sizing.length_um),
            );
        }
        Style::Nmos => {
            // Depletion load, gate tied to source (the output node).
            b.add_transistor(
                TransistorKind::Depletion,
                out,
                out,
                vdd,
                Geometry::from_microns(sizing.load_width_um * scale, sizing.load_length_um),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    #[test]
    fn emit_inverter_respects_style() {
        for style in Style::ALL {
            let mut b = NetworkBuilder::new("t");
            b.power();
            b.ground();
            let a = b.node("a", NodeKind::Input);
            let y = b.node("y", NodeKind::Output);
            emit_inverter(&mut b, style, Sizing::default(), a, y, 1.0);
            let net = b.build().unwrap();
            assert_eq!(net.transistor_count(), 2);
            let kinds: Vec<_> = net.transistors().map(|(_, t)| t.kind()).collect();
            match style {
                Style::Cmos => assert!(kinds.contains(&TransistorKind::PEnhancement)),
                Style::Nmos => assert!(kinds.contains(&TransistorKind::Depletion)),
            }
        }
    }

    #[test]
    fn nmos_load_gate_tied_to_source() {
        let mut b = NetworkBuilder::new("t");
        b.power();
        b.ground();
        let a = b.node("a", NodeKind::Input);
        let y = b.node("y", NodeKind::Output);
        emit_inverter(&mut b, Style::Nmos, Sizing::default(), a, y, 1.0);
        let net = b.build().unwrap();
        let load = net
            .transistors()
            .find(|(_, t)| t.kind() == TransistorKind::Depletion)
            .map(|(_, t)| *t)
            .expect("has a load");
        assert_eq!(load.gate(), load.source());
    }
}
