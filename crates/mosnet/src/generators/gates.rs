//! NAND/NOR gates with series device stacks — the Table 2 experiments (E3).
//!
//! Each generated circuit is a single gate whose inputs are driven directly
//! (named `a0` … `a<k-1>`) and whose output `out` carries an explicit load.
//! Series devices in the stack are widened by the number of inputs so that
//! the gate's nominal drive matches a unit inverter, the standard sizing
//! discipline.

use super::{Sizing, Style};
use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::{NodeId, NodeKind};
use crate::transistor::{Geometry, TransistorKind};
use crate::units::Farads;

fn check_inputs(inputs: usize) -> Result<(), NetworkError> {
    if !(2..=8).contains(&inputs) {
        return Err(NetworkError::Invalid {
            message: format!("gate needs 2..=8 inputs, got {inputs}"),
        });
    }
    Ok(())
}

/// A `k`-input NAND gate.
///
/// CMOS: `k` series nMOS pull-downs (each `k`× unit width) and `k` parallel
/// pMOS pull-ups. nMOS: series pull-downs with one depletion load.
///
/// Node names: `a0..a<k-1>`, `out`, internal stack nets `st1..`.
///
/// # Errors
/// Returns [`NetworkError::Invalid`] unless `2 <= inputs <= 8`.
pub fn nand(style: Style, inputs: usize, load: Farads) -> Result<Network, NetworkError> {
    check_inputs(inputs)?;
    let s = Sizing::default();
    let mut b = NetworkBuilder::new(format!(
        "nand{inputs}_{}",
        if style == Style::Cmos { "cmos" } else { "nmos" }
    ));
    let vdd = b.power();
    let gnd = b.ground();
    let ins: Vec<NodeId> = (0..inputs)
        .map(|i| b.node(&format!("a{i}"), NodeKind::Input))
        .collect();
    let out = b.node("out", NodeKind::Output);
    b.set_capacitance(out, load);

    // Series pull-down stack from out to ground, k× width.
    let mut below = gnd;
    for (i, &a) in ins.iter().enumerate().rev() {
        let above = if i == 0 {
            out
        } else {
            b.node(&format!("st{i}"), NodeKind::Internal)
        };
        b.add_transistor(
            TransistorKind::NEnhancement,
            a,
            above,
            below,
            Geometry::from_microns(s.n_width_um * inputs as f64, s.length_um),
        );
        below = above;
    }

    match style {
        Style::Cmos => {
            for &a in &ins {
                b.add_transistor(
                    TransistorKind::PEnhancement,
                    a,
                    out,
                    vdd,
                    Geometry::from_microns(s.p_width_um, s.length_um),
                );
            }
        }
        Style::Nmos => {
            b.add_transistor(
                TransistorKind::Depletion,
                out,
                out,
                vdd,
                Geometry::from_microns(s.load_width_um, s.load_length_um),
            );
        }
    }
    Ok(b.build().expect("generator produces a valid network"))
}

/// A `k`-input NOR gate.
///
/// CMOS: `k` parallel nMOS pull-downs and `k` series pMOS pull-ups (each
/// `k`× unit width). nMOS: parallel pull-downs with one depletion load.
///
/// Node names: `a0..a<k-1>`, `out`, internal stack nets `st1..` (CMOS only).
///
/// # Errors
/// Returns [`NetworkError::Invalid`] unless `2 <= inputs <= 8`.
pub fn nor(style: Style, inputs: usize, load: Farads) -> Result<Network, NetworkError> {
    check_inputs(inputs)?;
    let s = Sizing::default();
    let mut b = NetworkBuilder::new(format!(
        "nor{inputs}_{}",
        if style == Style::Cmos { "cmos" } else { "nmos" }
    ));
    let vdd = b.power();
    let gnd = b.ground();
    let ins: Vec<NodeId> = (0..inputs)
        .map(|i| b.node(&format!("a{i}"), NodeKind::Input))
        .collect();
    let out = b.node("out", NodeKind::Output);
    b.set_capacitance(out, load);

    for &a in &ins {
        b.add_transistor(
            TransistorKind::NEnhancement,
            a,
            out,
            gnd,
            Geometry::from_microns(s.n_width_um, s.length_um),
        );
    }

    match style {
        Style::Cmos => {
            // Series pull-up stack from vdd to out, k× width.
            let mut above = vdd;
            for (i, &a) in ins.iter().enumerate() {
                let below = if i + 1 == inputs {
                    out
                } else {
                    b.node(&format!("st{}", i + 1), NodeKind::Internal)
                };
                b.add_transistor(
                    TransistorKind::PEnhancement,
                    a,
                    above,
                    below,
                    Geometry::from_microns(s.p_width_um * inputs as f64, s.length_um),
                );
                above = below;
            }
        }
        Style::Nmos => {
            b.add_transistor(
                TransistorKind::Depletion,
                out,
                out,
                vdd,
                Geometry::from_microns(s.load_width_um, s.load_length_um),
            );
        }
    }
    Ok(b.build().expect("generator produces a valid network"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn nand_structure_cmos() {
        for k in 2..=4 {
            let net = nand(Style::Cmos, k, Farads::from_femto(100.0)).unwrap();
            // k series n + k parallel p
            assert_eq!(net.transistor_count(), 2 * k);
            // rails + k inputs + out + (k-1) stack nets
            assert_eq!(net.node_count(), 2 + k + 1 + (k - 1));
            assert!(validate(&net).unwrap().is_empty());
        }
    }

    #[test]
    fn nand_series_devices_are_widened() {
        let net = nand(Style::Cmos, 3, Farads::ZERO).unwrap();
        let n_width = net
            .transistors()
            .find(|(_, t)| t.kind() == TransistorKind::NEnhancement)
            .map(|(_, t)| t.geometry().width.microns())
            .unwrap();
        assert!((n_width - 24.0).abs() < 1e-9); // 8 µm × 3
    }

    #[test]
    fn nor_structure_cmos() {
        for k in 2..=4 {
            let net = nor(Style::Cmos, k, Farads::from_femto(100.0)).unwrap();
            assert_eq!(net.transistor_count(), 2 * k);
            assert!(validate(&net).unwrap().is_empty());
        }
    }

    #[test]
    fn nmos_gates_have_single_load() {
        let nand_net = nand(Style::Nmos, 3, Farads::ZERO).unwrap();
        let nor_net = nor(Style::Nmos, 3, Farads::ZERO).unwrap();
        for net in [&nand_net, &nor_net] {
            let loads = net
                .transistors()
                .filter(|(_, t)| t.kind() == TransistorKind::Depletion)
                .count();
            assert_eq!(loads, 1);
        }
        // nMOS NAND: 3 series pull-downs + 1 load
        assert_eq!(nand_net.transistor_count(), 4);
    }

    #[test]
    fn nand_pulldown_stack_reaches_ground() {
        // Walk the stack: out -> st* -> gnd must exist as a channel path.
        let net = nand(Style::Cmos, 3, Farads::ZERO).unwrap();
        let out = net.node_by_name("out").unwrap();
        let paths = crate::graph::channel_paths(&net, out, net.ground(), 16);
        assert!(paths.iter().any(|p| p.len() == 3));
    }

    #[test]
    fn nor_pullup_stack_reaches_power() {
        let net = nor(Style::Cmos, 3, Farads::ZERO).unwrap();
        let out = net.node_by_name("out").unwrap();
        let paths = crate::graph::channel_paths(&net, out, net.power(), 16);
        assert!(paths.iter().any(|p| p.len() == 3));
    }

    #[test]
    fn rejects_bad_input_counts() {
        assert!(nand(Style::Cmos, 1, Farads::ZERO).is_err());
        assert!(nand(Style::Cmos, 9, Farads::ZERO).is_err());
        assert!(nor(Style::Nmos, 0, Farads::ZERO).is_err());
    }
}
