//! A pass-transistor XOR — the textbook example of logic done with
//! channels instead of gates, and a source of both threshold-dropped
//! levels and charge-sharing hazards.

use super::{emit_inverter, Sizing, Style};
use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::NodeKind;
use crate::transistor::{Geometry, TransistorKind};
use crate::units::Farads;

/// A two-input pass-transistor XOR: `out = a·b̄ + ā·b`.
///
/// Inverters produce `na` and `nb`; four n-channel pass transistors steer
/// the buffered `b`/`nb` levels onto `out` under control of `a`/`na`.
///
/// Node names: `a`, `b`, `na`, `nb`, `bb` (buffered b), `nbb`, `out`.
///
/// # Errors
/// Currently always succeeds; the `Result` keeps the generator signature
/// uniform.
pub fn xor2(style: Style, load: Farads) -> Result<Network, NetworkError> {
    let s = Sizing::default();
    let mut bld = NetworkBuilder::new(format!(
        "xor2_{}",
        if style == Style::Cmos { "cmos" } else { "nmos" }
    ));
    bld.power();
    bld.ground();

    let a = bld.node("a", NodeKind::Input);
    let b = bld.node("b", NodeKind::Input);
    let na = bld.node("na", NodeKind::Internal);
    let nb = bld.node("nb", NodeKind::Internal);
    let bb = bld.node("bb", NodeKind::Internal);
    let nbb = bld.node("nbb", NodeKind::Internal);
    for n in [na, nb, bb, nbb] {
        bld.add_capacitance(n, Farads::from_femto(8.0));
    }
    emit_inverter(&mut bld, style, s, a, na, 1.0);
    emit_inverter(&mut bld, style, s, b, nb, 1.0);
    // Buffered true/complement of b to drive the pass network strongly.
    emit_inverter(&mut bld, style, s, nb, bb, 1.0);
    emit_inverter(&mut bld, style, s, b, nbb, 1.0);

    let out = bld.node("out", NodeKind::Output);
    bld.add_capacitance(out, load);
    let pass = Geometry::from_microns(s.n_width_um, s.length_um);
    // a = 1 selects b̄; a = 0 selects b.
    bld.add_transistor(TransistorKind::NEnhancement, a, nbb, out, pass);
    bld.add_transistor(TransistorKind::NEnhancement, na, bb, out, pass);
    Ok(bld.build().expect("generator produces a valid network"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn xor_structure() {
        let net = xor2(Style::Cmos, Farads::from_femto(50.0)).unwrap();
        // 4 inverters × 2 devices + 2 pass transistors.
        assert_eq!(net.transistor_count(), 10);
        assert!(validate(&net).unwrap().is_empty());
    }

    #[test]
    fn steering_gates_are_complementary() {
        let net = xor2(Style::Cmos, Farads::ZERO).unwrap();
        let a = net.node_by_name("a").unwrap();
        let na = net.node_by_name("na").unwrap();
        let out = net.node_by_name("out").unwrap();
        let steer_by = |gate| {
            net.gated_by(gate)
                .iter()
                .filter(|&&t| net.transistor(t).touches_channel(out))
                .count()
        };
        assert_eq!(steer_by(a), 1);
        assert_eq!(steer_by(na), 1);
    }
}
