//! A 2-to-4 address decoder (NAND + inverter per output line) — part of the
//! Table 4 experiments (E5).

use super::{emit_inverter, Sizing, Style};
use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::{NodeId, NodeKind};
use crate::transistor::{Geometry, TransistorKind};
use crate::units::Farads;

/// Emits a 2-input NAND with inputs `a`, `b` and output `y`.
fn emit_nand2(
    b: &mut NetworkBuilder,
    style: Style,
    s: Sizing,
    a: NodeId,
    bb: NodeId,
    y: NodeId,
    stack_name: &str,
) {
    let vdd = b.power();
    let gnd = b.ground();
    let mid = b.node(stack_name, NodeKind::Internal);
    b.add_transistor(
        TransistorKind::NEnhancement,
        a,
        y,
        mid,
        Geometry::from_microns(s.n_width_um * 2.0, s.length_um),
    );
    b.add_transistor(
        TransistorKind::NEnhancement,
        bb,
        mid,
        gnd,
        Geometry::from_microns(s.n_width_um * 2.0, s.length_um),
    );
    match style {
        Style::Cmos => {
            for &g in &[a, bb] {
                b.add_transistor(
                    TransistorKind::PEnhancement,
                    g,
                    y,
                    vdd,
                    Geometry::from_microns(s.p_width_um, s.length_um),
                );
            }
        }
        Style::Nmos => {
            b.add_transistor(
                TransistorKind::Depletion,
                y,
                y,
                vdd,
                Geometry::from_microns(s.load_width_um, s.load_length_um),
            );
        }
    }
}

/// A 2-to-4 decoder: address inputs `a0`, `a1`; complement lines `na0`,
/// `na1` (through inverters); each word line `w<k>` is NAND of the selected
/// polarities followed by an inverting word-line driver.
///
/// Node names: `a0`, `a1`, `na0`, `na1`, `nw0..nw3` (NAND outputs),
/// `w0..w3` (decoded outputs, each loaded with `load`).
///
/// # Errors
/// This generator is fixed-size and currently always succeeds; the
/// `Result` return keeps its signature uniform with the other generators.
pub fn decoder2to4(style: Style, load: Farads) -> Result<Network, NetworkError> {
    let s = Sizing::default();
    let mut b = NetworkBuilder::new(format!(
        "decoder2to4_{}",
        if style == Style::Cmos { "cmos" } else { "nmos" }
    ));
    b.power();
    b.ground();

    let a0 = b.node("a0", NodeKind::Input);
    let a1 = b.node("a1", NodeKind::Input);
    let na0 = b.node("na0", NodeKind::Internal);
    let na1 = b.node("na1", NodeKind::Internal);
    b.add_capacitance(na0, Farads::from_femto(10.0));
    b.add_capacitance(na1, Farads::from_femto(10.0));
    emit_inverter(&mut b, style, s, a0, na0, 1.0);
    emit_inverter(&mut b, style, s, a1, na1, 1.0);

    for k in 0..4usize {
        let in0 = if k & 1 == 0 { na0 } else { a0 };
        let in1 = if k & 2 == 0 { na1 } else { a1 };
        let nw = b.node(&format!("nw{k}"), NodeKind::Internal);
        b.add_capacitance(nw, Farads::from_femto(8.0));
        emit_nand2(&mut b, style, s, in0, in1, nw, &format!("dst{k}"));
        let w = b.node(&format!("w{k}"), NodeKind::Output);
        b.add_capacitance(w, load);
        emit_inverter(&mut b, style, s, nw, w, 2.0);
    }
    Ok(b.build().expect("generator produces a valid network"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn decoder_structure() {
        let net = decoder2to4(Style::Cmos, Farads::from_femto(200.0)).unwrap();
        // 2 input inverters (2 dev) + 4 NAND2 (4 dev) + 4 drivers (2 dev)
        assert_eq!(net.transistor_count(), 2 * 2 + 4 * 4 + 4 * 2);
        assert!(validate(&net).unwrap().is_empty());
        assert_eq!(net.outputs().len(), 4);
    }

    #[test]
    fn nmos_decoder_structure() {
        let net = decoder2to4(Style::Nmos, Farads::ZERO).unwrap();
        // 2 inverters (2 dev) + 4 NAND2 (3 dev) + 4 drivers (2 dev)
        assert_eq!(net.transistor_count(), 2 * 2 + 4 * 3 + 4 * 2);
        assert!(validate(&net).unwrap().is_empty());
    }

    #[test]
    fn word_lines_select_correct_polarities() {
        let net = decoder2to4(Style::Cmos, Farads::ZERO).unwrap();
        // w3's NAND takes the true polarities a0 and a1 as gate inputs.
        let a0 = net.node_by_name("a0").unwrap();
        let nw3 = net.node_by_name("nw3").unwrap();
        let gated = net.gated_by(a0);
        let drives_nw3 = gated
            .iter()
            .any(|&tid| net.transistor(tid).touches_channel(nw3));
        assert!(drives_nw3);
    }
}
