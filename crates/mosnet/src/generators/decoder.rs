//! Address decoders (NAND + inverter per output line) — the 2-to-4 case
//! is part of the Table 4 experiments (E5); the generalized `bits`-input
//! form scales the same structure to the 10k–50k transistor range for
//! large-circuit benchmarking (a 9-bit decoder is ~10k devices).

use super::{emit_inverter, Sizing, Style};
use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::{NodeId, NodeKind};
use crate::transistor::{Geometry, TransistorKind};
use crate::units::Farads;

/// Emits an n-input NAND with gate inputs `ins` and output `y`: a series
/// nMOS stack (internal stack nodes named `<stack_name>_<i>`) and, per
/// style, parallel pMOS pull-ups or a depletion load.
fn emit_nand(
    b: &mut NetworkBuilder,
    style: Style,
    s: Sizing,
    ins: &[NodeId],
    y: NodeId,
    stack_name: &str,
) {
    let vdd = b.power();
    let gnd = b.ground();
    // Series stack sized up by fan-in to keep pull-down strength roughly
    // that of a unit inverter.
    let nw = s.n_width_um * ins.len() as f64;
    let mut upper = y;
    for (i, &g) in ins.iter().enumerate() {
        let lower = if i + 1 == ins.len() {
            gnd
        } else {
            b.node(&format!("{stack_name}_{i}"), NodeKind::Internal)
        };
        b.add_transistor(
            TransistorKind::NEnhancement,
            g,
            upper,
            lower,
            Geometry::from_microns(nw, s.length_um),
        );
        upper = lower;
    }
    match style {
        Style::Cmos => {
            for &g in ins {
                b.add_transistor(
                    TransistorKind::PEnhancement,
                    g,
                    y,
                    vdd,
                    Geometry::from_microns(s.p_width_um, s.length_um),
                );
            }
        }
        Style::Nmos => {
            b.add_transistor(
                TransistorKind::Depletion,
                y,
                y,
                vdd,
                Geometry::from_microns(s.load_width_um, s.load_length_um),
            );
        }
    }
}

/// A `bits`-to-`2^bits` address decoder.
///
/// Address inputs `a<i>` feed inverters producing complements `na<i>`;
/// each word line `w<k>` is the NAND of the bit polarities selected by
/// `k` (input `a<i>` when bit `i` of `k` is set, else `na<i>`) followed
/// by a 2× inverting word-line driver.
///
/// Node names: `a<i>`, `na<i>` for `i ∈ 0..bits`; `nw<k>` (NAND
/// outputs) and `w<k>` (decoded outputs, each loaded with `load`) for
/// `k ∈ 0..2^bits`.
///
/// # Errors
/// Returns [`NetworkError::Invalid`] unless `1 <= bits <= 12` (a 12-bit
/// decoder is already ~100k transistors).
pub fn decoder(style: Style, bits: usize, load: Farads) -> Result<Network, NetworkError> {
    if !(1..=12).contains(&bits) {
        return Err(NetworkError::Invalid {
            message: format!("decoder needs 1..=12 address bits, got {bits}"),
        });
    }
    let s = Sizing::default();
    let mut b = NetworkBuilder::new(format!(
        "decoder{bits}to{}_{}",
        1usize << bits,
        if style == Style::Cmos { "cmos" } else { "nmos" }
    ));
    b.power();
    b.ground();

    let mut addr = Vec::with_capacity(bits);
    let mut naddr = Vec::with_capacity(bits);
    for i in 0..bits {
        let a = b.node(&format!("a{i}"), NodeKind::Input);
        let na = b.node(&format!("na{i}"), NodeKind::Internal);
        // The complement line crosses the whole decode array.
        b.add_capacitance(na, Farads::from_femto(5.0 * (1usize << bits) as f64 / 2.0));
        emit_inverter(&mut b, style, s, a, na, 1.0);
        addr.push(a);
        naddr.push(na);
    }

    let mut ins = Vec::with_capacity(bits);
    for k in 0..1usize << bits {
        ins.clear();
        for i in 0..bits {
            ins.push(if k & (1 << i) != 0 { addr[i] } else { naddr[i] });
        }
        let nw = b.node(&format!("nw{k}"), NodeKind::Internal);
        b.add_capacitance(nw, Farads::from_femto(8.0));
        emit_nand(&mut b, style, s, &ins, nw, &format!("dst{k}"));
        let w = b.node(&format!("w{k}"), NodeKind::Output);
        b.add_capacitance(w, load);
        emit_inverter(&mut b, style, s, nw, w, 2.0);
    }
    Ok(b.build().expect("generator produces a valid network"))
}

/// A 2-to-4 decoder: address inputs `a0`, `a1`; complement lines `na0`,
/// `na1` (through inverters); each word line `w<k>` is NAND of the selected
/// polarities followed by an inverting word-line driver.
///
/// Node names: `a0`, `a1`, `na0`, `na1`, `nw0..nw3` (NAND outputs),
/// `w0..w3` (decoded outputs, each loaded with `load`).
///
/// # Errors
/// This generator is fixed-size and currently always succeeds; the
/// `Result` return keeps its signature uniform with the other generators.
pub fn decoder2to4(style: Style, load: Farads) -> Result<Network, NetworkError> {
    decoder(style, 2, load)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn decoder_structure() {
        let net = decoder2to4(Style::Cmos, Farads::from_femto(200.0)).unwrap();
        // 2 input inverters (2 dev) + 4 NAND2 (4 dev) + 4 drivers (2 dev)
        assert_eq!(net.transistor_count(), 2 * 2 + 4 * 4 + 4 * 2);
        assert!(validate(&net).unwrap().is_empty());
        assert_eq!(net.outputs().len(), 4);
    }

    #[test]
    fn nmos_decoder_structure() {
        let net = decoder2to4(Style::Nmos, Farads::ZERO).unwrap();
        // 2 inverters (2 dev) + 4 NAND2 (3 dev) + 4 drivers (2 dev)
        assert_eq!(net.transistor_count(), 2 * 2 + 4 * 3 + 4 * 2);
        assert!(validate(&net).unwrap().is_empty());
    }

    #[test]
    fn word_lines_select_correct_polarities() {
        let net = decoder2to4(Style::Cmos, Farads::ZERO).unwrap();
        // w3's NAND takes the true polarities a0 and a1 as gate inputs.
        let a0 = net.node_by_name("a0").unwrap();
        let nw3 = net.node_by_name("nw3").unwrap();
        let gated = net.gated_by(a0);
        let drives_nw3 = gated
            .iter()
            .any(|&tid| net.transistor(tid).touches_channel(nw3));
        assert!(drives_nw3);
    }

    #[test]
    fn wide_decoder_counts() {
        for (bits, style) in [(4usize, Style::Cmos), (6, Style::Nmos)] {
            let lines = 1usize << bits;
            let net = decoder(style, bits, Farads::from_femto(50.0)).unwrap();
            let nand_devices = match style {
                Style::Cmos => 2 * bits, // series n + parallel p per line
                Style::Nmos => bits + 1, // series n + depletion load
            };
            let inv = 2; // every inverter is two devices in either style
            assert_eq!(
                net.transistor_count(),
                bits * inv + lines * (nand_devices + inv)
            );
            assert!(validate(&net).unwrap().is_empty());
            assert_eq!(net.outputs().len(), lines);
        }
    }

    #[test]
    fn nine_bit_decoder_reaches_benchmark_scale() {
        let net = decoder(Style::Cmos, 9, Farads::from_femto(100.0)).unwrap();
        // 9 inverters + 512 × (NAND9: 18 devices + driver: 2 devices)
        assert_eq!(net.transistor_count(), 9 * 2 + 512 * (18 + 2));
        assert!(net.transistor_count() > 10_000);
    }

    #[test]
    fn rejects_degenerate_widths() {
        assert!(decoder(Style::Cmos, 0, Farads::ZERO).is_err());
        assert!(decoder(Style::Cmos, 13, Farads::ZERO).is_err());
    }
}
