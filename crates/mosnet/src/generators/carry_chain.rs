//! A Manchester carry chain — series pass transistors with per-stage
//! pull-downs, part of the Table 4 experiments (E5).

use super::{emit_inverter, Sizing, Style};
use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::NodeKind;
use crate::transistor::{Geometry, TransistorKind};
use crate::units::Farads;

/// An `n`-bit static Manchester carry chain.
///
/// The (active-low) carry line runs through `n` pass transistors gated by
/// the propagate inputs `p1..p<n>`; each stage also has a pull-down to
/// ground gated by the generate input `g1..g<n>`. A single weak level
/// restorer (depletion load in nMOS, ground-gated pMOS in CMOS) sits on
/// the carry-out — per-stage keepers would fight an 8-bit propagation
/// hard enough to dominate its delay. Carry-in `cin` is buffered onto the
/// head of the chain; the tail is `cout`.
///
/// Node names: `cin`, `c0` (buffered carry-in), `c1..c<n-1>`, `cout`,
/// `p1..p<n>`, `g1..g<n>`.
///
/// # Errors
/// Returns [`NetworkError::Invalid`] unless `1 <= bits <= 64`.
pub fn carry_chain(style: Style, bits: usize, load: Farads) -> Result<Network, NetworkError> {
    if !(1..=64).contains(&bits) {
        return Err(NetworkError::Invalid {
            message: format!("carry chain must be 1..=64 bits, got {bits}"),
        });
    }
    let s = Sizing::default();
    let mut b = NetworkBuilder::new(format!(
        "carry{bits}_{}",
        if style == Style::Cmos { "cmos" } else { "nmos" }
    ));
    let vdd = b.power();
    let gnd = b.ground();

    let cin = b.node("cin", NodeKind::Input);
    let c0 = b.node("c0", NodeKind::Internal);
    b.add_capacitance(c0, Farads::from_femto(15.0));
    emit_inverter(&mut b, style, s, cin, c0, 2.0);

    let mut prev = c0;
    for i in 1..=bits {
        let next = if i == bits {
            b.node("cout", NodeKind::Output)
        } else {
            b.node(&format!("c{i}"), NodeKind::Internal)
        };
        // Propagate pass transistor.
        let p = b.node(&format!("p{i}"), NodeKind::Input);
        b.add_transistor(
            TransistorKind::NEnhancement,
            p,
            prev,
            next,
            Geometry::from_microns(s.n_width_um, s.length_um),
        );
        // Generate pull-down.
        let g = b.node(&format!("g{i}"), NodeKind::Input);
        b.add_transistor(
            TransistorKind::NEnhancement,
            g,
            next,
            gnd,
            Geometry::from_microns(s.n_width_um, s.length_um),
        );
        if i == bits {
            // Single weak level restorer at the chain output.
            match style {
                Style::Nmos => {
                    b.add_transistor(
                        TransistorKind::Depletion,
                        next,
                        next,
                        vdd,
                        Geometry::from_microns(s.load_width_um, s.load_length_um * 6.0),
                    );
                }
                Style::Cmos => {
                    b.add_transistor(
                        TransistorKind::PEnhancement,
                        gnd, // always on: gate at ground
                        next,
                        vdd,
                        Geometry::from_microns(s.load_width_um, s.load_length_um * 6.0),
                    );
                }
            }
            b.add_capacitance(next, load);
        } else {
            b.add_capacitance(next, Farads::from_femto(20.0));
        }
        prev = next;
    }
    Ok(b.build().expect("generator produces a valid network"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::channel_paths;
    use crate::validate::validate;

    #[test]
    fn chain_counts() {
        for bits in [1, 4, 8] {
            let net = carry_chain(Style::Nmos, bits, Farads::from_femto(50.0)).unwrap();
            // 2 buffer devices + 2 per bit (pass + pulldown) + 1 keeper
            assert_eq!(net.transistor_count(), 2 + 2 * bits + 1);
            assert!(validate(&net).unwrap().is_empty());
        }
    }

    #[test]
    fn carry_path_spans_all_bits() {
        let bits = 8;
        let net = carry_chain(Style::Cmos, bits, Farads::ZERO).unwrap();
        let c0 = net.node_by_name("c0").unwrap();
        let cout = net.node_by_name("cout").unwrap();
        let paths = channel_paths(&net, c0, cout, 4);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), bits);
    }

    #[test]
    fn each_stage_has_generate_pulldown() {
        let net = carry_chain(Style::Cmos, 4, Farads::ZERO).unwrap();
        for i in 1..=4 {
            let g = net.node_by_name(&format!("g{i}")).unwrap();
            assert_eq!(net.gated_by(g).len(), 1);
            let t = net.transistor(net.gated_by(g)[0]);
            assert!(t.touches_channel(net.ground()));
        }
    }

    #[test]
    fn rejects_degenerate_sizes() {
        assert!(carry_chain(Style::Cmos, 0, Farads::ZERO).is_err());
        assert!(carry_chain(Style::Cmos, 65, Farads::ZERO).is_err());
    }
}
