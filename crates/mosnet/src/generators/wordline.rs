//! A memory word line: a tapered driver into a heavily gate-loaded wire —
//! the fanout-dominated load case (every column hangs two access-gate
//! capacitances on the line).

use super::{emit_inverter, Sizing, Style};
use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::NodeKind;
use crate::transistor::{Geometry, TransistorKind};
use crate::units::Farads;

/// A word line with `columns` memory cells.
///
/// `in` drives a two-stage tapered buffer onto the word line `wl`; every
/// column contributes two access transistors gated by `wl` (channels
/// between the column's bit nets `bit<i>`/`nbit<i>` and cell nets
/// `cell<i>`/`ncell<i>`), plus 2 fF of wire per column.
///
/// Node names: `in`, `buf`, `wl` (output), `bit<i>`, `nbit<i>`,
/// `cell<i>`, `ncell<i>`.
///
/// # Errors
/// Returns [`NetworkError::Invalid`] unless `1 <= columns <= 256`.
pub fn wordline(style: Style, columns: usize) -> Result<Network, NetworkError> {
    if !(1..=256).contains(&columns) {
        return Err(NetworkError::Invalid {
            message: format!("wordline needs 1..=256 columns, got {columns}"),
        });
    }
    let s = Sizing::default();
    let mut b = NetworkBuilder::new(format!(
        "wordline{columns}_{}",
        if style == Style::Cmos { "cmos" } else { "nmos" }
    ));
    b.power();
    b.ground();

    let input = b.node("in", NodeKind::Input);
    let buf = b.node("buf", NodeKind::Internal);
    b.add_capacitance(buf, Farads::from_femto(10.0));
    emit_inverter(&mut b, style, s, input, buf, 2.0);
    let wl = b.node("wl", NodeKind::Output);
    emit_inverter(&mut b, style, s, buf, wl, 6.0);
    b.add_capacitance(wl, Farads::from_femto(2.0 * columns as f64));

    for i in 0..columns {
        let bit = b.node(&format!("bit{i}"), NodeKind::Internal);
        let nbit = b.node(&format!("nbit{i}"), NodeKind::Internal);
        let cell = b.node(&format!("cell{i}"), NodeKind::Internal);
        let ncell = b.node(&format!("ncell{i}"), NodeKind::Internal);
        b.add_capacitance(bit, Farads::from_femto(100.0));
        b.add_capacitance(nbit, Farads::from_femto(100.0));
        b.add_capacitance(cell, Farads::from_femto(5.0));
        b.add_capacitance(ncell, Farads::from_femto(5.0));
        let access = Geometry::from_microns(4.0, s.length_um);
        b.add_transistor(TransistorKind::NEnhancement, wl, bit, cell, access);
        b.add_transistor(TransistorKind::NEnhancement, wl, nbit, ncell, access);
    }
    Ok(b.build().expect("generator produces a valid network"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn structure_scales_with_columns() {
        for cols in [1, 16, 64] {
            let net = wordline(Style::Cmos, cols).unwrap();
            // 2 buffer inverters (2 dev each) + 2 access per column.
            assert_eq!(net.transistor_count(), 4 + 2 * cols);
            assert!(validate(&net).unwrap().is_empty());
        }
    }

    #[test]
    fn wordline_gate_fanout_grows() {
        let small = wordline(Style::Cmos, 4).unwrap();
        let large = wordline(Style::Cmos, 64).unwrap();
        let f = |net: &Network| {
            let wl = net.node_by_name("wl").unwrap();
            net.gated_by(wl).len()
        };
        assert_eq!(f(&small), 8); // two access gates per column
        assert_eq!(f(&large), 128);
    }

    #[test]
    fn rejects_bad_sizes() {
        assert!(wordline(Style::Cmos, 0).is_err());
        assert!(wordline(Style::Cmos, 257).is_err());
    }
}
