//! A pass-transistor barrel shifter — the classic "hard case" circuit for
//! MOS timing analysis (long pass-transistor paths with heavy diffusion
//! loading), used in the Table 4 experiments (E5).

use super::{emit_inverter, Sizing, Style};
use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::NodeKind;
use crate::transistor::{Geometry, TransistorKind};
use crate::units::Farads;

/// An `m × m` barrel shifter.
///
/// Each data input `d<i>` is buffered by a 2× inverter onto an internal bus
/// line `bus<i>`; output `q<j>` connects through one n-channel pass
/// transistor per shift amount `s` (gated by the one-hot control `sh<s>`)
/// to `bus<(j+s) mod m>`. Every bus line carries wiring capacitance
/// proportional to `m` (it crosses the whole array) and every output
/// carries `load`.
///
/// Node names: `d<i>`, `bus<i>`, `q<j>`, `sh<s>` for `i, j, s ∈ 0..m`.
///
/// # Errors
/// Returns [`NetworkError::Invalid`] unless `2 <= m <= 128` (the m²
/// pass matrix puts m = 128 at ~16.6k transistors).
pub fn barrel_shifter(style: Style, m: usize, load: Farads) -> Result<Network, NetworkError> {
    if !(2..=128).contains(&m) {
        return Err(NetworkError::Invalid {
            message: format!("barrel shifter size must be 2..=128, got {m}"),
        });
    }
    let s = Sizing::default();
    let mut b = NetworkBuilder::new(format!(
        "barrel_{}x{m}",
        if style == Style::Cmos { "cmos" } else { "nmos" }
    ));
    b.power();
    b.ground();

    // Buffered data inputs onto bus lines.
    for i in 0..m {
        let d = b.node(&format!("d{i}"), NodeKind::Input);
        let bus = b.node(&format!("bus{i}"), NodeKind::Internal);
        emit_inverter(&mut b, style, s, d, bus, 2.0);
        // Bus wiring crosses the full array: ~8 fF per crossing.
        b.add_capacitance(bus, Farads::from_femto(8.0 * m as f64));
    }

    // Shift controls and the pass-transistor matrix.
    for shift in 0..m {
        let ctl = b.node(&format!("sh{shift}"), NodeKind::Input);
        for j in 0..m {
            let bus = b.node(&format!("bus{}", (j + shift) % m), NodeKind::Internal);
            let q = b.node(&format!("q{j}"), NodeKind::Output);
            b.add_transistor(
                TransistorKind::NEnhancement,
                ctl,
                bus,
                q,
                Geometry::from_microns(s.n_width_um, s.length_um),
            );
        }
    }
    for j in 0..m {
        let q = b.node(&format!("q{j}"), NodeKind::Output);
        b.add_capacitance(q, load);
    }
    Ok(b.build().expect("generator produces a valid network"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn shifter_counts() {
        for m in [2, 4, 8] {
            let net = barrel_shifter(Style::Cmos, m, Farads::from_femto(100.0)).unwrap();
            // m buffers (2 devices each) + m*m pass transistors
            assert_eq!(net.transistor_count(), 2 * m + m * m);
            assert!(validate(&net).unwrap().is_empty());
        }
    }

    #[test]
    fn every_output_touches_m_pass_transistors() {
        let m = 4;
        let net = barrel_shifter(Style::Cmos, m, Farads::ZERO).unwrap();
        for j in 0..m {
            let q = net.node_by_name(&format!("q{j}")).unwrap();
            assert_eq!(net.channel_neighbors(q).len(), m);
        }
    }

    #[test]
    fn shift_wiring_is_modular() {
        let m = 4;
        let net = barrel_shifter(Style::Cmos, m, Farads::ZERO).unwrap();
        // sh1 must connect q3 to bus0 ((3+1) % 4).
        let sh1 = net.node_by_name("sh1").unwrap();
        let q3 = net.node_by_name("q3").unwrap();
        let bus0 = net.node_by_name("bus0").unwrap();
        let found = net.gated_by(sh1).iter().any(|&tid| {
            let t = net.transistor(tid);
            t.touches_channel(q3) && t.touches_channel(bus0)
        });
        assert!(found);
    }

    #[test]
    fn bus_capacitance_scales_with_size() {
        let net2 = barrel_shifter(Style::Cmos, 2, Farads::ZERO).unwrap();
        let net8 = barrel_shifter(Style::Cmos, 8, Farads::ZERO).unwrap();
        let c2 = net2.node(net2.node_by_name("bus0").unwrap()).capacitance();
        let c8 = net8.node(net8.node_by_name("bus0").unwrap()).capacitance();
        assert!(c8 > c2);
    }

    #[test]
    fn rejects_degenerate_sizes() {
        assert!(barrel_shifter(Style::Cmos, 1, Farads::ZERO).is_err());
        assert!(barrel_shifter(Style::Cmos, 129, Farads::ZERO).is_err());
    }

    #[test]
    fn full_width_shifter_reaches_benchmark_scale() {
        let net = barrel_shifter(Style::Cmos, 128, Farads::from_femto(100.0)).unwrap();
        assert_eq!(net.transistor_count(), 2 * 128 + 128 * 128);
        assert!(net.transistor_count() > 16_000);
    }
}
