//! Pass-transistor chains — the Table 3 experiments (E4), where the lumped
//! model's quadratic pessimism shows up and the RC-tree treatment shines.

use super::{emit_inverter, Sizing, Style};
use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::NodeKind;
use crate::transistor::{Geometry, TransistorKind};
use crate::units::Farads;

/// An inverter driving a series chain of `length` n-channel pass
/// transistors, all gated by the always-high control `ctl` (a primary
/// input), with `tap_cap` hanging on every intermediate net and `load` on
/// the far end.
///
/// Node names: `in` (inverter input), `drv` (inverter output / chain head),
/// `p1..p<length-1>` (intermediate taps), `out` (chain tail), `ctl`.
///
/// # Errors
/// Returns [`NetworkError::Invalid`] when `length == 0`.
pub fn pass_chain(
    style: Style,
    length: usize,
    tap_cap: Farads,
    load: Farads,
) -> Result<Network, NetworkError> {
    if length == 0 {
        return Err(NetworkError::Invalid {
            message: "pass chain needs at least one transistor".into(),
        });
    }
    let s = Sizing::default();
    let mut b = NetworkBuilder::new(format!(
        "pass_chain_{}x{length}",
        if style == Style::Cmos { "cmos" } else { "nmos" }
    ));
    b.power();
    b.ground();
    let a = b.node("in", NodeKind::Input);
    let drv = b.node("drv", NodeKind::Internal);
    b.add_capacitance(drv, Farads::from_femto(10.0));
    emit_inverter(&mut b, style, s, a, drv, 2.0);

    let ctl = b.node("ctl", NodeKind::Input);
    let mut prev = drv;
    for i in 1..=length {
        let next = if i == length {
            b.node("out", NodeKind::Output)
        } else {
            b.node(&format!("p{i}"), NodeKind::Internal)
        };
        b.add_transistor(
            TransistorKind::NEnhancement,
            ctl,
            prev,
            next,
            Geometry::from_microns(s.n_width_um, s.length_um),
        );
        if i == length {
            b.add_capacitance(next, load);
        } else {
            b.add_capacitance(next, tap_cap);
        }
        prev = next;
    }
    Ok(b.build().expect("generator produces a valid network"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::channel_paths;
    use crate::validate::validate;

    #[test]
    fn chain_lengths() {
        for n in 1..=8 {
            let net = pass_chain(
                Style::Cmos,
                n,
                Farads::from_femto(50.0),
                Farads::from_femto(100.0),
            )
            .unwrap();
            // 2 inverter devices + n pass transistors
            assert_eq!(net.transistor_count(), 2 + n);
            assert!(validate(&net).unwrap().is_empty());
        }
    }

    #[test]
    fn chain_is_a_single_path() {
        let net = pass_chain(Style::Cmos, 5, Farads::ZERO, Farads::ZERO).unwrap();
        let drv = net.node_by_name("drv").unwrap();
        let out = net.node_by_name("out").unwrap();
        let paths = channel_paths(&net, drv, out, 8);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 5);
    }

    #[test]
    fn taps_carry_capacitance() {
        let net = pass_chain(
            Style::Nmos,
            4,
            Farads::from_femto(50.0),
            Farads::from_femto(100.0),
        )
        .unwrap();
        for i in 1..4 {
            let p = net.node_by_name(&format!("p{i}")).unwrap();
            assert!((net.node(p).capacitance().femto() - 50.0).abs() < 1e-9);
        }
        let out = net.node_by_name("out").unwrap();
        assert!((net.node(out).capacitance().femto() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_empty_chain() {
        assert!(pass_chain(Style::Cmos, 0, Farads::ZERO, Farads::ZERO).is_err());
    }
}
