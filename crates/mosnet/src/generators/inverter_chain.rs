//! Inverter chains — the workhorse circuit of the paper's Table 1
//! experiments (E2).

use super::{emit_inverter, Sizing, Style};
use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::NodeKind;
use crate::units::Farads;

/// A single inverter `in -> out` with an explicit output load.
///
/// Node names: `in`, `out`.
pub fn inverter(style: Style, load: Farads) -> Network {
    let mut b = NetworkBuilder::new(match style {
        Style::Cmos => "inverter_cmos",
        Style::Nmos => "inverter_nmos",
    });
    b.power();
    b.ground();
    let a = b.node("in", NodeKind::Input);
    let y = b.node("out", NodeKind::Output);
    b.set_capacitance(y, load);
    emit_inverter(&mut b, style, Sizing::default(), a, y, 1.0);
    b.build().expect("generator produces a valid network")
}

/// A chain of `stages` inverters, each `fanout`× wider than the previous
/// (fanout-of-f sizing), terminated by `load`.
///
/// Node names: `in`, `s1` … `s<stages-1>` (intermediate nets), `out`.
/// Intermediate nets carry a small wiring capacitance (5 fF) so that even an
/// unloaded chain has nonzero delay per stage.
///
/// # Errors
/// Returns [`NetworkError::Invalid`] when `stages == 0` or `fanout <= 0`.
pub fn inverter_chain(
    style: Style,
    stages: usize,
    fanout: f64,
    load: Farads,
) -> Result<Network, NetworkError> {
    if stages == 0 {
        return Err(NetworkError::Invalid {
            message: "inverter chain needs at least one stage".into(),
        });
    }
    if !(fanout > 0.0 && fanout.is_finite()) {
        return Err(NetworkError::Invalid {
            message: format!("fanout must be positive, got {fanout}"),
        });
    }
    let mut b = NetworkBuilder::new(format!(
        "inv_chain_{}x{stages}_f{fanout}",
        match style {
            Style::Cmos => "cmos",
            Style::Nmos => "nmos",
        }
    ));
    b.power();
    b.ground();
    let sizing = Sizing::default();
    let mut prev = b.node("in", NodeKind::Input);
    let mut scale = 1.0;
    for i in 0..stages {
        let is_last = i + 1 == stages;
        let next = if is_last {
            b.node("out", NodeKind::Output)
        } else {
            b.node(&format!("s{}", i + 1), NodeKind::Internal)
        };
        emit_inverter(&mut b, style, sizing, prev, next, scale);
        if is_last {
            b.add_capacitance(next, load);
        } else {
            b.add_capacitance(next, Farads::from_femto(5.0));
        }
        prev = next;
        scale *= fanout;
    }
    Ok(b.build().expect("generator produces a valid network"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transistor::TransistorKind;
    use crate::validate::validate;

    #[test]
    fn single_inverter_structure() {
        let net = inverter(Style::Cmos, Farads::from_femto(100.0));
        assert_eq!(net.transistor_count(), 2);
        let out = net.node_by_name("out").unwrap();
        assert!((net.node(out).capacitance().femto() - 100.0).abs() < 1e-9);
        assert!(validate(&net).unwrap().is_empty());
    }

    #[test]
    fn chain_counts_scale_with_stages() {
        for stages in 1..=8 {
            let net = inverter_chain(Style::Cmos, stages, 2.0, Farads::from_femto(50.0)).unwrap();
            assert_eq!(net.transistor_count(), 2 * stages);
            // in, out, stages-1 internals, 2 rails
            assert_eq!(net.node_count(), stages + 3);
            assert!(validate(&net).unwrap().is_empty());
        }
    }

    #[test]
    fn fanout_grows_widths_geometrically() {
        let net = inverter_chain(Style::Cmos, 3, 4.0, Farads::ZERO).unwrap();
        let n_widths: Vec<f64> = net
            .transistors()
            .filter(|(_, t)| t.kind() == TransistorKind::NEnhancement)
            .map(|(_, t)| t.geometry().width.microns())
            .collect();
        assert_eq!(n_widths.len(), 3);
        assert!((n_widths[1] / n_widths[0] - 4.0).abs() < 1e-9);
        assert!((n_widths[2] / n_widths[1] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn nmos_chain_uses_depletion_loads() {
        let net = inverter_chain(Style::Nmos, 4, 1.0, Farads::ZERO).unwrap();
        let loads = net
            .transistors()
            .filter(|(_, t)| t.kind() == TransistorKind::Depletion)
            .count();
        assert_eq!(loads, 4);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(inverter_chain(Style::Cmos, 0, 2.0, Farads::ZERO).is_err());
        assert!(inverter_chain(Style::Cmos, 2, 0.0, Farads::ZERO).is_err());
        assert!(inverter_chain(Style::Cmos, 2, f64::NAN, Farads::ZERO).is_err());
    }

    #[test]
    fn intermediate_nets_have_wiring_cap() {
        let net = inverter_chain(Style::Cmos, 3, 1.0, Farads::ZERO).unwrap();
        let s1 = net.node_by_name("s1").unwrap();
        assert!(net.node(s1).capacitance().femto() > 0.0);
    }
}
