//! Exponentially-tapered buffer chains ("superbuffers") driving large
//! loads — part of the Table 4 realistic-circuit experiments (E5).

use super::{emit_inverter, Sizing, Style};
use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::NodeKind;
use crate::units::Farads;

/// A driver for a large capacitive load: `stages` inverters, each `taper`×
/// wider than the previous, ending in `load` (e.g. 1 pF of bus wiring).
///
/// Node names: `in`, `b1..b<stages-1>`, `out`.
///
/// # Errors
/// Returns [`NetworkError::Invalid`] when `stages == 0` or `taper <= 1`.
pub fn superbuffer(
    style: Style,
    stages: usize,
    taper: f64,
    load: Farads,
) -> Result<Network, NetworkError> {
    if stages == 0 {
        return Err(NetworkError::Invalid {
            message: "superbuffer needs at least one stage".into(),
        });
    }
    if !(taper > 1.0 && taper.is_finite()) {
        return Err(NetworkError::Invalid {
            message: format!("taper must exceed 1, got {taper}"),
        });
    }
    let mut b = NetworkBuilder::new(format!(
        "superbuffer_{}x{stages}_t{taper}",
        if style == Style::Cmos { "cmos" } else { "nmos" }
    ));
    b.power();
    b.ground();
    let sizing = Sizing::default();
    let mut prev = b.node("in", NodeKind::Input);
    let mut scale = 1.0;
    for i in 0..stages {
        let is_last = i + 1 == stages;
        let next = if is_last {
            b.node("out", NodeKind::Output)
        } else {
            b.node(&format!("b{}", i + 1), NodeKind::Internal)
        };
        emit_inverter(&mut b, style, sizing, prev, next, scale);
        if is_last {
            b.add_capacitance(next, load);
        } else {
            b.add_capacitance(next, Farads::from_femto(5.0));
        }
        prev = next;
        scale *= taper;
    }
    Ok(b.build().expect("generator produces a valid network"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transistor::TransistorKind;
    use crate::validate::validate;

    #[test]
    fn superbuffer_structure() {
        let net = superbuffer(Style::Cmos, 4, 3.0, Farads::from_pico(1.0)).unwrap();
        assert_eq!(net.transistor_count(), 8);
        assert!(validate(&net).unwrap().is_empty());
        let out = net.node_by_name("out").unwrap();
        assert!((net.node(out).capacitance().femto() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn widths_taper_exponentially() {
        let net = superbuffer(Style::Cmos, 3, 3.0, Farads::ZERO.max(Farads(1e-13))).unwrap();
        let widths: Vec<f64> = net
            .transistors()
            .filter(|(_, t)| t.kind() == TransistorKind::NEnhancement)
            .map(|(_, t)| t.geometry().width.microns())
            .collect();
        assert!((widths[1] / widths[0] - 3.0).abs() < 1e-9);
        assert!((widths[2] / widths[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(superbuffer(Style::Cmos, 0, 3.0, Farads::ZERO).is_err());
        assert!(superbuffer(Style::Cmos, 3, 1.0, Farads::ZERO).is_err());
        assert!(superbuffer(Style::Cmos, 3, f64::INFINITY, Farads::ZERO).is_err());
    }
}
