//! Seeded random networks for property-based testing.

use super::Style;
use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::NodeKind;
use crate::transistor::{Geometry, TransistorKind};
use crate::units::Farads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomNetworkConfig {
    /// Number of non-rail nodes to create (≥ 2).
    pub nodes: usize,
    /// Number of transistors to create (≥ 1).
    pub transistors: usize,
    /// Logic family biasing device-kind choice.
    pub style: Style,
    /// RNG seed; equal seeds give equal networks.
    pub seed: u64,
}

impl Default for RandomNetworkConfig {
    fn default() -> RandomNetworkConfig {
        RandomNetworkConfig {
            nodes: 12,
            transistors: 20,
            style: Style::Cmos,
            seed: 0,
        }
    }
}

/// Generates a structurally valid (rails present, no zero-size devices)
/// pseudo-random network. The result is deterministic in `config.seed`.
///
/// The first quarter of the nodes are marked as inputs and the last node as
/// an output, so downstream analyses always have somewhere to start and
/// finish.
///
/// # Errors
/// Returns [`NetworkError::Invalid`] when `nodes < 2` or
/// `transistors == 0`.
pub fn random_network(config: RandomNetworkConfig) -> Result<Network, NetworkError> {
    if config.nodes < 2 {
        return Err(NetworkError::Invalid {
            message: format!("random network needs >= 2 nodes, got {}", config.nodes),
        });
    }
    if config.transistors == 0 {
        return Err(NetworkError::Invalid {
            message: "random network needs >= 1 transistor".into(),
        });
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = NetworkBuilder::new(format!("random_{}", config.seed));
    let vdd = b.power();
    let gnd = b.ground();

    let n_inputs = (config.nodes / 4).max(1);
    let mut pool = Vec::with_capacity(config.nodes + 2);
    for i in 0..config.nodes {
        let kind = if i < n_inputs {
            NodeKind::Input
        } else if i + 1 == config.nodes {
            NodeKind::Output
        } else {
            NodeKind::Internal
        };
        let id = b.node(&format!("r{i}"), kind);
        b.set_capacitance(id, Farads::from_femto(rng.gen_range(1.0..100.0)));
        pool.push(id);
    }
    // Channel terminals may also be rails.
    let mut channel_pool = pool.clone();
    channel_pool.push(vdd);
    channel_pool.push(gnd);

    for _ in 0..config.transistors {
        let kind = match config.style {
            Style::Cmos => {
                if rng.gen_bool(0.5) {
                    TransistorKind::NEnhancement
                } else {
                    TransistorKind::PEnhancement
                }
            }
            Style::Nmos => {
                if rng.gen_bool(0.75) {
                    TransistorKind::NEnhancement
                } else {
                    TransistorKind::Depletion
                }
            }
        };
        let gate = pool[rng.gen_range(0..pool.len())];
        let source = channel_pool[rng.gen_range(0..channel_pool.len())];
        let mut drain = channel_pool[rng.gen_range(0..channel_pool.len())];
        if drain == source {
            // Avoid degenerate shorted channels.
            drain = if source == gnd { vdd } else { gnd };
        }
        let w = rng.gen_range(2.0..32.0);
        let l = rng.gen_range(2.0..8.0);
        b.add_transistor(kind, gate, source, drain, Geometry::from_microns(w, l));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomNetworkConfig {
            seed: 42,
            ..RandomNetworkConfig::default()
        };
        let a = random_network(cfg).unwrap();
        let b = random_network(cfg).unwrap();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.transistor_count(), b.transistor_count());
        for ((_, ta), (_, tb)) in a.transistors().zip(b.transistors()) {
            assert_eq!(ta, tb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_network(RandomNetworkConfig {
            seed: 1,
            ..Default::default()
        })
        .unwrap();
        let b = random_network(RandomNetworkConfig {
            seed: 2,
            ..Default::default()
        })
        .unwrap();
        let same = a
            .transistors()
            .zip(b.transistors())
            .all(|((_, x), (_, y))| x == y);
        assert!(!same);
    }

    #[test]
    fn no_shorted_channels() {
        for seed in 0..20 {
            let net = random_network(RandomNetworkConfig {
                seed,
                transistors: 50,
                ..Default::default()
            })
            .unwrap();
            for (_, t) in net.transistors() {
                assert_ne!(t.source(), t.drain());
            }
        }
    }

    #[test]
    fn has_inputs_and_output() {
        let net = random_network(RandomNetworkConfig::default()).unwrap();
        assert!(!net.inputs().is_empty());
        assert!(!net.outputs().is_empty());
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(random_network(RandomNetworkConfig {
            nodes: 1,
            ..Default::default()
        })
        .is_err());
        assert!(random_network(RandomNetworkConfig {
            transistors: 0,
            ..Default::default()
        })
        .is_err());
    }
}
