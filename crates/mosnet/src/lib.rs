//! # mosnet — switch-level MOS network model
//!
//! The substrate crate of the *mos-timing* workspace: a typed in-memory
//! representation of digital MOS circuits at the switch level (transistors
//! as switches, nodes with lumped capacitance), together with
//!
//! * netlist I/O — a Berkeley-style [`sim_format`] dialect and a
//!   [`spice_format`] deck subset;
//! * [`generators`] for the benchmark circuits used in the reproduction of
//!   Ousterhout's *"Switch-level delay models for digital MOS VLSI"*
//!   (DAC 1984): inverter chains, NAND/NOR stacks, pass-transistor chains,
//!   superbuffers, a barrel shifter, a Manchester carry chain, a decoder;
//! * [`graph`] utilities (channel-connected components, path enumeration);
//! * structural [`validate`] lint.
//!
//! Higher layers build on this: `nanospice` simulates a [`network::Network`]
//! with real device physics, and `crystal` runs switch-level timing
//! analysis over it.
//!
//! ## Quick example
//!
//! ```
//! use mosnet::generators::{inverter_chain, Style};
//! use mosnet::units::Farads;
//!
//! # fn main() -> Result<(), mosnet::error::NetworkError> {
//! let net = inverter_chain(Style::Cmos, 4, 2.0, Farads::from_femto(100.0))?;
//! assert_eq!(net.transistor_count(), 8);
//! let text = mosnet::sim_format::write(&net);
//! let back = mosnet::sim_format::parse(&text, "roundtrip")?;
//! assert_eq!(back.transistor_count(), 8);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diff;
pub mod error;
pub mod generators;
pub mod graph;
pub mod network;
pub mod node;
pub mod sim_format;
pub mod spice_format;
pub mod transistor;
pub mod units;
pub mod validate;

pub use diff::{Edit, NetworkDiff, TransistorDesc};
pub use error::NetworkError;
pub use network::{Network, NetworkBuilder};
pub use node::{Node, NodeId, NodeKind};
pub use transistor::{Geometry, Transistor, TransistorId, TransistorKind};
