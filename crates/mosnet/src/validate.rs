//! Structural lint for networks: catches netlist mistakes before analysis.

use crate::error::NetworkError;
use crate::network::Network;
use crate::node::NodeKind;
use crate::transistor::TransistorKind;

/// A non-fatal structural finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// A node with no channel connection and no gate fanout.
    DanglingNode {
        /// Name of the node.
        node: String,
    },
    /// A transistor whose source and drain are the same node (no effect).
    ShortedChannel {
        /// Index of the transistor.
        transistor: usize,
    },
    /// A transistor channel directly bridging VDD and GND (crowbar).
    RailToRail {
        /// Index of the transistor.
        transistor: usize,
    },
    /// An internal node whose gate fanout exists but which no channel can
    /// ever drive (a floating gate input).
    UndrivenGate {
        /// Name of the node.
        node: String,
    },
    /// A depletion load whose gate is not tied to its source or a rail —
    /// legal but almost always a netlist mistake in nMOS.
    SuspiciousDepletionGate {
        /// Index of the transistor.
        transistor: usize,
    },
}

/// Runs all structural checks.
///
/// # Errors
/// Returns [`NetworkError::Invalid`] for fatal problems (currently: a
/// transistor gated by its own channel terminal in a way that shorts the
/// network is *not* fatal; only malformed ids would be, and those cannot be
/// constructed through the public API). The `Ok` value carries the list of
/// warnings, which may be empty.
pub fn validate(net: &Network) -> Result<Vec<Warning>, NetworkError> {
    let mut warnings = Vec::new();

    for (id, node) in net.nodes() {
        if node.kind().is_rail() {
            continue;
        }
        let has_channel = !net.channel_neighbors(id).is_empty();
        let has_fanout = !net.gated_by(id).is_empty();
        if !has_channel && !has_fanout && node.kind() == NodeKind::Internal {
            warnings.push(Warning::DanglingNode {
                node: node.name().to_string(),
            });
        }
        // A node that gates transistors but can never be driven: no channel
        // connection and not externally driven.
        if has_fanout && !has_channel && !node.kind().is_driven_externally() {
            warnings.push(Warning::UndrivenGate {
                node: node.name().to_string(),
            });
        }
    }

    for (tid, t) in net.transistors() {
        if t.source() == t.drain() {
            warnings.push(Warning::ShortedChannel {
                transistor: tid.index(),
            });
        }
        let touches_power = t.source() == net.power() || t.drain() == net.power();
        let touches_ground = t.source() == net.ground() || t.drain() == net.ground();
        if touches_power && touches_ground {
            warnings.push(Warning::RailToRail {
                transistor: tid.index(),
            });
        }
        if t.kind() == TransistorKind::Depletion {
            let gate_ok = t.gate() == t.source()
                || t.gate() == t.drain()
                || t.gate() == net.power()
                || t.gate() == net.ground();
            if !gate_ok {
                warnings.push(Warning::SuspiciousDepletionGate {
                    transistor: tid.index(),
                });
            }
        }
    }

    Ok(warnings)
}

/// Convenience wrapper that turns any warning into a hard error.
///
/// # Errors
/// Returns [`NetworkError::Invalid`] describing the first warning if the
/// network is not perfectly clean.
pub fn validate_strict(net: &Network) -> Result<(), NetworkError> {
    let warnings = validate(net)?;
    if let Some(w) = warnings.first() {
        return Err(NetworkError::Invalid {
            message: format!("{w:?}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::node::NodeKind;
    use crate::transistor::{Geometry, TransistorKind};

    #[test]
    fn clean_inverter_has_no_warnings() {
        let mut b = NetworkBuilder::new("inv");
        let vdd = b.power();
        let gnd = b.ground();
        let a = b.node("a", NodeKind::Input);
        let y = b.node("y", NodeKind::Output);
        b.add_transistor(TransistorKind::NEnhancement, a, y, gnd, Geometry::default());
        b.add_transistor(TransistorKind::PEnhancement, a, y, vdd, Geometry::default());
        let net = b.build().unwrap();
        assert!(validate(&net).unwrap().is_empty());
        assert!(validate_strict(&net).is_ok());
    }

    #[test]
    fn detects_dangling_node() {
        let mut b = NetworkBuilder::new("d");
        b.power();
        b.ground();
        b.node("orphan", NodeKind::Internal);
        let net = b.build().unwrap();
        let ws = validate(&net).unwrap();
        assert!(ws.contains(&Warning::DanglingNode {
            node: "orphan".into()
        }));
        assert!(validate_strict(&net).is_err());
    }

    #[test]
    fn detects_shorted_channel_and_rail_to_rail() {
        let mut b = NetworkBuilder::new("s");
        let vdd = b.power();
        let gnd = b.ground();
        let a = b.node("a", NodeKind::Input);
        b.add_transistor(TransistorKind::NEnhancement, a, a, a, Geometry::default());
        b.add_transistor(
            TransistorKind::NEnhancement,
            a,
            vdd,
            gnd,
            Geometry::default(),
        );
        let net = b.build().unwrap();
        let ws = validate(&net).unwrap();
        assert!(ws.contains(&Warning::ShortedChannel { transistor: 0 }));
        assert!(ws.contains(&Warning::RailToRail { transistor: 1 }));
    }

    #[test]
    fn detects_undriven_gate() {
        let mut b = NetworkBuilder::new("u");
        let vdd = b.power();
        b.ground();
        // `ctl` gates a transistor but nothing can ever drive it.
        let ctl = b.node("ctl", NodeKind::Internal);
        let x = b.node("x", NodeKind::Output);
        b.add_transistor(
            TransistorKind::NEnhancement,
            ctl,
            vdd,
            x,
            Geometry::default(),
        );
        let net = b.build().unwrap();
        let ws = validate(&net).unwrap();
        assert!(ws.contains(&Warning::UndrivenGate { node: "ctl".into() }));
    }

    #[test]
    fn depletion_gate_conventions() {
        let mut b = NetworkBuilder::new("dep");
        let vdd = b.power();
        b.ground();
        let y = b.node("y", NodeKind::Output);
        let a = b.node("a", NodeKind::Input);
        // Proper nMOS load: gate tied to source.
        b.add_transistor(TransistorKind::Depletion, y, y, vdd, Geometry::default());
        // Suspicious: gate tied to an unrelated input.
        b.add_transistor(TransistorKind::Depletion, a, y, vdd, Geometry::default());
        let net = b.build().unwrap();
        let ws = validate(&net).unwrap();
        assert!(!ws.contains(&Warning::SuspiciousDepletionGate { transistor: 0 }));
        assert!(ws.contains(&Warning::SuspiciousDepletionGate { transistor: 1 }));
    }
}
