//! Circuit nodes: the electrical nets a switch-level network connects.

use crate::units::Farads;
use std::fmt;

/// Index of a node within a [`Network`](crate::network::Network).
///
/// Node ids are dense, stable, and assigned in insertion order, so they can
/// be used to index side tables (`Vec`s) kept by analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `NodeId` from a dense index.
    ///
    /// Intended for analyses that store per-node data in `Vec`s; passing an
    /// index that does not belong to the network the id is used with will
    /// cause lookups to panic or return unrelated nodes.
    #[inline]
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The electrical role of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// The ground rail (0 V). Exactly one per network.
    Ground,
    /// The positive supply rail (VDD). Exactly one per network.
    Power,
    /// A primary input driven from outside the network.
    Input,
    /// A primary output observed from outside the network.
    Output,
    /// An ordinary internal net.
    Internal,
}

impl NodeKind {
    /// `true` for the two supply rails, which are infinitely strong drivers.
    #[inline]
    pub fn is_rail(self) -> bool {
        matches!(self, NodeKind::Ground | NodeKind::Power)
    }

    /// `true` when the node's value is imposed from outside the network
    /// (rails and primary inputs).
    #[inline]
    pub fn is_driven_externally(self) -> bool {
        matches!(self, NodeKind::Ground | NodeKind::Power | NodeKind::Input)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Ground => "ground",
            NodeKind::Power => "power",
            NodeKind::Input => "input",
            NodeKind::Output => "output",
            NodeKind::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// A single electrical net with its name, role, and lumped capacitance.
///
/// The capacitance recorded here is the *explicit* node capacitance (wiring
/// plus any annotated load). Device capacitances contributed by transistor
/// gates and diffusions are added on top by the technology model in the
/// `crystal` crate and by the device models in `nanospice`.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    name: String,
    kind: NodeKind,
    capacitance: Farads,
}

impl Node {
    /// Creates a node. Prefer building nodes through
    /// [`NetworkBuilder`](crate::network::NetworkBuilder), which also
    /// registers the name for lookup.
    pub fn new(name: impl Into<String>, kind: NodeKind, capacitance: Farads) -> Node {
        Node {
            name: name.into(),
            kind,
            capacitance,
        }
    }

    /// The node's name as given in the netlist.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's electrical role.
    #[inline]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Explicit (wiring + annotated) capacitance to ground.
    #[inline]
    pub fn capacitance(&self) -> Farads {
        self.capacitance
    }

    pub(crate) fn set_capacitance(&mut self, c: Farads) {
        self.capacitance = c;
    }

    pub(crate) fn add_capacitance(&mut self, c: Farads) {
        self.capacitance += c;
    }

    pub(crate) fn set_kind(&mut self, kind: NodeKind) {
        self.kind = kind;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_kind_classification() {
        assert!(NodeKind::Ground.is_rail());
        assert!(NodeKind::Power.is_rail());
        assert!(!NodeKind::Input.is_rail());
        assert!(NodeKind::Input.is_driven_externally());
        assert!(!NodeKind::Output.is_driven_externally());
        assert!(!NodeKind::Internal.is_driven_externally());
    }

    #[test]
    fn node_accessors() {
        let mut n = Node::new("out", NodeKind::Output, Farads::from_femto(25.0));
        assert_eq!(n.name(), "out");
        assert_eq!(n.kind(), NodeKind::Output);
        assert!((n.capacitance().femto() - 25.0).abs() < 1e-9);
        n.add_capacitance(Farads::from_femto(5.0));
        assert!((n.capacitance().femto() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "n7");
    }

    #[test]
    fn kind_display_names() {
        assert_eq!(NodeKind::Ground.to_string(), "ground");
        assert_eq!(NodeKind::Internal.to_string(), "internal");
    }
}
