//! MOS transistors viewed as switches with geometry.

use crate::node::NodeId;
use crate::units::Metres;
use std::fmt;

/// Index of a transistor within a [`Network`](crate::network::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransistorId(pub(crate) u32);

impl TransistorId {
    /// Returns the dense index of this transistor.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `TransistorId` from a dense index (see
    /// [`NodeId::from_index`](crate::node::NodeId::from_index) for caveats).
    #[inline]
    pub fn from_index(index: usize) -> TransistorId {
        TransistorId(index as u32)
    }
}

impl fmt::Display for TransistorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The three device kinds of classical digital MOS.
///
/// nMOS logic uses [`NEnhancement`](TransistorKind::NEnhancement) pull-downs
/// with a [`Depletion`](TransistorKind::Depletion) load whose gate is tied to
/// its source; CMOS pairs n- and p-enhancement devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransistorKind {
    /// n-channel enhancement device (conducts when its gate is high).
    NEnhancement,
    /// p-channel enhancement device (conducts when its gate is low).
    PEnhancement,
    /// n-channel depletion device (always on; the classic nMOS load).
    Depletion,
}

impl TransistorKind {
    /// All kinds, in a stable order (useful for per-kind tables).
    pub const ALL: [TransistorKind; 3] = [
        TransistorKind::NEnhancement,
        TransistorKind::PEnhancement,
        TransistorKind::Depletion,
    ];

    /// Dense index for per-kind lookup tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            TransistorKind::NEnhancement => 0,
            TransistorKind::PEnhancement => 1,
            TransistorKind::Depletion => 2,
        }
    }

    /// One-letter code used by the `.sim` netlist dialect.
    #[inline]
    pub fn code(self) -> char {
        match self {
            TransistorKind::NEnhancement => 'n',
            TransistorKind::PEnhancement => 'p',
            TransistorKind::Depletion => 'd',
        }
    }

    /// Parses a `.sim` one-letter device code.
    pub fn from_code(c: char) -> Option<TransistorKind> {
        match c {
            'n' | 'e' => Some(TransistorKind::NEnhancement),
            'p' => Some(TransistorKind::PEnhancement),
            'd' => Some(TransistorKind::Depletion),
            _ => None,
        }
    }
}

impl fmt::Display for TransistorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TransistorKind::NEnhancement => "n-enhancement",
            TransistorKind::PEnhancement => "p-enhancement",
            TransistorKind::Depletion => "depletion",
        };
        f.write_str(s)
    }
}

/// Channel geometry: drawn width and length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometry {
    /// Channel width.
    pub width: Metres,
    /// Channel length.
    pub length: Metres,
}

impl Geometry {
    /// Creates a geometry from microns, the customary layout unit.
    ///
    /// # Panics
    /// Panics if either dimension is not strictly positive and finite.
    pub fn from_microns(width_um: f64, length_um: f64) -> Geometry {
        assert!(
            width_um > 0.0 && width_um.is_finite(),
            "transistor width must be positive, got {width_um}"
        );
        assert!(
            length_um > 0.0 && length_um.is_finite(),
            "transistor length must be positive, got {length_um}"
        );
        Geometry {
            width: Metres::from_microns(width_um),
            length: Metres::from_microns(length_um),
        }
    }

    /// Width-to-length ratio; drive strength scales with this.
    #[inline]
    pub fn aspect(self) -> f64 {
        self.width / self.length
    }

    /// Length-to-width ratio; channel resistance scales with this.
    #[inline]
    pub fn squares(self) -> f64 {
        self.length / self.width
    }

    /// Gate area (`W × L`), the dominant term of the gate capacitance.
    #[inline]
    pub fn gate_area(self) -> f64 {
        self.width.value() * self.length.value()
    }
}

impl Default for Geometry {
    /// A minimum-size 4 µm-process device: W = L = 4 µm.
    fn default() -> Geometry {
        Geometry::from_microns(4.0, 4.0)
    }
}

/// A MOS transistor: a voltage-controlled switch between `source` and
/// `drain`, controlled by `gate`.
///
/// Source and drain are interchangeable at the switch level; analyses that
/// care about signal direction (pass-transistor flow) determine it from
/// context rather than from which terminal was listed first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transistor {
    kind: TransistorKind,
    gate: NodeId,
    source: NodeId,
    drain: NodeId,
    geometry: Geometry,
}

impl Transistor {
    /// Creates a transistor. Prefer
    /// [`NetworkBuilder::add_transistor`](crate::network::NetworkBuilder::add_transistor).
    pub fn new(
        kind: TransistorKind,
        gate: NodeId,
        source: NodeId,
        drain: NodeId,
        geometry: Geometry,
    ) -> Transistor {
        Transistor {
            kind,
            gate,
            source,
            drain,
            geometry,
        }
    }

    /// Device kind.
    #[inline]
    pub fn kind(&self) -> TransistorKind {
        self.kind
    }

    /// Gate terminal.
    #[inline]
    pub fn gate(&self) -> NodeId {
        self.gate
    }

    /// Source terminal (interchangeable with drain at the switch level).
    #[inline]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Drain terminal (interchangeable with source at the switch level).
    #[inline]
    pub fn drain(&self) -> NodeId {
        self.drain
    }

    /// Channel geometry.
    #[inline]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Given one channel terminal, returns the opposite one.
    ///
    /// # Panics
    /// Panics if `node` is neither the source nor the drain.
    pub fn other_terminal(&self, node: NodeId) -> NodeId {
        if node == self.source {
            self.drain
        } else if node == self.drain {
            self.source
        } else {
            panic!("{node} is not a channel terminal of this transistor");
        }
    }

    /// `true` if `node` is the source or the drain.
    #[inline]
    pub fn touches_channel(&self, node: NodeId) -> bool {
        self.source == node || self.drain == node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids() -> (NodeId, NodeId, NodeId) {
        (
            NodeId::from_index(0),
            NodeId::from_index(1),
            NodeId::from_index(2),
        )
    }

    #[test]
    fn kind_codes_roundtrip() {
        for kind in TransistorKind::ALL {
            assert_eq!(TransistorKind::from_code(kind.code()), Some(kind));
        }
        // 'e' is the legacy esim alias for an enhancement device.
        assert_eq!(
            TransistorKind::from_code('e'),
            Some(TransistorKind::NEnhancement)
        );
        assert_eq!(TransistorKind::from_code('x'), None);
    }

    #[test]
    fn kind_indices_are_dense_and_distinct() {
        let mut seen = [false; 3];
        for kind in TransistorKind::ALL {
            assert!(!seen[kind.index()]);
            seen[kind.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn geometry_ratios() {
        let g = Geometry::from_microns(8.0, 2.0);
        assert!((g.aspect() - 4.0).abs() < 1e-12);
        assert!((g.squares() - 0.25).abs() < 1e-12);
        assert!((g.gate_area() - 16e-12).abs() < 1e-22);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn geometry_rejects_zero_width() {
        let _ = Geometry::from_microns(0.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn geometry_rejects_negative_length() {
        let _ = Geometry::from_microns(2.0, -1.0);
    }

    #[test]
    fn other_terminal_swaps() {
        let (g, s, d) = ids();
        let t = Transistor::new(TransistorKind::NEnhancement, g, s, d, Geometry::default());
        assert_eq!(t.other_terminal(s), d);
        assert_eq!(t.other_terminal(d), s);
        assert!(t.touches_channel(s));
        assert!(t.touches_channel(d));
        assert!(!t.touches_channel(g));
    }

    #[test]
    #[should_panic(expected = "not a channel terminal")]
    fn other_terminal_rejects_gate() {
        let (g, s, d) = ids();
        let t = Transistor::new(TransistorKind::NEnhancement, g, s, d, Geometry::default());
        let _ = t.other_terminal(g);
    }
}
