//! Strongly-typed physical quantities used throughout the workspace.
//!
//! All values are stored in SI base units (`f64`). Newtypes keep ohms,
//! farads, volts, seconds, and metres from being mixed up, while the few
//! physically meaningful products (e.g. `Ohms * Farads = Seconds`) are
//! provided as operator overloads.
//!
//! ```
//! use mosnet::units::{Farads, Ohms};
//!
//! let tau = Ohms(10_000.0) * Farads(50e-15);
//! assert!((tau.0 - 5e-10).abs() < 1e-22);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Implements the standard arithmetic surface shared by every unit newtype.
macro_rules! unit_type {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw `f64` value in SI base units.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// `true` when the underlying value is finite (not NaN/inf).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|v| v.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $suffix)
            }
        }
    };
}

unit_type!(
    /// Electrical resistance in ohms.
    Ohms,
    "ohm"
);
unit_type!(
    /// Capacitance in farads.
    Farads,
    "F"
);
unit_type!(
    /// Electric potential in volts.
    Volts,
    "V"
);
unit_type!(
    /// Time in seconds.
    Seconds,
    "s"
);
unit_type!(
    /// Length in metres (device geometry is usually given in microns).
    Metres,
    "m"
);
unit_type!(
    /// Current in amperes.
    Amperes,
    "A"
);

impl Mul<Farads> for Ohms {
    type Output = Seconds;
    /// The RC product — the fundamental time constant of a stage.
    #[inline]
    fn mul(self, rhs: Farads) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

impl Mul<Ohms> for Farads {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: Ohms) -> Seconds {
        Seconds(self.0 * rhs.0)
    }
}

impl Div<Ohms> for Volts {
    type Output = Amperes;
    #[inline]
    fn div(self, rhs: Ohms) -> Amperes {
        Amperes(self.0 / rhs.0)
    }
}

impl Div<Amperes> for Volts {
    type Output = Ohms;
    #[inline]
    fn div(self, rhs: Amperes) -> Ohms {
        Ohms(self.0 / rhs.0)
    }
}

impl Metres {
    /// Constructs a length from microns (the customary layout unit).
    ///
    /// ```
    /// use mosnet::units::Metres;
    /// assert!((Metres::from_microns(4.0).value() - 4.0e-6).abs() < 1e-18);
    /// ```
    #[inline]
    pub fn from_microns(um: f64) -> Metres {
        Metres(um * 1e-6)
    }

    /// Returns this length expressed in microns.
    #[inline]
    pub fn microns(self) -> f64 {
        self.0 * 1e6
    }
}

impl Farads {
    /// Constructs a capacitance from femtofarads.
    #[inline]
    pub fn from_femto(ff: f64) -> Farads {
        Farads(ff * 1e-15)
    }

    /// Constructs a capacitance from picofarads.
    #[inline]
    pub fn from_pico(pf: f64) -> Farads {
        Farads(pf * 1e-12)
    }

    /// Returns this capacitance in femtofarads.
    #[inline]
    pub fn femto(self) -> f64 {
        self.0 * 1e15
    }
}

impl Seconds {
    /// Constructs a time from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> Seconds {
        Seconds(ns * 1e-9)
    }

    /// Constructs a time from picoseconds.
    #[inline]
    pub fn from_picos(ps: f64) -> Seconds {
        Seconds(ps * 1e-12)
    }

    /// Returns this time in nanoseconds.
    #[inline]
    pub fn nanos(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns this time in picoseconds.
    #[inline]
    pub fn picos(self) -> f64 {
        self.0 * 1e12
    }
}

impl Ohms {
    /// Constructs a resistance from kilohms.
    #[inline]
    pub fn from_kilo(kohm: f64) -> Ohms {
        Ohms(kohm * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_product_is_seconds() {
        let tau = Ohms(1e4) * Farads(1e-13);
        assert!((tau.value() - 1e-9).abs() < 1e-21);
        let tau2 = Farads(1e-13) * Ohms(1e4);
        assert_eq!(tau, tau2);
    }

    #[test]
    fn ratio_of_like_units_is_dimensionless() {
        let r = Seconds(4.0) / Seconds(2.0);
        assert_eq!(r, 2.0);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let mut c = Farads::from_femto(50.0);
        c += Farads::from_femto(25.0);
        c -= Farads::from_femto(15.0);
        assert!((c.femto() - 60.0).abs() < 1e-9);
        assert_eq!((-c).abs(), c);
    }

    #[test]
    fn scalar_multiplication_both_sides() {
        assert_eq!(2.0 * Ohms(3.0), Ohms(3.0) * 2.0);
        assert_eq!(Ohms(6.0) / 2.0, Ohms(3.0));
    }

    #[test]
    fn unit_conversions() {
        assert!((Metres::from_microns(2.0).microns() - 2.0).abs() < 1e-12);
        assert!((Seconds::from_nanos(3.0).picos() - 3000.0).abs() < 1e-9);
        assert!((Farads::from_pico(1.0).femto() - 1000.0).abs() < 1e-9);
        assert!((Ohms::from_kilo(2.0).value() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn ordering_and_extrema() {
        assert!(Seconds(1.0) < Seconds(2.0));
        assert_eq!(Seconds(1.0).max(Seconds(2.0)), Seconds(2.0));
        assert_eq!(Seconds(1.0).min(Seconds(2.0)), Seconds(1.0));
    }

    #[test]
    fn sum_of_units() {
        let total: Farads = [Farads(1.0), Farads(2.0), Farads(3.0)].into_iter().sum();
        assert_eq!(total, Farads(6.0));
    }

    #[test]
    fn ohms_law_helpers() {
        let i = Volts(5.0) / Ohms(1000.0);
        assert!((i.value() - 0.005).abs() < 1e-12);
        let r = Volts(5.0) / Amperes(0.005);
        assert!((r.value() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn display_includes_suffix() {
        assert_eq!(format!("{}", Volts(5.0)), "5 V");
        assert_eq!(format!("{}", Ohms(10.0)), "10 ohm");
    }
}
