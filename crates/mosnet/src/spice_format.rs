//! Writer and parser for a SPICE-deck subset, for interoperability with
//! external circuit simulators.
//!
//! The writer emits a flat deck with `M` (MOSFET), `C` (capacitor) cards and
//! `.model` cards named `NMOS`, `PMOS`, and `DMOS`. The parser accepts the
//! same subset plus `R` cards (mapped to nothing at the switch level — they
//! are rejected, since a switch-level network has no resistor primitive) and
//! `*` comments, `.end`, and continuation via `+`.

use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::NodeKind;
use crate::transistor::{Geometry, TransistorKind};
use crate::units::Farads;
use std::fmt::Write as _;

/// Serializes a network as a flat SPICE deck.
///
/// Node names are used verbatim except the rails, which become `vdd` and
/// `0` (the SPICE ground convention).
pub fn write(net: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "* {}", net.name());
    let _ = writeln!(out, "VDD {} 0 DC 5.0", net.node(net.power()).name());
    let name_of = |id| {
        if id == net.ground() {
            "0".to_string()
        } else {
            net.node(id).name().to_string()
        }
    };
    for (tid, t) in net.transistors() {
        let model = match t.kind() {
            TransistorKind::NEnhancement => "NMOS",
            TransistorKind::PEnhancement => "PMOS",
            TransistorKind::Depletion => "DMOS",
        };
        let bulk = if t.kind() == TransistorKind::PEnhancement {
            name_of(net.power())
        } else {
            "0".to_string()
        };
        let g = t.geometry();
        let _ = writeln!(
            out,
            "M{} {} {} {} {} {} W={}U L={}U",
            tid.index(),
            name_of(t.drain()),
            name_of(t.gate()),
            name_of(t.source()),
            bulk,
            model,
            g.width.microns(),
            g.length.microns(),
        );
    }
    let mut cap_index = 0usize;
    for (id, node) in net.nodes() {
        if node.capacitance() > Farads::ZERO {
            let _ = writeln!(
                out,
                "C{} {} 0 {}",
                cap_index,
                name_of(id),
                format_si(node.capacitance().value())
            );
            cap_index += 1;
        }
    }
    out.push_str(".model NMOS NMOS (LEVEL=1)\n");
    out.push_str(".model PMOS PMOS (LEVEL=1)\n");
    out.push_str(".model DMOS NMOS (LEVEL=1)\n");
    out.push_str(".end\n");
    out
}

fn format_si(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    let scales: [(f64, &str); 4] = [(1e-15, "F"), (1e-12, "P"), (1e-9, "N"), (1e-6, "U")];
    for (scale, suffix) in scales {
        let scaled = value / scale;
        if (0.999..1000.0).contains(&scaled.abs()) {
            return format!("{scaled:.6}{suffix}");
        }
    }
    format!("{value:e}")
}

/// Parses a SPICE value with an optional engineering suffix
/// (`F P N U M K MEG G`, case-insensitive, trailing unit letters ignored).
pub fn parse_value(text: &str) -> Option<f64> {
    let t = text.trim().to_ascii_uppercase();
    let end = t.find(|c: char| c.is_ascii_alphabetic()).unwrap_or(t.len());
    let (num, suffix) = t.split_at(end);
    let base: f64 = num.parse().ok()?;
    let mult = if suffix.starts_with("MEG") {
        1e6
    } else {
        match suffix.chars().next() {
            None => 1.0,
            Some('F') => 1e-15,
            Some('P') => 1e-12,
            Some('N') => 1e-9,
            Some('U') => 1e-6,
            Some('M') => 1e-3,
            Some('K') => 1e3,
            Some('G') => 1e9,
            Some(_) => return None,
        }
    };
    Some(base * mult)
}

/// Parses a flat SPICE deck (the subset produced by [`write()`]) into a
/// [`Network`].
///
/// # Errors
/// Returns [`NetworkError::Parse`] for unsupported cards or malformed
/// fields, and [`NetworkError::MissingRail`] when the deck mentions no
/// supply nodes.
pub fn parse(source: &str, name: &str) -> Result<Network, NetworkError> {
    let mut b = NetworkBuilder::new(name);
    // Join continuation lines first.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let text = raw.trim_end();
        if let Some(cont) = text.trim_start().strip_prefix('+') {
            if let Some(last) = logical.last_mut() {
                last.1.push(' ');
                last.1.push_str(cont);
                continue;
            }
        }
        logical.push((lineno + 1, text.to_string()));
    }

    for (line, text) in logical {
        let t = text.trim();
        if t.is_empty() || t.starts_with('*') {
            continue;
        }
        let lower = t.to_ascii_lowercase();
        if lower.starts_with(".model") || lower.starts_with(".end") {
            continue;
        }
        let fields: Vec<&str> = t.split_whitespace().collect();
        let cols = field_columns(&text);
        let err = |field: usize, message: String| NetworkError::Parse {
            line,
            column: cols.get(field).copied().unwrap_or(1),
            message,
        };
        let card = fields[0]
            .chars()
            .next()
            .expect("non-empty field")
            .to_ascii_uppercase();
        match card {
            'M' => {
                if fields.len() < 6 {
                    return Err(err(0, "M card needs drain gate source bulk model".into()));
                }
                let drain = spice_node(&mut b, fields[1]);
                let gate = spice_node(&mut b, fields[2]);
                let source_n = spice_node(&mut b, fields[3]);
                // fields[4] is bulk — ignored at the switch level.
                let kind = match fields[5].to_ascii_uppercase().as_str() {
                    "NMOS" => TransistorKind::NEnhancement,
                    "PMOS" => TransistorKind::PEnhancement,
                    "DMOS" => TransistorKind::Depletion,
                    other => return Err(err(5, format!("unknown MOS model `{other}`"))),
                };
                let mut w_um = 4.0;
                let mut l_um = 4.0;
                for (offset, f) in fields[6..].iter().enumerate() {
                    let up = f.to_ascii_uppercase();
                    if let Some(v) = up.strip_prefix("W=") {
                        w_um = parse_value(v)
                            .filter(|w| *w > 0.0 && w.is_finite())
                            .ok_or_else(|| {
                                err(6 + offset, format!("width must be positive, got `{f}`"))
                            })?
                            * 1e6;
                    } else if let Some(v) = up.strip_prefix("L=") {
                        l_um = parse_value(v)
                            .filter(|l| *l > 0.0 && l.is_finite())
                            .ok_or_else(|| {
                                err(6 + offset, format!("length must be positive, got `{f}`"))
                            })?
                            * 1e6;
                    }
                }
                b.add_transistor(
                    kind,
                    gate,
                    source_n,
                    drain,
                    Geometry::from_microns(w_um, l_um),
                );
            }
            'C' => {
                if fields.len() < 4 {
                    return Err(err(0, "C card needs node node value".into()));
                }
                let n1 = spice_node(&mut b, fields[1]);
                let n2 = spice_node(&mut b, fields[2]);
                let value = parse_value(fields[3])
                    .filter(|c| *c >= 0.0 && c.is_finite())
                    .ok_or_else(|| {
                        err(
                            3,
                            format!("capacitance must be non-negative, got `{}`", fields[3]),
                        )
                    })?;
                let cap = Farads(value);
                let n1_rail = fields[1] == "0" || crate::network::POWER_NAMES.contains(&fields[1]);
                let n2_rail = fields[2] == "0" || crate::network::POWER_NAMES.contains(&fields[2]);
                match (n1_rail, n2_rail) {
                    (true, true) => {}
                    (true, false) => b.add_capacitance(n2, cap),
                    (false, true) => b.add_capacitance(n1, cap),
                    (false, false) => {
                        b.add_capacitance(n1, cap);
                        b.add_capacitance(n2, cap);
                    }
                }
            }
            'V' => {
                // A supply card declares the power rail (the value is
                // irrelevant at the switch level); `0` is ground.
                if fields.len() < 3 {
                    return Err(err(0, "V card needs pos neg [value]".into()));
                }
                for terminal in [fields[1], fields[2]] {
                    if terminal == "0" {
                        b.ground();
                    } else {
                        b.declare_power(terminal);
                    }
                }
            }
            other => {
                return Err(err(
                    0,
                    format!("unsupported card `{other}` at the switch level"),
                ));
            }
        }
    }
    b.build()
}

/// 1-based byte column of each whitespace-separated field in `text`.
fn field_columns(text: &str) -> Vec<usize> {
    let mut cols = Vec::new();
    let mut in_token = false;
    for (i, c) in text.char_indices() {
        if c.is_whitespace() {
            in_token = false;
        } else if !in_token {
            in_token = true;
            cols.push(i + 1);
        }
    }
    cols
}

fn spice_node(b: &mut NetworkBuilder, name: &str) -> crate::node::NodeId {
    if name == "0" {
        b.ground()
    } else {
        b.node(name, NodeKind::Internal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    fn inverter() -> Network {
        let mut b = NetworkBuilder::new("inv");
        let vdd = b.power();
        let gnd = b.ground();
        let a = b.node("a", NodeKind::Input);
        let y = b.node("y", NodeKind::Output);
        b.set_capacitance(y, Farads::from_femto(50.0));
        b.add_transistor(
            TransistorKind::NEnhancement,
            a,
            y,
            gnd,
            Geometry::from_microns(8.0, 2.0),
        );
        b.add_transistor(
            TransistorKind::PEnhancement,
            a,
            y,
            vdd,
            Geometry::from_microns(16.0, 2.0),
        );
        b.build().unwrap()
    }

    #[test]
    fn writes_m_and_c_cards() {
        let deck = write(&inverter());
        assert!(deck.contains("M0"));
        assert!(deck.contains("NMOS"));
        assert!(deck.contains("PMOS"));
        assert!(deck.contains("C0 y 0 50.000000F"));
        assert!(deck.ends_with(".end\n"));
    }

    #[test]
    fn parse_value_suffixes() {
        assert_eq!(parse_value("50F"), Some(50e-15));
        assert_eq!(parse_value("1.5P"), Some(1.5e-12));
        assert_eq!(parse_value("2N"), Some(2e-9));
        assert_eq!(parse_value("3U"), Some(3e-6));
        assert_eq!(parse_value("4K"), Some(4e3));
        assert_eq!(parse_value("2MEG"), Some(2e6));
        assert_eq!(parse_value("7"), Some(7.0));
        // trailing unit letters after the scale are tolerated
        assert_eq!(parse_value("50FF"), Some(50e-15));
        assert_eq!(parse_value("abc"), None);
    }

    #[test]
    fn roundtrip_through_spice() {
        let net = inverter();
        let deck = write(&net);
        let net2 = parse(&deck, "inv2").unwrap();
        assert_eq!(net2.transistor_count(), 2);
        let y = net2.node_by_name("y").unwrap();
        assert!((net2.node(y).capacitance().femto() - 50.0).abs() < 1e-3);
        let kinds: Vec<_> = net2.transistors().map(|(_, t)| t.kind()).collect();
        assert!(kinds.contains(&TransistorKind::NEnhancement));
        assert!(kinds.contains(&TransistorKind::PEnhancement));
    }

    #[test]
    fn continuation_lines_join() {
        let deck =
            "* t\nM0 y a 0 0 NMOS\n+ W=8U L=2U\nM1 y a vdd vdd PMOS W=4U L=4U\nC0 y 0 10F\n.end\n";
        let net = parse(deck, "cont").unwrap();
        let (_, t) = net.transistors().next().unwrap();
        assert!((t.geometry().width.microns() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_unsupported_cards() {
        let deck = "R1 a b 1K\n";
        assert!(matches!(
            parse(deck, "r"),
            Err(NetworkError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn ground_is_node_zero() {
        let deck = "M0 y a 0 0 NMOS W=4U L=4U\nC0 y 0 1F\nM1 y a vdd vdd PMOS W=4U L=4U\n.end\n";
        let net = parse(deck, "g").unwrap();
        let (_, t) = net.transistors().next().unwrap();
        assert_eq!(t.source(), net.ground());
    }
}
