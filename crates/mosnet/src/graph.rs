//! Graph utilities over the channel connectivity of a network.
//!
//! The *channel graph* has an edge between the source and drain of every
//! transistor. Its connected components — computed while treating the supply
//! rails as barriers — are the classical *channel-connected components*
//! (also called "stages" or "transistor groups") that switch-level tools
//! partition a circuit into.

use crate::network::Network;
use crate::node::NodeId;
use crate::transistor::TransistorId;
use std::collections::VecDeque;

/// The channel-connected components of a network.
///
/// Rails belong to no component (component id `NONE`); every other node has
/// exactly one component id, and every transistor belongs to the component
/// of its channel terminals.
#[derive(Debug, Clone)]
pub struct ChannelComponents {
    component_of: Vec<u32>,
    members: Vec<Vec<NodeId>>,
}

const NONE: u32 = u32::MAX;

impl ChannelComponents {
    /// Partitions `net` into channel-connected components.
    pub fn compute(net: &Network) -> ChannelComponents {
        let mut component_of = vec![NONE; net.node_count()];
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        let power = net.power();
        let ground = net.ground();

        for (start, _) in net.nodes() {
            if start == power || start == ground || component_of[start.index()] != NONE {
                continue;
            }
            let id = members.len() as u32;
            let mut group = Vec::new();
            let mut queue = VecDeque::new();
            component_of[start.index()] = id;
            queue.push_back(start);
            while let Some(n) = queue.pop_front() {
                group.push(n);
                for &tid in net.channel_neighbors(n) {
                    let other = net.transistor(tid).other_terminal(n);
                    if other == power || other == ground {
                        continue;
                    }
                    if component_of[other.index()] == NONE {
                        component_of[other.index()] = id;
                        queue.push_back(other);
                    }
                }
            }
            group.sort();
            members.push(group);
        }

        ChannelComponents {
            component_of,
            members,
        }
    }

    /// Number of components.
    #[inline]
    pub fn count(&self) -> usize {
        self.members.len()
    }

    /// The component id of `node`, or `None` for rails.
    pub fn component(&self, node: NodeId) -> Option<usize> {
        let c = self.component_of[node.index()];
        (c != NONE).then_some(c as usize)
    }

    /// The member nodes of component `id`, sorted by node id.
    ///
    /// # Panics
    /// Panics if `id >= self.count()`.
    pub fn members(&self, id: usize) -> &[NodeId] {
        &self.members[id]
    }

    /// `true` when the two nodes are channel-connected (and neither is a
    /// rail).
    pub fn connected(&self, a: NodeId, b: NodeId) -> bool {
        match (self.component(a), self.component(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

/// Breadth-first search over channel edges from `start`, stopping at rails.
///
/// Returns `(node, via)` pairs in visit order, where `via` is the transistor
/// crossed to first reach `node` (`None` for `start` itself).
pub fn channel_bfs(net: &Network, start: NodeId) -> Vec<(NodeId, Option<TransistorId>)> {
    let mut seen = vec![false; net.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back((start, None));
    let power = net.power();
    let ground = net.ground();
    while let Some((n, via)) = queue.pop_front() {
        order.push((n, via));
        if n == power || n == ground {
            continue;
        }
        for &tid in net.channel_neighbors(n) {
            let other = net.transistor(tid).other_terminal(n);
            if !seen[other.index()] {
                seen[other.index()] = true;
                queue.push_back((other, Some(tid)));
            }
        }
    }
    order
}

/// Enumerates every acyclic channel path from `from` to `to` as sequences of
/// transistor ids, up to `limit` paths (guarding against the exponential
/// worst case).
///
/// Paths never pass *through* a rail: a rail may only be an endpoint.
pub fn channel_paths(
    net: &Network,
    from: NodeId,
    to: NodeId,
    limit: usize,
) -> Vec<Vec<TransistorId>> {
    let mut paths = Vec::new();
    let mut visited = vec![false; net.node_count()];
    let mut stack = Vec::new();
    visited[from.index()] = true;
    dfs_paths(net, from, to, limit, &mut visited, &mut stack, &mut paths);
    paths
}

fn dfs_paths(
    net: &Network,
    at: NodeId,
    to: NodeId,
    limit: usize,
    visited: &mut [bool],
    stack: &mut Vec<TransistorId>,
    paths: &mut Vec<Vec<TransistorId>>,
) {
    if paths.len() >= limit {
        return;
    }
    if at == to {
        paths.push(stack.clone());
        return;
    }
    // Do not route *through* rails.
    if (at == net.power() || at == net.ground()) && !stack.is_empty() {
        return;
    }
    for &tid in net.channel_neighbors(at) {
        let other = net.transistor(tid).other_terminal(at);
        if visited[other.index()] {
            continue;
        }
        visited[other.index()] = true;
        stack.push(tid);
        dfs_paths(net, other, to, limit, visited, stack, paths);
        stack.pop();
        visited[other.index()] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;
    use crate::node::NodeKind;
    use crate::transistor::{Geometry, TransistorKind};

    /// Two independent inverters: two channel components of one node each.
    fn two_inverters() -> Network {
        let mut b = NetworkBuilder::new("two");
        let vdd = b.power();
        let gnd = b.ground();
        for i in 0..2 {
            let a = b.node(&format!("a{i}"), NodeKind::Input);
            let y = b.node(&format!("y{i}"), NodeKind::Output);
            b.add_transistor(TransistorKind::NEnhancement, a, y, gnd, Geometry::default());
            b.add_transistor(TransistorKind::PEnhancement, a, y, vdd, Geometry::default());
        }
        b.build().unwrap()
    }

    /// A 3-transistor pass chain: in -> x1 -> x2 -> out (one component).
    fn pass_chain() -> Network {
        let mut b = NetworkBuilder::new("chain");
        let vdd = b.power();
        b.ground();
        let mut prev = b.node("in", NodeKind::Input);
        for i in 0..3 {
            let next = b.node(&format!("x{i}"), NodeKind::Internal);
            b.add_transistor(
                TransistorKind::NEnhancement,
                vdd,
                prev,
                next,
                Geometry::default(),
            );
            prev = next;
        }
        b.build().unwrap()
    }

    #[test]
    fn components_split_at_rails() {
        let net = two_inverters();
        let cc = ChannelComponents::compute(&net);
        // a0, a1 have no channel edges => singleton components; y0, y1 are
        // isolated from each other because paths would go through rails.
        assert_eq!(cc.count(), 4);
        let y0 = net.node_by_name("y0").unwrap();
        let y1 = net.node_by_name("y1").unwrap();
        assert!(!cc.connected(y0, y1));
        assert!(cc.component(net.power()).is_none());
        assert!(cc.component(net.ground()).is_none());
    }

    #[test]
    fn chain_is_single_component() {
        let net = pass_chain();
        let cc = ChannelComponents::compute(&net);
        let inn = net.node_by_name("in").unwrap();
        let out = net.node_by_name("x2").unwrap();
        assert!(cc.connected(inn, out));
        let comp = cc.component(inn).unwrap();
        assert_eq!(cc.members(comp).len(), 4); // in, x0, x1, x2
    }

    #[test]
    fn bfs_visits_whole_chain() {
        let net = pass_chain();
        let inn = net.node_by_name("in").unwrap();
        let order = channel_bfs(&net, inn);
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], (inn, None));
        // Every later entry records the transistor used to reach it.
        assert!(order[1..].iter().all(|(_, via)| via.is_some()));
    }

    #[test]
    fn paths_enumerate_and_respect_limit() {
        let net = pass_chain();
        let inn = net.node_by_name("in").unwrap();
        let out = net.node_by_name("x2").unwrap();
        let paths = channel_paths(&net, inn, out, 10);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].len(), 3);
        assert!(channel_paths(&net, inn, out, 0).is_empty());
    }

    #[test]
    fn parallel_branches_yield_multiple_paths() {
        // in ==(two parallel transistors)== out
        let mut b = NetworkBuilder::new("par");
        let vdd = b.power();
        b.ground();
        let inn = b.node("in", NodeKind::Input);
        let out = b.node("out", NodeKind::Output);
        b.add_transistor(
            TransistorKind::NEnhancement,
            vdd,
            inn,
            out,
            Geometry::default(),
        );
        b.add_transistor(
            TransistorKind::NEnhancement,
            vdd,
            inn,
            out,
            Geometry::default(),
        );
        let net = b.build().unwrap();
        let paths = channel_paths(&net, inn, out, 10);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn paths_do_not_route_through_rails() {
        // a -- t1 -- vdd -- t2 -- b : no a->b path exists because it would
        // pass through the rail.
        let mut b = NetworkBuilder::new("rail");
        let vdd = b.power();
        b.ground();
        let a = b.node("a", NodeKind::Input);
        let c = b.node("c", NodeKind::Output);
        let g = b.node("g", NodeKind::Input);
        b.add_transistor(TransistorKind::NEnhancement, g, a, vdd, Geometry::default());
        b.add_transistor(TransistorKind::NEnhancement, g, vdd, c, Geometry::default());
        let net = b.build().unwrap();
        assert!(channel_paths(&net, a, c, 10).is_empty());
        // But a path *ending* at the rail is found.
        assert_eq!(channel_paths(&net, a, vdd, 10).len(), 1);
    }
}
