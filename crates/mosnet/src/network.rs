//! The switch-level network: nodes plus transistors, with the adjacency
//! indices every analysis needs.

use crate::error::NetworkError;
use crate::node::{Node, NodeId, NodeKind};
use crate::transistor::{Geometry, Transistor, TransistorId, TransistorKind};
use crate::units::Farads;
use std::collections::HashMap;

/// Conventional names accepted for the power rail by the builder's
/// name-based lookup helpers.
pub const POWER_NAMES: &[&str] = &["vdd", "VDD", "Vdd", "vcc", "VCC"];
/// Conventional names accepted for the ground rail.
pub const GROUND_NAMES: &[&str] = &["gnd", "GND", "Gnd", "vss", "VSS", "0"];

/// An immutable switch-level network.
///
/// Construct one with [`NetworkBuilder`] or by parsing a netlist
/// ([`crate::sim_format`], [`crate::spice_format`]). A network always has
/// exactly one power rail and one ground rail.
///
/// ```
/// use mosnet::network::NetworkBuilder;
/// use mosnet::node::NodeKind;
/// use mosnet::transistor::{Geometry, TransistorKind};
/// use mosnet::units::Farads;
///
/// # fn main() -> Result<(), mosnet::error::NetworkError> {
/// let mut b = NetworkBuilder::new("inverter");
/// let vdd = b.power();
/// let gnd = b.ground();
/// let a = b.node("a", NodeKind::Input);
/// let out = b.node("out", NodeKind::Output);
/// b.set_capacitance(out, Farads::from_femto(50.0));
/// b.add_transistor(TransistorKind::NEnhancement, a, out, gnd,
///                  Geometry::from_microns(8.0, 2.0));
/// b.add_transistor(TransistorKind::PEnhancement, a, out, vdd,
///                  Geometry::from_microns(16.0, 2.0));
/// let net = b.build()?;
/// assert_eq!(net.node_count(), 4);
/// assert_eq!(net.transistor_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    nodes: Vec<Node>,
    transistors: Vec<Transistor>,
    by_name: HashMap<String, NodeId>,
    power: NodeId,
    ground: NodeId,
    /// For each node: transistors whose source or drain touches it.
    channel_index: Vec<Vec<TransistorId>>,
    /// For each node: transistors whose gate it drives.
    gate_index: Vec<Vec<TransistorId>>,
}

impl Network {
    /// The network's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes, including the two rails.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of transistors.
    #[inline]
    pub fn transistor_count(&self) -> usize {
        self.transistors.len()
    }

    /// The power rail.
    #[inline]
    pub fn power(&self) -> NodeId {
        self.power
    }

    /// The ground rail.
    #[inline]
    pub fn ground(&self) -> NodeId {
        self.ground
    }

    /// Looks a node up by netlist name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Returns the node data for `id`.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this network.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the transistor data for `id`.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this network.
    #[inline]
    pub fn transistor(&self, id: TransistorId) -> &Transistor {
        &self.transistors[id.index()]
    }

    /// Iterates over `(NodeId, &Node)` in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Iterates over `(TransistorId, &Transistor)` in id order.
    pub fn transistors(&self) -> impl Iterator<Item = (TransistorId, &Transistor)> {
        self.transistors
            .iter()
            .enumerate()
            .map(|(i, t)| (TransistorId(i as u32), t))
    }

    /// Transistors whose channel (source or drain) touches `node`.
    #[inline]
    pub fn channel_neighbors(&self, node: NodeId) -> &[TransistorId] {
        &self.channel_index[node.index()]
    }

    /// Transistors whose gate is driven by `node`.
    #[inline]
    pub fn gated_by(&self, node: NodeId) -> &[TransistorId] {
        &self.gate_index[node.index()]
    }

    /// All primary inputs, in id order.
    pub fn inputs(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.kind() == NodeKind::Input)
            .map(|(id, _)| id)
            .collect()
    }

    /// All primary outputs, in id order.
    pub fn outputs(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|(_, n)| n.kind() == NodeKind::Output)
            .map(|(id, _)| id)
            .collect()
    }

    /// Total explicit capacitance in the network (diagnostic).
    pub fn total_capacitance(&self) -> Farads {
        self.nodes.iter().map(|n| n.capacitance()).sum()
    }
}

/// Incrementally builds a [`Network`].
///
/// Node names must be unique; [`NetworkBuilder::node`] returns the existing
/// id when called again with the same name and a compatible kind, so
/// generator code can freely re-reference nets by name.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    nodes: Vec<Node>,
    transistors: Vec<Transistor>,
    by_name: HashMap<String, NodeId>,
    power: Option<NodeId>,
    ground: Option<NodeId>,
}

impl NetworkBuilder {
    /// Starts an empty network with the given name.
    pub fn new(name: impl Into<String>) -> NetworkBuilder {
        NetworkBuilder {
            name: name.into(),
            nodes: Vec::new(),
            transistors: Vec::new(),
            by_name: HashMap::new(),
            power: None,
            ground: None,
        }
    }

    /// Returns the power rail, creating a node named `vdd` on first use.
    pub fn power(&mut self) -> NodeId {
        if let Some(id) = self.power {
            return id;
        }
        let id = self.insert_node("vdd", NodeKind::Power);
        self.power = Some(id);
        id
    }

    /// Returns the ground rail, creating a node named `gnd` on first use.
    pub fn ground(&mut self) -> NodeId {
        if let Some(id) = self.ground {
            return id;
        }
        let id = self.insert_node("gnd", NodeKind::Ground);
        self.ground = Some(id);
        id
    }

    /// Returns the node named `name`, creating it with `kind` if new.
    ///
    /// Re-declaring an existing node upgrades `Internal` to a more specific
    /// kind but never downgrades; conventional rail names (`vdd`, `gnd`,
    /// `vss`, ...) are routed to the corresponding rail.
    pub fn node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        if POWER_NAMES.contains(&name) {
            return self.power_named(name);
        }
        if GROUND_NAMES.contains(&name) {
            return self.ground_named(name);
        }
        if let Some(&id) = self.by_name.get(name) {
            if self.nodes[id.index()].kind() == NodeKind::Internal && kind != NodeKind::Internal {
                self.nodes[id.index()].set_kind(kind);
            }
            return id;
        }
        self.insert_node(name, kind)
    }

    /// Declares the power rail under an arbitrary name (netlists may use
    /// nonconventional rail names). Returns the rail's id; if a rail
    /// already exists the name becomes an alias for it.
    pub fn declare_power(&mut self, name: &str) -> NodeId {
        self.power_named(name)
    }

    /// Declares the ground rail under an arbitrary name; see
    /// [`Self::declare_power`].
    pub fn declare_ground(&mut self, name: &str) -> NodeId {
        self.ground_named(name)
    }

    fn power_named(&mut self, name: &str) -> NodeId {
        if let Some(id) = self.power {
            // Register the alias so later name lookups resolve.
            self.by_name.entry(name.to_string()).or_insert(id);
            return id;
        }
        let id = self.insert_node(name, NodeKind::Power);
        self.power = Some(id);
        id
    }

    fn ground_named(&mut self, name: &str) -> NodeId {
        if let Some(id) = self.ground {
            self.by_name.entry(name.to_string()).or_insert(id);
            return id;
        }
        let id = self.insert_node(name, NodeKind::Ground);
        self.ground = Some(id);
        id
    }

    fn insert_node(&mut self, name: &str, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(name, kind, Farads::ZERO));
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Sets the explicit capacitance of `node`, replacing any prior value.
    pub fn set_capacitance(&mut self, node: NodeId, c: Farads) {
        self.nodes[node.index()].set_capacitance(c);
    }

    /// Adds capacitance to `node` on top of its current value.
    pub fn add_capacitance(&mut self, node: NodeId, c: Farads) {
        self.nodes[node.index()].add_capacitance(c);
    }

    /// Adds a transistor and returns its id.
    pub fn add_transistor(
        &mut self,
        kind: TransistorKind,
        gate: NodeId,
        source: NodeId,
        drain: NodeId,
        geometry: Geometry,
    ) -> TransistorId {
        let id = TransistorId(self.transistors.len() as u32);
        self.transistors
            .push(Transistor::new(kind, gate, source, drain, geometry));
        id
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of transistors added so far.
    pub fn transistor_count(&self) -> usize {
        self.transistors.len()
    }

    /// Finishes the network, building adjacency indices.
    ///
    /// # Errors
    /// Returns [`NetworkError::MissingRail`] if no power or ground node was
    /// ever created. (Rails are created implicitly by [`Self::power`],
    /// [`Self::ground`], or by naming a node `vdd`/`gnd`.)
    pub fn build(self) -> Result<Network, NetworkError> {
        let power = self
            .power
            .ok_or(NetworkError::MissingRail { rail: "power" })?;
        let ground = self
            .ground
            .ok_or(NetworkError::MissingRail { rail: "ground" })?;

        let mut channel_index = vec![Vec::new(); self.nodes.len()];
        let mut gate_index = vec![Vec::new(); self.nodes.len()];
        for (i, t) in self.transistors.iter().enumerate() {
            let tid = TransistorId(i as u32);
            channel_index[t.source().index()].push(tid);
            if t.drain() != t.source() {
                channel_index[t.drain().index()].push(tid);
            }
            gate_index[t.gate().index()].push(tid);
        }

        Ok(Network {
            name: self.name,
            nodes: self.nodes,
            transistors: self.transistors,
            by_name: self.by_name,
            power,
            ground,
            channel_index,
            gate_index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter() -> Network {
        let mut b = NetworkBuilder::new("inv");
        let vdd = b.power();
        let gnd = b.ground();
        let a = b.node("a", NodeKind::Input);
        let out = b.node("out", NodeKind::Output);
        b.set_capacitance(out, Farads::from_femto(50.0));
        b.add_transistor(
            TransistorKind::NEnhancement,
            a,
            out,
            gnd,
            Geometry::default(),
        );
        b.add_transistor(
            TransistorKind::PEnhancement,
            a,
            out,
            vdd,
            Geometry::default(),
        );
        b.build().expect("valid inverter")
    }

    #[test]
    fn builds_inverter_with_indices() {
        let net = inverter();
        assert_eq!(net.node_count(), 4);
        assert_eq!(net.transistor_count(), 2);
        let a = net.node_by_name("a").unwrap();
        let out = net.node_by_name("out").unwrap();
        // Both transistors are gated by `a` and touch `out`.
        assert_eq!(net.gated_by(a).len(), 2);
        assert_eq!(net.channel_neighbors(out).len(), 2);
        assert_eq!(net.gated_by(out).len(), 0);
    }

    #[test]
    fn rails_are_unique_and_aliased() {
        let mut b = NetworkBuilder::new("t");
        let vdd = b.power();
        let also_vdd = b.node("VDD", NodeKind::Internal);
        assert_eq!(vdd, also_vdd);
        let gnd = b.node("vss", NodeKind::Internal);
        let also_gnd = b.ground();
        assert_eq!(gnd, also_gnd);
        let net = b.build().unwrap();
        assert_eq!(net.power(), vdd);
        assert_eq!(net.ground(), gnd);
        assert_eq!(net.node_by_name("VDD"), Some(vdd));
    }

    #[test]
    fn node_kind_upgrades_but_never_downgrades() {
        let mut b = NetworkBuilder::new("t");
        b.power();
        b.ground();
        let x = b.node("x", NodeKind::Internal);
        let x2 = b.node("x", NodeKind::Output);
        assert_eq!(x, x2);
        let x3 = b.node("x", NodeKind::Internal);
        assert_eq!(x, x3);
        let net = b.build().unwrap();
        assert_eq!(net.node(x).kind(), NodeKind::Output);
    }

    #[test]
    fn build_requires_rails() {
        let b = NetworkBuilder::new("empty");
        assert_eq!(
            b.build().unwrap_err(),
            NetworkError::MissingRail { rail: "power" }
        );
        let mut b = NetworkBuilder::new("half");
        b.power();
        assert_eq!(
            b.build().unwrap_err(),
            NetworkError::MissingRail { rail: "ground" }
        );
    }

    #[test]
    fn capacitance_accumulates() {
        let mut b = NetworkBuilder::new("c");
        b.power();
        b.ground();
        let x = b.node("x", NodeKind::Internal);
        b.set_capacitance(x, Farads::from_femto(10.0));
        b.add_capacitance(x, Farads::from_femto(5.0));
        let net = b.build().unwrap();
        assert!((net.node(x).capacitance().femto() - 15.0).abs() < 1e-9);
        assert!((net.total_capacitance().femto() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn inputs_and_outputs_enumerate() {
        let net = inverter();
        assert_eq!(net.inputs().len(), 1);
        assert_eq!(net.outputs().len(), 1);
        assert_eq!(net.node(net.inputs()[0]).name(), "a");
        assert_eq!(net.node(net.outputs()[0]).name(), "out");
    }

    #[test]
    fn self_loop_channel_indexed_once() {
        // A degenerate transistor with source == drain must not appear twice
        // in the channel index of that node.
        let mut b = NetworkBuilder::new("loop");
        b.power();
        let gnd = b.ground();
        let x = b.node("x", NodeKind::Internal);
        b.add_transistor(TransistorKind::NEnhancement, gnd, x, x, Geometry::default());
        let net = b.build().unwrap();
        assert_eq!(net.channel_neighbors(x).len(), 1);
    }
}
