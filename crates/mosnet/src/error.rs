//! Error types for network construction and netlist parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building or parsing a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A node name was declared twice with conflicting roles.
    DuplicateNode {
        /// The conflicting name.
        name: String,
    },
    /// A referenced node name is unknown.
    UnknownNode {
        /// The missing name.
        name: String,
    },
    /// The network declares more than one node for a supply rail.
    DuplicateRail {
        /// `"power"` or `"ground"`.
        rail: &'static str,
    },
    /// A required supply rail is missing.
    MissingRail {
        /// `"power"` or `"ground"`.
        rail: &'static str,
    },
    /// A netlist line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// 1-based column of the offending token within the line (byte
        /// offset + 1; `1` when the whole line is at fault).
        column: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A structural validation check failed (see [`crate::validate`]).
    Invalid {
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::DuplicateNode { name } => {
                write!(f, "node `{name}` declared twice with conflicting roles")
            }
            NetworkError::UnknownNode { name } => write!(f, "unknown node `{name}`"),
            NetworkError::DuplicateRail { rail } => {
                write!(f, "more than one {rail} rail declared")
            }
            NetworkError::MissingRail { rail } => write!(f, "network has no {rail} rail"),
            NetworkError::Parse {
                line,
                column,
                message,
            } => {
                write!(f, "parse error at line {line}, column {column}: {message}")
            }
            NetworkError::Invalid { message } => write!(f, "invalid network: {message}"),
        }
    }
}

impl Error for NetworkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = NetworkError::Parse {
            line: 3,
            column: 7,
            message: "expected 6 fields".into(),
        };
        assert_eq!(
            e.to_string(),
            "parse error at line 3, column 7: expected 6 fields"
        );
        let e = NetworkError::UnknownNode { name: "x1".into() };
        assert!(e.to_string().contains("x1"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(NetworkError::MissingRail { rail: "power" });
    }
}
