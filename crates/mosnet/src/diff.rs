//! Structural diff between two switch-level networks, plus single edits.
//!
//! Node and transistor ids are dense per-network indices assigned in
//! insertion order, so the same circuit rebuilt after an edit renumbers
//! everything. A structural comparison therefore keys on *names*:
//! [`diff`] compares two [`Network`]s and reports added/removed nodes,
//! capacitance and role changes, and added/removed/re-sized transistors,
//! all described by node names; [`apply`] replays a diff onto a base
//! network to reproduce the edited one. Channel terminals are matched as
//! an unordered pair (source and drain are interchangeable at the switch
//! level), and parallel devices between the same terminals are handled
//! as a multiset.
//!
//! The `crystal` crate's incremental analyzer consumes
//! [`NetworkDiff::touched_nodes`] to decide which timing stages an edit
//! can possibly affect; [`Edit`] and [`apply_edit`] are the unit of
//! change its session API and the CLI's scripted-edit mode speak.

use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::{NodeId, NodeKind};
use crate::transistor::{Geometry, Transistor, TransistorKind};
use crate::units::Farads;
use std::collections::{BTreeMap, BTreeSet};

// ---------------------------------------------------------------------------
// Diff data model
// ---------------------------------------------------------------------------

/// A transistor described by node names — portable across networks.
#[derive(Debug, Clone, PartialEq)]
pub struct TransistorDesc {
    /// Device kind.
    pub kind: TransistorKind,
    /// Gate node name.
    pub gate: String,
    /// Source node name.
    pub source: String,
    /// Drain node name.
    pub drain: String,
    /// Channel geometry.
    pub geometry: Geometry,
}

/// A node present in one network but not the other.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeChange {
    /// The node name.
    pub name: String,
    /// Its electrical role.
    pub kind: NodeKind,
    /// Its explicit capacitance.
    pub capacitance: Farads,
}

/// A node whose explicit capacitance changed.
#[derive(Debug, Clone, PartialEq)]
pub struct CapChange {
    /// The node name.
    pub name: String,
    /// Capacitance in the base network.
    pub from: Farads,
    /// Capacitance in the edited network.
    pub to: Farads,
}

/// A node whose electrical role changed (e.g. `Internal` → `Output`).
#[derive(Debug, Clone, PartialEq)]
pub struct KindChange {
    /// The node name.
    pub name: String,
    /// Role in the base network.
    pub from: NodeKind,
    /// Role in the edited network.
    pub to: NodeKind,
}

/// A transistor whose terminals are unchanged but whose geometry differs.
#[derive(Debug, Clone, PartialEq)]
pub struct Resize {
    /// Device kind.
    pub kind: TransistorKind,
    /// Gate node name.
    pub gate: String,
    /// Source node name.
    pub source: String,
    /// Drain node name.
    pub drain: String,
    /// Geometry in the base network.
    pub from: Geometry,
    /// Geometry in the edited network.
    pub to: Geometry,
}

/// The structural difference between two networks, keyed on node names.
///
/// Produced by [`diff`]; replayable with [`apply`]. An empty diff
/// ([`NetworkDiff::is_empty`]) means the two networks are structurally
/// identical up to node/transistor numbering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkDiff {
    /// Nodes present only in the edited network.
    pub added_nodes: Vec<NodeChange>,
    /// Names of nodes present only in the base network.
    pub removed_nodes: Vec<String>,
    /// Nodes whose electrical role changed.
    pub kind_changed: Vec<KindChange>,
    /// Nodes whose explicit capacitance changed.
    pub cap_changed: Vec<CapChange>,
    /// Transistors present only in the edited network.
    pub added: Vec<TransistorDesc>,
    /// Transistors present only in the base network.
    pub removed: Vec<TransistorDesc>,
    /// Transistors with unchanged terminals but different geometry.
    pub resized: Vec<Resize>,
}

impl NetworkDiff {
    /// `true` when the two networks are structurally identical.
    pub fn is_empty(&self) -> bool {
        self.added_nodes.is_empty()
            && self.removed_nodes.is_empty()
            && self.kind_changed.is_empty()
            && self.cap_changed.is_empty()
            && self.added.is_empty()
            && self.removed.is_empty()
            && self.resized.is_empty()
    }

    /// Total number of individual changes.
    pub fn change_count(&self) -> usize {
        self.added_nodes.len()
            + self.removed_nodes.len()
            + self.kind_changed.len()
            + self.cap_changed.len()
            + self.added.len()
            + self.removed.len()
            + self.resized.len()
    }

    /// Every node name an edit in this diff touches: added/removed nodes,
    /// capacitance and role changes, and all three terminals of every
    /// added, removed, or re-sized transistor.
    ///
    /// This is the seed set for incremental invalidation: a timing stage
    /// whose support contains none of these names cannot change.
    pub fn touched_nodes(&self) -> BTreeSet<String> {
        let mut touched = BTreeSet::new();
        for n in &self.added_nodes {
            touched.insert(n.name.clone());
        }
        for name in &self.removed_nodes {
            touched.insert(name.clone());
        }
        for k in &self.kind_changed {
            touched.insert(k.name.clone());
        }
        for c in &self.cap_changed {
            touched.insert(c.name.clone());
        }
        for t in self.added.iter().chain(&self.removed) {
            touched.insert(t.gate.clone());
            touched.insert(t.source.clone());
            touched.insert(t.drain.clone());
        }
        for r in &self.resized {
            touched.insert(r.gate.clone());
            touched.insert(r.source.clone());
            touched.insert(r.drain.clone());
        }
        touched
    }
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

/// Site key: device kind plus gate and the *unordered* channel pair, so a
/// netlist that lists source/drain in the opposite order still matches.
type SiteKey = (u8, String, String, String);

fn site_key(desc: &TransistorDesc) -> SiteKey {
    let (lo, hi) = if desc.source <= desc.drain {
        (desc.source.clone(), desc.drain.clone())
    } else {
        (desc.drain.clone(), desc.source.clone())
    };
    (desc.kind.index() as u8, desc.gate.clone(), lo, hi)
}

fn geom_bits(g: Geometry) -> (u64, u64) {
    // Width and length are validated positive and finite, so bit order
    // equals numeric order and bit equality equals numeric equality.
    (g.width.value().to_bits(), g.length.value().to_bits())
}

fn desc_of(net: &Network, t: &Transistor) -> TransistorDesc {
    TransistorDesc {
        kind: t.kind(),
        gate: net.node(t.gate()).name().to_string(),
        source: net.node(t.source()).name().to_string(),
        drain: net.node(t.drain()).name().to_string(),
        geometry: t.geometry(),
    }
}

/// Computes the structural difference from `a` (base) to `b` (edited).
///
/// Transistors are grouped per *site* — `(kind, gate, {source, drain})`
/// with the channel pair unordered — and compared as geometry multisets:
/// geometries present on both sides cancel, equal-count leftovers pair up
/// as [`Resize`]s (smallest-first on both sides, so the pairing is
/// deterministic), and any excess becomes an addition or removal.
pub fn diff(a: &Network, b: &Network) -> NetworkDiff {
    let mut out = NetworkDiff::default();

    // Nodes, by name.
    let nodes_of = |net: &Network| -> BTreeMap<String, (NodeKind, Farads)> {
        net.nodes()
            .map(|(_, n)| (n.name().to_string(), (n.kind(), n.capacitance())))
            .collect()
    };
    let a_nodes = nodes_of(a);
    let b_nodes = nodes_of(b);
    for (name, &(kind, cap)) in &b_nodes {
        match a_nodes.get(name) {
            None => out.added_nodes.push(NodeChange {
                name: name.clone(),
                kind,
                capacitance: cap,
            }),
            Some(&(a_kind, a_cap)) => {
                if a_kind != kind {
                    out.kind_changed.push(KindChange {
                        name: name.clone(),
                        from: a_kind,
                        to: kind,
                    });
                }
                if a_cap.value().to_bits() != cap.value().to_bits() {
                    out.cap_changed.push(CapChange {
                        name: name.clone(),
                        from: a_cap,
                        to: cap,
                    });
                }
            }
        }
    }
    for name in a_nodes.keys() {
        if !b_nodes.contains_key(name) {
            out.removed_nodes.push(name.clone());
        }
    }

    // Transistors, as per-site geometry multisets.
    type Entry = ((u64, u64), TransistorDesc);
    let mut sites: BTreeMap<SiteKey, (Vec<Entry>, Vec<Entry>)> = BTreeMap::new();
    for (_, t) in a.transistors() {
        let desc = desc_of(a, t);
        let entry = (geom_bits(desc.geometry), desc.clone());
        sites.entry(site_key(&desc)).or_default().0.push(entry);
    }
    for (_, t) in b.transistors() {
        let desc = desc_of(b, t);
        let entry = (geom_bits(desc.geometry), desc.clone());
        sites.entry(site_key(&desc)).or_default().1.push(entry);
    }
    for (_, (mut in_a, mut in_b)) in sites {
        in_a.sort_by_key(|e| e.0);
        in_b.sort_by_key(|e| e.0);
        // Cancel geometries present on both sides (multiset intersection).
        let (mut i, mut j) = (0usize, 0usize);
        let mut only_a = Vec::new();
        let mut only_b = Vec::new();
        while i < in_a.len() && j < in_b.len() {
            match in_a[i].0.cmp(&in_b[j].0) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    only_a.push(in_a[i].1.clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    only_b.push(in_b[j].1.clone());
                    j += 1;
                }
            }
        }
        only_a.extend(in_a[i..].iter().map(|e| e.1.clone()));
        only_b.extend(in_b[j..].iter().map(|e| e.1.clone()));
        // Equal-count leftovers pair up as resizes; excess is add/remove.
        let paired = only_a.len().min(only_b.len());
        for (before, after) in only_a.iter().zip(&only_b).take(paired) {
            out.resized.push(Resize {
                kind: after.kind,
                gate: after.gate.clone(),
                source: after.source.clone(),
                drain: after.drain.clone(),
                from: before.geometry,
                to: after.geometry,
            });
        }
        out.removed.extend(only_a.into_iter().skip(paired));
        out.added.extend(only_b.into_iter().skip(paired));
    }
    out
}

// ---------------------------------------------------------------------------
// apply
// ---------------------------------------------------------------------------

fn invalid(message: String) -> NetworkError {
    NetworkError::Invalid { message }
}

/// Replays a [`diff`] onto `base`, producing the edited network.
///
/// `diff(apply(a, &diff(a, b))?, b)` is empty for any two well-formed
/// networks: the result reproduces `b` up to node/transistor numbering.
///
/// # Errors
/// Returns [`NetworkError::Invalid`] when the diff does not fit the base
/// network — a removed or re-sized transistor that is not present, an
/// added node that already exists, or a surviving transistor that still
/// references a removed node — and [`NetworkError::MissingRail`] if the
/// diff removes a supply rail.
pub fn apply(base: &Network, diff: &NetworkDiff) -> Result<Network, NetworkError> {
    let removed_nodes: BTreeSet<&str> = diff.removed_nodes.iter().map(String::as_str).collect();
    for name in &removed_nodes {
        if base.node_by_name(name).is_none() {
            return Err(NetworkError::UnknownNode {
                name: (*name).to_string(),
            });
        }
    }
    let kind_of: BTreeMap<&str, NodeKind> = diff
        .kind_changed
        .iter()
        .map(|k| (k.name.as_str(), k.to))
        .collect();
    let cap_of: BTreeMap<&str, Farads> = diff
        .cap_changed
        .iter()
        .map(|c| (c.name.as_str(), c.to))
        .collect();

    let mut b = NetworkBuilder::new(base.name());
    // Surviving base nodes, in id order (ids shift where nodes were
    // removed; everything below works by name, so that is fine).
    for (id, node) in base.nodes() {
        if removed_nodes.contains(node.name()) {
            continue;
        }
        let kind = kind_of.get(node.name()).copied().unwrap_or(node.kind());
        let nid = if id == base.power() {
            b.declare_power(node.name())
        } else if id == base.ground() {
            b.declare_ground(node.name())
        } else {
            b.node(node.name(), kind)
        };
        let cap = cap_of
            .get(node.name())
            .copied()
            .unwrap_or(node.capacitance());
        b.set_capacitance(nid, cap);
    }
    for n in &diff.added_nodes {
        if base.node_by_name(&n.name).is_some() {
            return Err(invalid(format!("added node `{}` already exists", n.name)));
        }
        let nid = match n.kind {
            NodeKind::Power => b.declare_power(&n.name),
            NodeKind::Ground => b.declare_ground(&n.name),
            kind => b.node(&n.name, kind),
        };
        b.set_capacitance(nid, n.capacitance);
    }

    // Removal and resize multisets, consumed as base transistors match.
    let mut to_remove: BTreeMap<(SiteKey, (u64, u64)), usize> = BTreeMap::new();
    for desc in &diff.removed {
        *to_remove
            .entry((site_key(desc), geom_bits(desc.geometry)))
            .or_default() += 1;
    }
    let mut to_resize: BTreeMap<(SiteKey, (u64, u64)), Vec<Geometry>> = BTreeMap::new();
    for r in &diff.resized {
        let desc = TransistorDesc {
            kind: r.kind,
            gate: r.gate.clone(),
            source: r.source.clone(),
            drain: r.drain.clone(),
            geometry: r.from,
        };
        to_resize
            .entry((site_key(&desc), geom_bits(r.from)))
            .or_default()
            .push(r.to);
    }

    let lookup = |name: &str, b: &mut NetworkBuilder| -> Result<NodeId, NetworkError> {
        if removed_nodes.contains(name) {
            return Err(invalid(format!(
                "node `{name}` is removed but still referenced by a transistor"
            )));
        }
        Ok(b.node(name, NodeKind::Internal))
    };
    for (_, t) in base.transistors() {
        let desc = desc_of(base, t);
        let key = (site_key(&desc), geom_bits(desc.geometry));
        if let Some(count) = to_remove.get_mut(&key) {
            if *count > 0 {
                *count -= 1;
                continue;
            }
        }
        let geometry = match to_resize.get_mut(&key) {
            Some(tos) if !tos.is_empty() => tos.remove(0),
            _ => desc.geometry,
        };
        let gate = lookup(&desc.gate, &mut b)?;
        let source = lookup(&desc.source, &mut b)?;
        let drain = lookup(&desc.drain, &mut b)?;
        b.add_transistor(desc.kind, gate, source, drain, geometry);
    }
    if let Some((((_, gate, lo, hi), _), _)) = to_remove.iter().find(|(_, &n)| n > 0) {
        return Err(invalid(format!(
            "removed transistor (gate `{gate}`, channel `{lo}`/`{hi}`) is not present"
        )));
    }
    if let Some((((_, gate, lo, hi), _), _)) = to_resize.iter().find(|(_, tos)| !tos.is_empty()) {
        return Err(invalid(format!(
            "re-sized transistor (gate `{gate}`, channel `{lo}`/`{hi}`) is not present"
        )));
    }

    for desc in &diff.added {
        let gate = lookup(&desc.gate, &mut b)?;
        let source = lookup(&desc.source, &mut b)?;
        let drain = lookup(&desc.drain, &mut b)?;
        b.add_transistor(desc.kind, gate, source, drain, desc.geometry);
    }
    b.build()
}

// ---------------------------------------------------------------------------
// Single edits
// ---------------------------------------------------------------------------

/// One netlist edit, the unit of change the incremental analyzer and the
/// CLI's scripted-edit mode speak. All references are by node name; the
/// channel pair of [`Edit::Resize`] and [`Edit::Remove`] is unordered.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Re-size every transistor matching `(gate, {source, drain})`.
    Resize {
        /// Gate node name.
        gate: String,
        /// One channel terminal name.
        source: String,
        /// The other channel terminal name.
        drain: String,
        /// The new geometry.
        geometry: Geometry,
    },
    /// Replace a node's explicit capacitance.
    SetCapacitance {
        /// The node name.
        node: String,
        /// The new capacitance.
        capacitance: Farads,
    },
    /// Add a transistor (unknown terminal names create `Internal` nodes).
    Add(
        /// The transistor to add.
        TransistorDesc,
    ),
    /// Remove every transistor matching `(gate, {source, drain})`.
    Remove {
        /// Gate node name.
        gate: String,
        /// One channel terminal name.
        source: String,
        /// The other channel terminal name.
        drain: String,
    },
}

fn matches_site(net: &Network, t: &Transistor, gate: &str, a: &str, b: &str) -> bool {
    let g = net.node(t.gate()).name();
    let s = net.node(t.source()).name();
    let d = net.node(t.drain()).name();
    g == gate && ((s == a && d == b) || (s == b && d == a))
}

/// Applies one [`Edit`] to `base`, returning the edited network.
///
/// # Errors
/// Returns [`NetworkError::UnknownNode`] for a capacitance edit on a
/// missing node and [`NetworkError::Invalid`] when a resize/remove
/// matches no transistor.
pub fn apply_edit(base: &Network, edit: &Edit) -> Result<Network, NetworkError> {
    let mut b = NetworkBuilder::new(base.name());
    for (id, node) in base.nodes() {
        let nid = if id == base.power() {
            b.declare_power(node.name())
        } else if id == base.ground() {
            b.declare_ground(node.name())
        } else {
            b.node(node.name(), node.kind())
        };
        debug_assert_eq!(nid, id);
        b.set_capacitance(nid, node.capacitance());
    }
    // Node ids carry over: the builder re-assigns them in the same
    // insertion order.
    match edit {
        Edit::Resize {
            gate,
            source,
            drain,
            geometry,
        } => {
            let mut hits = 0usize;
            for (_, t) in base.transistors() {
                let g = if matches_site(base, t, gate, source, drain) {
                    hits += 1;
                    *geometry
                } else {
                    t.geometry()
                };
                b.add_transistor(t.kind(), t.gate(), t.source(), t.drain(), g);
            }
            if hits == 0 {
                return Err(invalid(format!(
                    "no transistor matches gate `{gate}`, channel `{source}`/`{drain}`"
                )));
            }
        }
        Edit::SetCapacitance { node, capacitance } => {
            let id = base
                .node_by_name(node)
                .ok_or_else(|| NetworkError::UnknownNode { name: node.clone() })?;
            b.set_capacitance(id, *capacitance);
            for (_, t) in base.transistors() {
                b.add_transistor(t.kind(), t.gate(), t.source(), t.drain(), t.geometry());
            }
        }
        Edit::Add(desc) => {
            for (_, t) in base.transistors() {
                b.add_transistor(t.kind(), t.gate(), t.source(), t.drain(), t.geometry());
            }
            let gate = b.node(&desc.gate, NodeKind::Internal);
            let source = b.node(&desc.source, NodeKind::Internal);
            let drain = b.node(&desc.drain, NodeKind::Internal);
            b.add_transistor(desc.kind, gate, source, drain, desc.geometry);
        }
        Edit::Remove {
            gate,
            source,
            drain,
        } => {
            let mut hits = 0usize;
            for (_, t) in base.transistors() {
                if matches_site(base, t, gate, source, drain) {
                    hits += 1;
                    continue;
                }
                b.add_transistor(t.kind(), t.gate(), t.source(), t.drain(), t.geometry());
            }
            if hits == 0 {
                return Err(invalid(format!(
                    "no transistor matches gate `{gate}`, channel `{source}`/`{drain}`"
                )));
            }
        }
    }
    b.build()
}

/// Applies a sequence of edits left to right.
///
/// # Errors
/// Propagates the first failing [`apply_edit`].
pub fn apply_edits(base: &Network, edits: &[Edit]) -> Result<Network, NetworkError> {
    let mut net = base.clone();
    for edit in edits {
        net = apply_edit(&net, edit)?;
    }
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{inverter_chain, Style};

    fn chain() -> Network {
        inverter_chain(Style::Cmos, 3, 2.0, Farads::from_femto(80.0)).expect("generates")
    }

    #[test]
    fn identical_networks_diff_empty() {
        let a = chain();
        let b = chain();
        let d = diff(&a, &b);
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(d.change_count(), 0);
        assert!(d.touched_nodes().is_empty());
    }

    #[test]
    fn renumbering_does_not_show_up_in_a_diff() {
        // The same circuit rebuilt with nodes and transistors inserted in
        // reverse order gets entirely different ids but must diff empty.
        let a = chain();
        let mut b = NetworkBuilder::new(a.name());
        let nodes: Vec<_> = a.nodes().collect();
        for (id, node) in nodes.into_iter().rev() {
            let nid = if id == a.power() {
                b.declare_power(node.name())
            } else if id == a.ground() {
                b.declare_ground(node.name())
            } else {
                b.node(node.name(), node.kind())
            };
            b.set_capacitance(nid, node.capacitance());
        }
        let transistors: Vec<_> = a.transistors().collect();
        for (_, t) in transistors.into_iter().rev() {
            let gate = b.node(a.node(t.gate()).name(), NodeKind::Internal);
            let source = b.node(a.node(t.source()).name(), NodeKind::Internal);
            let drain = b.node(a.node(t.drain()).name(), NodeKind::Internal);
            b.add_transistor(t.kind(), gate, source, drain, t.geometry());
        }
        let b = b.build().unwrap();
        assert!(diff(&a, &b).is_empty());
    }

    #[test]
    fn resize_is_reported_as_a_resize_not_add_remove() {
        let a = chain();
        let t = a.transistors().next().map(|(_, t)| desc_of(&a, t)).unwrap();
        let b = apply_edit(
            &a,
            &Edit::Resize {
                gate: t.gate.clone(),
                source: t.source.clone(),
                drain: t.drain.clone(),
                geometry: Geometry::from_microns(11.0, 3.0),
            },
        )
        .unwrap();
        let d = diff(&a, &b);
        assert!(d.added.is_empty() && d.removed.is_empty(), "{d:?}");
        assert_eq!(d.resized.len(), 1);
        assert_eq!(d.resized[0].to, Geometry::from_microns(11.0, 3.0));
        assert!(d.touched_nodes().contains(&t.gate));
    }

    #[test]
    fn cap_change_and_membership_changes_are_reported() {
        let a = chain();
        let mut b = apply_edit(
            &a,
            &Edit::SetCapacitance {
                node: "out".into(),
                capacitance: Farads::from_femto(123.0),
            },
        )
        .unwrap();
        b = apply_edit(
            &b,
            &Edit::Add(TransistorDesc {
                kind: TransistorKind::NEnhancement,
                gate: "out".into(),
                source: "extra".into(),
                drain: "gnd".into(),
                geometry: Geometry::default(),
            }),
        )
        .unwrap();
        let d = diff(&a, &b);
        assert_eq!(d.cap_changed.len(), 1);
        assert_eq!(d.cap_changed[0].to, Farads::from_femto(123.0));
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added_nodes.len(), 1);
        assert_eq!(d.added_nodes[0].name, "extra");
        let touched = d.touched_nodes();
        assert!(touched.contains("out") && touched.contains("extra"));
    }

    #[test]
    fn swapped_channel_terminals_still_match() {
        // Rebuild the chain with every transistor's source/drain swapped:
        // structurally the same switch-level circuit, so the diff is empty.
        let a = chain();
        let mut b = NetworkBuilder::new(a.name());
        for (id, node) in a.nodes() {
            let nid = if id == a.power() {
                b.declare_power(node.name())
            } else if id == a.ground() {
                b.declare_ground(node.name())
            } else {
                b.node(node.name(), node.kind())
            };
            b.set_capacitance(nid, node.capacitance());
        }
        for (_, t) in a.transistors() {
            b.add_transistor(t.kind(), t.gate(), t.drain(), t.source(), t.geometry());
        }
        let b = b.build().unwrap();
        assert!(diff(&a, &b).is_empty());
    }

    #[test]
    fn apply_round_trips_arbitrary_membership_changes() {
        let a = chain();
        // b: remove one inverter's pull-down, resize its pull-up, retarget
        // the load cap.
        let edits = [
            Edit::Remove {
                gate: "s1".into(),
                source: "s2".into(),
                drain: "gnd".into(),
            },
            Edit::Resize {
                gate: "s1".into(),
                source: "s2".into(),
                drain: "vdd".into(),
                geometry: Geometry::from_microns(9.0, 2.0),
            },
            Edit::SetCapacitance {
                node: "s2".into(),
                capacitance: Farads::from_femto(41.0),
            },
        ];
        let b = apply_edits(&a, &edits).unwrap();
        let d = diff(&a, &b);
        let rebuilt = apply(&a, &d).unwrap();
        assert!(diff(&rebuilt, &b).is_empty());
        // And the reverse diff round-trips too.
        let back = apply(&b, &diff(&b, &a)).unwrap();
        assert!(diff(&back, &a).is_empty());
    }

    #[test]
    fn apply_rejects_a_diff_that_does_not_fit() {
        let a = chain();
        let d = NetworkDiff {
            removed: vec![TransistorDesc {
                kind: TransistorKind::Depletion,
                gate: "nope".into(),
                source: "x".into(),
                drain: "y".into(),
                geometry: Geometry::default(),
            }],
            ..NetworkDiff::default()
        };
        assert!(matches!(apply(&a, &d), Err(NetworkError::Invalid { .. })));
    }

    #[test]
    fn edits_that_match_nothing_are_errors() {
        let a = chain();
        assert!(matches!(
            apply_edit(
                &a,
                &Edit::Remove {
                    gate: "ghost".into(),
                    source: "x".into(),
                    drain: "y".into(),
                },
            ),
            Err(NetworkError::Invalid { .. })
        ));
        assert!(matches!(
            apply_edit(
                &a,
                &Edit::SetCapacitance {
                    node: "ghost".into(),
                    capacitance: Farads::ZERO,
                },
            ),
            Err(NetworkError::UnknownNode { .. })
        ));
    }

    #[test]
    fn parallel_duplicate_devices_diff_as_a_multiset() {
        // Two identical parallel transistors; removing one must show up as
        // exactly one removal, not zero or two.
        let mut builder = NetworkBuilder::new("par");
        let vdd = builder.power();
        builder.ground();
        let g = builder.node("g", NodeKind::Input);
        let y = builder.node("y", NodeKind::Output);
        builder.add_transistor(TransistorKind::NEnhancement, g, y, vdd, Geometry::default());
        builder.add_transistor(TransistorKind::NEnhancement, g, y, vdd, Geometry::default());
        let two = builder.build().unwrap();

        let mut builder = NetworkBuilder::new("par");
        let vdd = builder.power();
        builder.ground();
        let g = builder.node("g", NodeKind::Input);
        let y = builder.node("y", NodeKind::Output);
        builder.add_transistor(TransistorKind::NEnhancement, g, y, vdd, Geometry::default());
        let one = builder.build().unwrap();

        let d = diff(&two, &one);
        assert_eq!(d.removed.len(), 1);
        assert!(d.added.is_empty() && d.resized.is_empty());
        let rebuilt = apply(&two, &d).unwrap();
        assert!(diff(&rebuilt, &one).is_empty());
    }

    #[test]
    fn randomized_edit_sequences_round_trip_through_diff_and_apply() {
        // Property: for any reachable edit sequence, `apply(base,
        // diff(base, edited)) == edited` (up to renumbering), and the
        // re-diff of the result is empty. Edits are drawn from a
        // deterministic xorshift stream over the seed corpus.
        use crate::generators::{carry_chain, pass_chain};
        let corpus: Vec<Network> = vec![
            inverter_chain(Style::Cmos, 5, 2.0, Farads::from_femto(90.0)).unwrap(),
            carry_chain(Style::Cmos, 4, Farads::from_femto(60.0)).unwrap(),
            pass_chain(
                Style::Nmos,
                5,
                Farads::from_femto(40.0),
                Farads::from_femto(80.0),
            )
            .unwrap(),
        ];
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for base in corpus {
            let mut edited = base.clone();
            for _ in 0..8 {
                let r = rng();
                let edit = match r % 4 {
                    0 => {
                        // Retune a random non-rail node's capacitance.
                        let internals: Vec<&str> = edited
                            .nodes()
                            .filter(|(_, n)| !n.kind().is_rail())
                            .map(|(_, n)| n.name())
                            .collect();
                        let name = internals[(r as usize / 7) % internals.len()];
                        Edit::SetCapacitance {
                            node: name.to_string(),
                            capacitance: Farads::from_femto(1.0 + (r % 97) as f64),
                        }
                    }
                    1 => {
                        // Hang a fresh device off a random node.
                        let internals: Vec<&str> = edited
                            .nodes()
                            .filter(|(_, n)| !n.kind().is_rail())
                            .map(|(_, n)| n.name())
                            .collect();
                        let at = internals[(r as usize / 11) % internals.len()];
                        Edit::Add(TransistorDesc {
                            kind: TransistorKind::NEnhancement,
                            gate: at.to_string(),
                            source: format!("aux{}", r % 1000),
                            drain: "gnd".to_string(),
                            geometry: Geometry::from_microns(2.0 + (r % 7) as f64, 2.0),
                        })
                    }
                    _ => {
                        // Resize a random existing device.
                        let idx = (r as usize / 13) % edited.transistor_count();
                        let (_, t) = edited.transistors().nth(idx).unwrap();
                        Edit::Resize {
                            gate: edited.node(t.gate()).name().to_string(),
                            source: edited.node(t.source()).name().to_string(),
                            drain: edited.node(t.drain()).name().to_string(),
                            geometry: Geometry::from_microns(1.0 + (r % 11) as f64, 2.0),
                        }
                    }
                };
                edited = apply_edit(&edited, &edit).expect("edit fits");
            }
            let d = diff(&base, &edited);
            let rebuilt = apply(&base, &d).expect("diff fits its own base");
            assert!(
                diff(&rebuilt, &edited).is_empty(),
                "round trip left a residue: {:?}",
                diff(&rebuilt, &edited)
            );
            // And the reverse direction restores the base.
            let back = apply(&edited, &diff(&edited, &base)).expect("reverse diff fits");
            assert!(diff(&back, &base).is_empty());
        }
    }
}
