//! Parser and writer for a `.sim`-style switch-level netlist dialect.
//!
//! The dialect follows the spirit of the Berkeley `esim`/`crystal` `.sim`
//! format: one record per line, fields separated by whitespace.
//!
//! ```text
//! | comment (also: # comment)
//! n <gate> <source> <drain> <length_um> <width_um>   n-enhancement
//! e <gate> <source> <drain> <length_um> <width_um>   alias for n
//! p <gate> <source> <drain> <length_um> <width_um>   p-enhancement
//! d <gate> <source> <drain> <length_um> <width_um>   depletion
//! C <node> <cap_fF>                                  capacitance to ground
//! c <node1> <node2> <cap_fF>                         coupling capacitance
//! i <node>                                           declare primary input
//! o <node>                                           declare primary output
//! v <node>                                           declare the power rail
//! g <node>                                           declare the ground rail
//! subckt <name> <port>...                            begin a subcircuit
//! ends                                               end the subcircuit
//! x <instance> <subckt> <actual>...                  instantiate (flattened)
//! ```
//!
//! Subcircuits are flattened at parse time: internal nodes of instance
//! `u1` of a subcircuit become `u1.<local>`; ports bind to the actual
//! nets; rail names always refer to the global rails. Definitions must
//! precede their instantiations, and `i`/`o`/`v`/`g` records are not
//! allowed inside a body (the port list is the interface).
//!
//! Coupling capacitances (`c`) are lumped: if one terminal is a rail the
//! full value is added to the other node, otherwise the value is added to
//! both nodes (the conservative switch-level treatment).
//!
//! Node names `vdd`/`vcc` and `gnd`/`vss`/`0` (any case) denote the rails.

use crate::error::NetworkError;
use crate::network::{Network, NetworkBuilder};
use crate::node::NodeKind;
use crate::transistor::{Geometry, TransistorKind};
use crate::units::{Farads, Metres};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Parses a `.sim` netlist into a [`Network`].
///
/// # Errors
/// Returns [`NetworkError::Parse`] with a 1-based line number and the
/// 1-based column of the offending token for any malformed record —
/// including non-finite, negative, or zero transistor dimensions and
/// non-finite or negative capacitances — and
/// [`NetworkError::MissingRail`] if the netlist never mentions a power or
/// ground node.
///
/// ```
/// let src = "| tiny inverter\n\
///            i a\no y\n\
///            n a y gnd 2 8\n\
///            p a y vdd 2 16\n\
///            C y 50\n";
/// let net = mosnet::sim_format::parse(src, "inv")?;
/// assert_eq!(net.transistor_count(), 2);
/// # Ok::<(), mosnet::error::NetworkError>(())
/// ```
pub fn parse(source: &str, name: &str) -> Result<Network, NetworkError> {
    let mut b = NetworkBuilder::new(name);
    let mut defs: HashMap<String, SubcktDef> = HashMap::new();
    let mut current: Option<(String, SubcktDef)> = None;

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.trim();
        if text.is_empty() || text.starts_with('|') || text.starts_with('#') {
            continue;
        }
        let cols = token_columns(raw);
        let mut fields = text.split_whitespace();
        let record = fields.next().expect("non-empty line has a first field");
        let rest: Vec<&str> = fields.collect();
        let at = Cursor { line, cols: &cols };
        match record {
            "subckt" => {
                if current.is_some() {
                    return Err(at.err(0, "nested `subckt` definitions".into()));
                }
                if rest.is_empty() {
                    return Err(at.err(0, "`subckt` needs a name".into()));
                }
                let sub_name = rest[0].to_string();
                if defs.contains_key(&sub_name) {
                    return Err(at.err(1, format!("subcircuit `{sub_name}` defined twice")));
                }
                let ports = rest[1..].iter().map(|s| s.to_string()).collect();
                current = Some((
                    sub_name,
                    SubcktDef {
                        ports,
                        body: Vec::new(),
                    },
                ));
            }
            "ends" => match current.take() {
                Some((sub_name, def)) => {
                    defs.insert(sub_name, def);
                }
                None => return Err(at.err(0, "`ends` without `subckt`".into())),
            },
            _ if current.is_some() => {
                if matches!(record, "i" | "o" | "v" | "g") {
                    return Err(at.err(
                        0,
                        format!("`{record}` records are not allowed inside a subcircuit body"),
                    ));
                }
                // Keep the raw line so body records report true columns.
                current
                    .as_mut()
                    .expect("checked is_some")
                    .1
                    .body
                    .push((line, raw.to_string()));
            }
            "x" => {
                expand_instance(&mut b, &defs, &rest, at, "", 0)?;
            }
            _ => {
                emit_record(&mut b, record, &rest, at, &|n| n.to_string())?;
            }
        }
    }
    if let Some((sub_name, _)) = current {
        return Err(NetworkError::Parse {
            line: source.lines().count(),
            column: 1,
            message: format!("subcircuit `{sub_name}` is never closed with `ends`"),
        });
    }
    b.build()
}

/// 1-based starting columns (byte offset + 1) of each whitespace-separated
/// token of a line; index 0 is the record code, index `i + 1` is field
/// `i`.
fn token_columns(text: &str) -> Vec<usize> {
    let mut cols = Vec::new();
    let mut in_token = false;
    for (i, c) in text.char_indices() {
        if c.is_whitespace() {
            in_token = false;
        } else if !in_token {
            in_token = true;
            cols.push(i + 1);
        }
    }
    cols
}

/// The position of one record under parse: its line and the token start
/// columns (see [`token_columns`]).
#[derive(Debug, Clone, Copy)]
struct Cursor<'a> {
    line: usize,
    cols: &'a [usize],
}

impl Cursor<'_> {
    /// Column of token `index` (0 = record code), falling back to 1 for
    /// synthesized tokens with no source position.
    fn col(&self, index: usize) -> usize {
        self.cols.get(index).copied().unwrap_or(1)
    }

    /// A parse error anchored at token `index`.
    fn err(&self, index: usize, message: String) -> NetworkError {
        NetworkError::Parse {
            line: self.line,
            column: self.col(index),
            message,
        }
    }
}

/// A collected subcircuit definition.
#[derive(Debug, Clone)]
struct SubcktDef {
    ports: Vec<String>,
    body: Vec<(usize, String)>,
}

/// Maximum subcircuit nesting depth.
const MAX_SUBCKT_DEPTH: usize = 16;

fn expand_instance(
    b: &mut NetworkBuilder,
    defs: &HashMap<String, SubcktDef>,
    rest: &[&str],
    at: Cursor<'_>,
    prefix: &str,
    depth: usize,
) -> Result<(), NetworkError> {
    if depth >= MAX_SUBCKT_DEPTH {
        return Err(at.err(
            0,
            format!("subcircuit nesting exceeds {MAX_SUBCKT_DEPTH} levels"),
        ));
    }
    if rest.len() < 2 {
        return Err(at.err(0, "`x` record needs instance subckt actual...".into()));
    }
    let instance = rest[0];
    let sub_name = rest[1];
    let def = defs.get(sub_name).ok_or_else(|| {
        at.err(
            2,
            format!("unknown subcircuit `{sub_name}` (definitions must precede use)"),
        )
    })?;
    let actuals = &rest[2..];
    if actuals.len() != def.ports.len() {
        return Err(at.err(
            0,
            format!(
                "subcircuit `{sub_name}` has {} ports but {} actuals were given",
                def.ports.len(),
                actuals.len()
            ),
        ));
    }
    let path = if prefix.is_empty() {
        instance.to_string()
    } else {
        format!("{prefix}.{instance}")
    };
    let map = |local: &str| -> String {
        if is_rail_name(local) {
            return local.to_string();
        }
        if let Some(pos) = def.ports.iter().position(|p| p == local) {
            return actuals[pos].to_string();
        }
        format!("{path}.{local}")
    };

    for (body_line, text) in &def.body {
        let body_cols = token_columns(text);
        let body_at = Cursor {
            line: *body_line,
            cols: &body_cols,
        };
        let mut fields = text.split_whitespace();
        let record = fields.next().expect("collected lines are non-empty");
        let body_rest: Vec<&str> = fields.collect();
        if record == "x" {
            // Map the nested instance's actuals into this scope, keep the
            // nested instance and subckt names verbatim.
            if body_rest.len() < 2 {
                return Err(body_at.err(0, "`x` record needs instance subckt actual...".into()));
            }
            let mapped: Vec<String> = body_rest[2..].iter().map(|a| map(a)).collect();
            let mut nested: Vec<&str> = vec![body_rest[0], body_rest[1]];
            nested.extend(mapped.iter().map(String::as_str));
            expand_instance(b, defs, &nested, body_at, &path, depth + 1)?;
        } else {
            emit_record(b, record, &body_rest, body_at, &map)?;
        }
    }
    Ok(())
}

/// Emits one primitive record into the builder, resolving node names
/// through `map` (identity at the top level, port/mangle mapping inside a
/// subcircuit expansion).
fn emit_record(
    b: &mut NetworkBuilder,
    record: &str,
    rest: &[&str],
    at: Cursor<'_>,
    map: &dyn Fn(&str) -> String,
) -> Result<(), NetworkError> {
    match record {
        "n" | "e" | "p" | "d" => {
            let kind = TransistorKind::from_code(record.chars().next().expect("nonempty"))
                .expect("match arm guarantees a valid code");
            if rest.len() != 5 {
                return Err(at.err(
                    0,
                    format!(
                        "`{record}` record needs gate source drain length width, got {} fields",
                        rest.len()
                    ),
                ));
            }
            let gate = b.node(&map(rest[0]), NodeKind::Internal);
            let source_n = b.node(&map(rest[1]), NodeKind::Internal);
            let drain = b.node(&map(rest[2]), NodeKind::Internal);
            let length = parse_positive(rest[3], "length", at, 4)?;
            let width = parse_positive(rest[4], "width", at, 5)?;
            b.add_transistor(
                kind,
                gate,
                source_n,
                drain,
                Geometry::from_microns(width, length),
            );
        }
        "C" => {
            if rest.len() != 2 {
                return Err(at.err(0, "`C` record needs node cap_fF".to_string()));
            }
            let node = b.node(&map(rest[0]), NodeKind::Internal);
            let cap = parse_nonnegative(rest[1], "capacitance", at, 2)?;
            b.add_capacitance(node, Farads::from_femto(cap));
        }
        "c" => {
            if rest.len() != 3 {
                return Err(at.err(0, "`c` record needs node1 node2 cap_fF".to_string()));
            }
            let name1 = map(rest[0]);
            let name2 = map(rest[1]);
            let n1 = b.node(&name1, NodeKind::Internal);
            let n2 = b.node(&name2, NodeKind::Internal);
            let cap = Farads::from_femto(parse_nonnegative(rest[2], "capacitance", at, 3)?);
            let n1_rail = is_rail_name(&name1);
            let n2_rail = is_rail_name(&name2);
            match (n1_rail, n2_rail) {
                (true, true) => {} // rail-to-rail coupling is inert
                (true, false) => b.add_capacitance(n2, cap),
                (false, true) => b.add_capacitance(n1, cap),
                (false, false) => {
                    b.add_capacitance(n1, cap);
                    b.add_capacitance(n2, cap);
                }
            }
        }
        "i" => {
            if rest.len() != 1 {
                return Err(at.err(0, "`i` record needs exactly one node".into()));
            }
            b.node(&map(rest[0]), NodeKind::Input);
        }
        "o" => {
            if rest.len() != 1 {
                return Err(at.err(0, "`o` record needs exactly one node".into()));
            }
            b.node(&map(rest[0]), NodeKind::Output);
        }
        "v" => {
            if rest.len() != 1 {
                return Err(at.err(0, "`v` record needs exactly one node".into()));
            }
            b.declare_power(rest[0]);
        }
        "g" => {
            if rest.len() != 1 {
                return Err(at.err(0, "`g` record needs exactly one node".into()));
            }
            b.declare_ground(rest[0]);
        }
        other => {
            return Err(at.err(0, format!("unknown record type `{other}`")));
        }
    }
    Ok(())
}

fn is_rail_name(name: &str) -> bool {
    crate::network::POWER_NAMES.contains(&name) || crate::network::GROUND_NAMES.contains(&name)
}

/// Parses a strictly positive, finite value (transistor dimensions); NaN,
/// infinities, zero, and negatives are all rejected with the column of
/// the offending token.
fn parse_positive(
    text: &str,
    what: &str,
    at: Cursor<'_>,
    token: usize,
) -> Result<f64, NetworkError> {
    let v: f64 = text
        .parse()
        .map_err(|_| at.err(token, format!("cannot parse {what} `{text}`")))?;
    if !(v > 0.0 && v.is_finite()) {
        return Err(at.err(token, format!("{what} must be positive, got {v}")));
    }
    Ok(v)
}

/// Parses a non-negative, finite value (capacitances); NaN, infinities,
/// and negatives are rejected with the column of the offending token.
fn parse_nonnegative(
    text: &str,
    what: &str,
    at: Cursor<'_>,
    token: usize,
) -> Result<f64, NetworkError> {
    let v: f64 = text
        .parse()
        .map_err(|_| at.err(token, format!("cannot parse {what} `{text}`")))?;
    if !(v >= 0.0 && v.is_finite()) {
        return Err(at.err(token, format!("{what} must be non-negative, got {v}")));
    }
    Ok(v)
}

/// Picks the decimal to print for a value stored in SI units but
/// serialized in a display unit (femtofarads, microns).
///
/// `converted` is the display-unit value and `back` the parser's
/// reconstruction (`from_femto`/`from_microns`, returning SI bits). The
/// two unit conversions are float multiplications and not exact
/// inverses, so printing `converted` as-is can reparse to a value one
/// ulp away from `target` — and worse, re-serializing *that* drifts
/// again, so repeated write/parse cycles never reach a fixed point.
/// Scanning the few ulp-neighbours of `converted` finds a decimal whose
/// reconstruction lands on exactly `target`'s bits whenever one exists
/// (Rust's `{}` float formatting is shortest-round-trip, so the printed
/// text reparses to the candidate itself). When no preimage exists —
/// possible for values that never came from the display unit, e.g. sums
/// of lumped coupling caps — the nearest value is printed and callers
/// that need bit-identity must verify the round-trip themselves.
fn unit_exact(converted: f64, target: f64, back: impl Fn(f64) -> f64) -> f64 {
    let step = |v: f64, up: bool| -> f64 {
        if v <= 0.0 || !v.is_finite() {
            return v;
        }
        let bits = v.to_bits();
        f64::from_bits(if up { bits + 1 } else { bits.saturating_sub(1) })
    };
    let down = step(converted, false);
    let up = step(converted, true);
    for candidate in [converted, down, up, step(down, false), step(up, true)] {
        if back(candidate) == target {
            return candidate;
        }
    }
    converted
}

/// Serializes a network to the `.sim` dialect accepted by [`parse`].
///
/// Round-tripping through `write`/`parse` preserves nodes, kinds,
/// capacitances, and transistors (coupling caps are already lumped in the
/// in-memory form, so they come back out as `C` records).
///
/// Capacitances and geometries are printed so that reparsing
/// reconstructs the stored values **bit-identically** whenever a decimal
/// with that property exists (see `unit_exact`); `write` of a network
/// parsed from its own output is then a fixed point, which is what lets
/// a session checkpoint rebuild byte-for-byte identical state.
pub fn write(net: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| {} ({} nodes, {} transistors)",
        net.name(),
        net.node_count(),
        net.transistor_count()
    );
    let _ = writeln!(out, "v {}", net.node(net.power()).name());
    let _ = writeln!(out, "g {}", net.node(net.ground()).name());
    for (_, node) in net.nodes() {
        match node.kind() {
            NodeKind::Input => {
                let _ = writeln!(out, "i {}", node.name());
            }
            NodeKind::Output => {
                let _ = writeln!(out, "o {}", node.name());
            }
            _ => {}
        }
    }
    for (_, t) in net.transistors() {
        let g = t.geometry();
        let length = unit_exact(g.length.microns(), g.length.value(), |um| {
            Metres::from_microns(um).value()
        });
        let width = unit_exact(g.width.microns(), g.width.value(), |um| {
            Metres::from_microns(um).value()
        });
        let _ = writeln!(
            out,
            "{} {} {} {} {} {}",
            t.kind().code(),
            net.node(t.gate()).name(),
            net.node(t.source()).name(),
            net.node(t.drain()).name(),
            length,
            width,
        );
    }
    for (_, node) in net.nodes() {
        let cap = node.capacitance();
        if cap > Farads::ZERO {
            let femto = unit_exact(cap.femto(), cap.value(), |ff| {
                Farads::from_femto(ff).value()
            });
            let _ = writeln!(out, "C {} {}", node.name(), femto);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const INVERTER: &str = "| inverter\ni a\no y\nn a y gnd 2 8\np a y vdd 2 16\nC y 50\n";

    #[test]
    fn parses_inverter() {
        let net = parse(INVERTER, "inv").unwrap();
        assert_eq!(net.transistor_count(), 2);
        assert_eq!(net.node_count(), 4);
        let y = net.node_by_name("y").unwrap();
        assert_eq!(net.node(y).kind(), NodeKind::Output);
        assert!((net.node(y).capacitance().femto() - 50.0).abs() < 1e-9);
        let (_, t0) = net.transistors().next().unwrap();
        assert_eq!(t0.kind(), TransistorKind::NEnhancement);
        assert!((t0.geometry().width.microns() - 8.0).abs() < 1e-9);
        assert!((t0.geometry().length.microns() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let net = parse(INVERTER, "inv").unwrap();
        let text = write(&net);
        let net2 = parse(&text, "inv").unwrap();
        assert_eq!(net.node_count(), net2.node_count());
        assert_eq!(net.transistor_count(), net2.transistor_count());
        for (id, n) in net.nodes() {
            let id2 = net2.node_by_name(n.name()).expect("same names");
            assert_eq!(n.kind(), net2.node(id2).kind(), "kind of {}", n.name());
            assert!(
                (n.capacitance().femto() - net2.node(id2).capacitance().femto()).abs() < 1e-9,
                "cap of {}",
                net.node(id).name()
            );
        }
    }

    #[test]
    fn coupling_caps_are_lumped() {
        let src = "i a\nn a x gnd 2 2\nc x gnd 10\nc x a 4\nc vdd gnd 99\n";
        let net = parse(src, "c").unwrap();
        let x = net.node_by_name("x").unwrap();
        let a = net.node_by_name("a").unwrap();
        // x: 10 (to gnd) + 4 (coupling) = 14; a: 4.
        assert!((net.node(x).capacitance().femto() - 14.0).abs() < 1e-9);
        assert!((net.node(a).capacitance().femto() - 4.0).abs() < 1e-9);
        // rail-to-rail coupling ignored
        assert!((net.node(net.power()).capacitance().femto()).abs() < 1e-9);
    }

    #[test]
    fn legacy_e_record_is_n_enhancement() {
        let src = "i a\ne a y gnd 2 2\nC y 1\nn a y vdd 2 2\n";
        let net = parse(src, "e").unwrap();
        let (_, t) = net.transistors().next().unwrap();
        assert_eq!(t.kind(), TransistorKind::NEnhancement);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let src = "| ok\nn a y gnd 2\n";
        match parse(src, "bad") {
            Err(NetworkError::Parse {
                line,
                column,
                message,
            }) => {
                assert_eq!(line, 2);
                assert_eq!(column, 1);
                assert!(message.contains("needs gate source drain"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn reports_the_column_of_the_offending_token() {
        // `nope` is the width field: token 6 on an indented line.
        let src = "  n a y gnd 2 nope\n";
        match parse(src, "bad") {
            Err(NetworkError::Parse { line, column, .. }) => {
                assert_eq!(line, 1);
                assert_eq!(column, 15);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_record() {
        let src = "z foo bar\n";
        assert!(matches!(
            parse(src, "bad"),
            Err(NetworkError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn rejects_bad_numbers() {
        assert!(parse("n a y gnd -1 2\nC y 1\n", "bad").is_err());
        assert!(parse("n a y gnd 2 nope\n", "bad").is_err());
        assert!(parse("C y -5\nn a y gnd 2 2\n", "bad").is_err());
    }

    #[test]
    fn rejects_nan_zero_and_infinite_dimensions() {
        // Zero and NaN dimensions would poison every downstream resistance.
        assert!(parse("n a y gnd 0 2\nC y 1\n", "bad").is_err());
        assert!(parse("n a y gnd 2 NaN\nC y 1\n", "bad").is_err());
        assert!(parse("n a y gnd inf 2\nC y 1\n", "bad").is_err());
        assert!(parse("C y NaN\nn a y gnd 2 2\n", "bad").is_err());
        // Zero capacitance is legal (a node may be weightless).
        assert!(parse("C y 0\nn a y gnd 2 2\nv vdd\ng gnd\n", "ok").is_ok());
    }

    #[test]
    fn missing_rails_detected() {
        assert!(matches!(
            parse("i a\no y\nn a y b 2 2\n", "norails"),
            Err(NetworkError::MissingRail { .. })
        ));
    }

    #[test]
    fn subckt_flattening_mangles_internals_and_binds_ports() {
        let src = "\
subckt buf a y
n a m gnd 2 8
p a m vdd 2 16
n m y gnd 2 8
p m y vdd 2 16
C m 10
ends
i in
o out
x u1 buf in mid
x u2 buf mid out
C out 100
";
        let net = parse(src, "hier").unwrap();
        // Two buffers of 4 devices each.
        assert_eq!(net.transistor_count(), 8);
        // Internal nodes are instance-scoped.
        assert!(net.node_by_name("u1.m").is_some());
        assert!(net.node_by_name("u2.m").is_some());
        // Port bindings connect through `mid`.
        let mid = net.node_by_name("mid").expect("shared net exists");
        assert_eq!(net.channel_neighbors(mid).len(), 2); // u1's output pair
        assert_eq!(net.gated_by(mid).len(), 2); // u2's input gates
                                                // u1.m has its local capacitance.
        let m1 = net.node_by_name("u1.m").unwrap();
        assert!((net.node(m1).capacitance().femto() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn nested_subcircuits_expand_recursively() {
        let src = "\
subckt inv a y
n a y gnd 2 8
p a y vdd 2 16
ends
subckt buf2 a y
x g1 inv a m
x g2 inv m y
ends
i in
o out
x top buf2 in out
";
        let net = parse(src, "nested").unwrap();
        assert_eq!(net.transistor_count(), 4);
        assert!(net.node_by_name("top.m").is_some());
    }

    #[test]
    fn subckt_errors_are_clean() {
        // Unknown subcircuit.
        assert!(matches!(
            parse("x u1 nosuch a b\n", "e"),
            Err(NetworkError::Parse { .. })
        ));
        // Port/actual mismatch.
        let src = "subckt inv a y\nn a y gnd 2 8\nends\nx u1 inv only_one\n";
        assert!(matches!(parse(src, "e"), Err(NetworkError::Parse { .. })));
        // Unterminated definition.
        let src = "subckt inv a y\nn a y gnd 2 8\n";
        assert!(matches!(parse(src, "e"), Err(NetworkError::Parse { .. })));
        // i/o inside a body.
        let src = "subckt inv a y\ni a\nends\n";
        assert!(matches!(parse(src, "e"), Err(NetworkError::Parse { .. })));
        // Duplicate definition.
        let src = "subckt inv a y\nends\nsubckt inv a y\nends\n";
        assert!(matches!(parse(src, "e"), Err(NetworkError::Parse { .. })));
        // `ends` without `subckt`.
        assert!(matches!(
            parse("ends\n", "e"),
            Err(NetworkError::Parse { .. })
        ));
    }

    #[test]
    fn subckt_recursion_is_bounded() {
        // A self-instantiating subcircuit must hit the depth limit, not
        // the stack.
        let src = "subckt loop a\nx again loop a\nends\nx u loop vdd\ng gnd\n";
        match parse(src, "r") {
            Err(NetworkError::Parse { message, .. }) => {
                assert!(message.contains("nesting exceeds"), "{message}");
            }
            other => panic!("expected depth error, got {other:?}"),
        }
    }

    #[test]
    fn rails_inside_subckt_are_global() {
        let src = "\
subckt pull y
n vdd y gnd 2 8
ends
i en
x u1 pull q
o q
";
        let net = parse(src, "rails").unwrap();
        let (_, t) = net.transistors().next().unwrap();
        assert_eq!(t.gate(), net.power());
        assert!(t.touches_channel(net.ground()));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "# hash comment\n\n| pipe comment\nn a y gnd 2 2\nC y 1\nn a y vdd 2 2\n";
        assert!(parse(src, "c").is_ok());
    }
}
