//! Calibration circuits and their measurement.
//!
//! Each (device kind, drive direction) pair has a canonical primitive
//! circuit, built directly at the `nanospice` level so preconditioning
//! resistors can set the initial state:
//!
//! * **n pull-down / p pull-up** — a CMOS inverter driven by a ramp;
//! * **n pull-up / p pull-down** — a single pass device from the rail to
//!   the load, with a megohm preconditioning resistor establishing the
//!   opposite initial level;
//! * **depletion pull-up** — an nMOS inverter (the load charges the output
//!   once the ramped input releases the pull-down).
//!
//! The measured quantities follow the paper's procedure: the 50% delay
//! from the gate edge, and the 10–90% output transition time.

use crate::error::CalibrateError;
use crystal::tech::Direction;
use mosnet::units::Seconds;
use mosnet::TransistorKind;
use nanospice::circuit::{Circuit, MosModelSet};
use nanospice::devices::{NodeRef, Waveshape};
use nanospice::engine::{Options, Simulator};

/// Geometry used for the switching device in each calibration circuit
/// (microns): the unit pull-down of the generators' sizing discipline.
pub const CAL_W_UM: f64 = 8.0;
/// Drawn length of the switching device (microns).
pub const CAL_L_UM: f64 = 2.0;
/// CMOS pull-up width (microns).
pub const CAL_WP_UM: f64 = 16.0;
/// Depletion-load geometry (microns).
pub const CAL_WDEP_UM: f64 = 2.0;
/// Depletion-load length (microns).
pub const CAL_LDEP_UM: f64 = 8.0;
/// Preconditioning resistance (Ω) — weak enough not to disturb the fit.
const PRECONDITION_OHMS: f64 = 2e6;

/// One calibration measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// 50% (input) → 50% (output swing) delay.
    pub delay: Seconds,
    /// 10–90% output transition time.
    pub transition: Seconds,
}

/// `L/W` of the switching device in each calibration circuit — the
/// geometry that converts the fitted device resistance into a
/// per-square value. The p pull-up fit switches the 16/2 pMOS of the
/// inverter; every other enhancement configuration switches the 8/2
/// device; depletion uses its 2/8 load geometry.
pub fn device_squares(kind: TransistorKind, direction: Direction) -> f64 {
    match (kind, direction) {
        (TransistorKind::PEnhancement, Direction::PullUp) => CAL_L_UM / CAL_WP_UM,
        (TransistorKind::Depletion, _) => CAL_LDEP_UM / CAL_WDEP_UM,
        _ => CAL_L_UM / CAL_W_UM,
    }
}

/// The capacitance the *model* will attribute to the calibration load:
/// the explicit load plus the diffusion of every device touching it.
/// Keeping this identical to the simulator's loading makes the fitted
/// resistance land in the model's frame.
pub fn model_load_capacitance(
    kind: TransistorKind,
    direction: Direction,
    models: &MosModelSet,
    load_farads: f64,
) -> f64 {
    let cj = models.cj_per_width;
    let diffusion = match (kind, direction) {
        // CMOS inverter: both devices touch the output.
        (TransistorKind::NEnhancement, Direction::PullDown)
        | (TransistorKind::PEnhancement, Direction::PullUp) => cj * (CAL_W_UM + CAL_WP_UM) * 1e-6,
        // Single pass device.
        (TransistorKind::NEnhancement, Direction::PullUp)
        | (TransistorKind::PEnhancement, Direction::PullDown) => cj * CAL_W_UM * 1e-6,
        // nMOS inverter: pull-down + load.
        (TransistorKind::Depletion, _) => cj * (CAL_W_UM + CAL_WDEP_UM) * 1e-6,
    };
    load_farads + diffusion
}

/// Builds the calibration circuit for a (kind, direction) pair and returns
/// `(circuit, gate_shape_slot)` where the gate source must be driven with
/// the supplied shape. Node order: `0 = vdd`, `1 = gate`, `2 = out`.
fn build_circuit(
    kind: TransistorKind,
    direction: Direction,
    models: &MosModelSet,
    load_farads: f64,
    gate_shape: Waveshape,
) -> Result<Circuit, CalibrateError> {
    let mut ckt = Circuit::new();
    let vdd = ckt.add_node("vdd");
    let gate = ckt.add_node("gate");
    let out = ckt.add_node("out");
    ckt.add_vsource(vdd, NodeRef::Ground, Waveshape::Dc(models.vdd));
    ckt.add_vsource(gate, NodeRef::Ground, gate_shape);

    let um = 1e-6;
    let cap = model_load_capacitance(kind, direction, models, load_farads);
    ckt.add_capacitor(out, NodeRef::Ground, cap);

    match (kind, direction) {
        (TransistorKind::NEnhancement, Direction::PullDown) => {
            // CMOS inverter: gate ramps up, out falls.
            ckt.add_mosfet(
                out,
                gate,
                NodeRef::Ground,
                CAL_W_UM * um,
                CAL_L_UM * um,
                models.nmos,
            );
            ckt.add_mosfet(out, gate, vdd, CAL_WP_UM * um, CAL_L_UM * um, models.pmos);
        }
        (TransistorKind::PEnhancement, Direction::PullUp) => {
            // Same inverter, gate ramps down, out rises.
            ckt.add_mosfet(
                out,
                gate,
                NodeRef::Ground,
                CAL_W_UM * um,
                CAL_L_UM * um,
                models.nmos,
            );
            ckt.add_mosfet(out, gate, vdd, CAL_WP_UM * um, CAL_L_UM * um, models.pmos);
        }
        (TransistorKind::NEnhancement, Direction::PullUp) => {
            // n pass device charging the load from vdd (threshold drop).
            ckt.add_mosfet(vdd, gate, out, CAL_W_UM * um, CAL_L_UM * um, models.nmos);
            ckt.add_resistor(out, NodeRef::Ground, PRECONDITION_OHMS);
        }
        (TransistorKind::PEnhancement, Direction::PullDown) => {
            // p pass device discharging the load to ground.
            ckt.add_mosfet(
                out,
                gate,
                NodeRef::Ground,
                CAL_W_UM * um,
                CAL_L_UM * um,
                models.pmos,
            );
            ckt.add_resistor(out, vdd, PRECONDITION_OHMS);
        }
        (TransistorKind::Depletion, _) => {
            // nMOS inverter: gate ramps down, the load pulls out up.
            ckt.add_mosfet(
                out,
                gate,
                NodeRef::Ground,
                CAL_W_UM * um,
                CAL_L_UM * um,
                models.nmos,
            );
            ckt.add_mosfet(
                vdd,
                out,
                out,
                CAL_WDEP_UM * um,
                CAL_LDEP_UM * um,
                models.depletion,
            );
        }
    }
    Ok(ckt)
}

/// Whether the calibration gate ramps up or down for this pair.
fn gate_rises(kind: TransistorKind, direction: Direction) -> bool {
    match (kind, direction) {
        (TransistorKind::NEnhancement, _) => true,
        (TransistorKind::PEnhancement, _) => false,
        // The trigger is the pull-down's gate falling.
        (TransistorKind::Depletion, _) => false,
    }
}

/// Runs one calibration point: ramp the gate over `input_transition`
/// (10–90% time) and measure the output response.
///
/// # Errors
/// Propagates simulator failures and reports
/// [`CalibrateError::Unmeasurable`] when the output never completes its
/// transition within the simulation window.
pub fn measure(
    kind: TransistorKind,
    direction: Direction,
    models: &MosModelSet,
    load_farads: f64,
    input_transition: Seconds,
    horizon: Seconds,
) -> Result<Measurement, CalibrateError> {
    measure_with_options(
        kind,
        direction,
        models,
        load_farads,
        input_transition,
        horizon,
        Options::default(),
    )
}

/// Like [`measure`], but running the reference simulator under explicit
/// [`Options`] — the hook the calibration relaxation ladder uses to retry
/// a failed point with progressively looser solver settings.
///
/// # Errors
/// See [`measure`].
pub fn measure_with_options(
    kind: TransistorKind,
    direction: Direction,
    models: &MosModelSet,
    load_farads: f64,
    input_transition: Seconds,
    horizon: Seconds,
    options: Options,
) -> Result<Measurement, CalibrateError> {
    // Convert the 10–90% input transition into a full-ramp duration.
    let full_ramp = (input_transition.value() / 0.8).max(1e-12);
    let t_edge = 0.25 * horizon.value();
    let (v0, v1) = if gate_rises(kind, direction) {
        (0.0, models.vdd)
    } else {
        (models.vdd, 0.0)
    };
    let shape = Waveshape::ramp(v0, v1, t_edge, full_ramp);
    let ckt = build_circuit(kind, direction, models, load_farads, shape)?;
    let sim = Simulator::with_options(&ckt, options);
    let tstop = horizon.value() + full_ramp;
    let dt = (tstop / 4000.0).max(0.5e-12);
    let result = sim.transient(tstop, dt)?;
    let out = result.voltage_by_name("out").expect("circuit has `out`");

    let t_in_50 = t_edge + 0.5 * full_ramp;
    let v_initial = out.value_at(t_edge);
    let v_final = out.last();
    let swing = v_final - v_initial;
    let rising = direction == Direction::PullUp;
    if swing.abs() < 0.05 * models.vdd || (swing > 0.0) != rising {
        return Err(CalibrateError::Unmeasurable {
            what: format!(
                "{kind:?}/{direction:?}: output swing {swing:.3} V inconsistent with direction"
            ),
        });
    }
    let midpoint = v_initial + 0.5 * swing;
    let t_out_50 =
        out.crossing(midpoint, rising, t_edge)
            .ok_or_else(|| CalibrateError::Unmeasurable {
                what: format!("{kind:?}/{direction:?}: no midpoint crossing"),
            })?;
    let transition = out
        .transition_time(v_initial, v_final, 0.1, 0.9, t_edge)
        .ok_or_else(|| CalibrateError::Unmeasurable {
            what: format!("{kind:?}/{direction:?}: transition incomplete"),
        })?;
    Ok(Measurement {
        delay: Seconds(t_out_50 - t_in_50),
        transition: Seconds(transition),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> MosModelSet {
        MosModelSet::default()
    }

    #[test]
    fn n_pulldown_step_measures() {
        let m = measure(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            &models(),
            200e-15,
            Seconds::ZERO,
            Seconds::from_nanos(20.0),
        )
        .unwrap();
        assert!(m.delay.value() > 0.0);
        assert!(m.delay.nanos() < 5.0, "delay {} ns", m.delay.nanos());
        assert!(m.transition.value() > 0.0);
    }

    #[test]
    fn all_six_pairs_measure() {
        for kind in TransistorKind::ALL {
            for direction in Direction::ALL {
                let m = measure(
                    kind,
                    direction,
                    &models(),
                    200e-15,
                    Seconds::ZERO,
                    Seconds::from_nanos(60.0),
                );
                // Depletion pull-down is a physically odd configuration:
                // accept either a measurement or a clean error.
                match m {
                    Ok(m) => assert!(m.delay.value() > 0.0, "{kind:?}/{direction:?}"),
                    Err(e) => {
                        assert!(
                            kind == TransistorKind::Depletion && direction == Direction::PullDown,
                            "{kind:?}/{direction:?} unexpectedly failed: {e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn slow_input_slows_the_stage() {
        let fast = measure(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            &models(),
            200e-15,
            Seconds::ZERO,
            Seconds::from_nanos(20.0),
        )
        .unwrap();
        let slow = measure(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            &models(),
            200e-15,
            Seconds(8.0 * fast.delay.value()),
            Seconds::from_nanos(30.0),
        )
        .unwrap();
        assert!(
            slow.delay.value() > 1.3 * fast.delay.value(),
            "slow {} vs fast {}",
            slow.delay.nanos(),
            fast.delay.nanos()
        );
    }

    #[test]
    fn model_load_capacitance_counts_diffusion() {
        let c = model_load_capacitance(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            &models(),
            200e-15,
        );
        // 200 fF + (8 + 16) µm × 1 fF/µm = 224 fF.
        assert!((c - 224e-15).abs() < 1e-18);
    }
}
