//! Per-point accounting of a calibration run.
//!
//! Calibration is a batch of independent simulator measurements, and a
//! single stubborn point must not abort the whole technology fit. The
//! resilient drivers retry each failed point under progressively relaxed
//! solver options ([`relaxed_options`]) and, when a point stays
//! irrecoverable, drop it from the fit and record the skip. The
//! [`CalibrationReport`] lists every point with its outcome so degraded
//! fits are loud instead of silent.

use crystal::tech::Direction;
use mosnet::TransistorKind;
use nanospice::engine::Options;
use std::fmt;

/// The deepest relaxation level [`relaxed_options`] defines.
pub const MAX_RELAX_LEVEL: usize = 3;

/// The simulator options for one rung of the calibration retry ladder.
///
/// Level 0 returns `base` unchanged; each further level loosens the
/// solver monotonically — more Newton iterations and step halvings
/// first, then wider tolerances and a larger `gmin`. Levels beyond
/// [`MAX_RELAX_LEVEL`] saturate at the loosest setting.
pub fn relaxed_options(base: &Options, level: usize) -> Options {
    let mut o = *base;
    if level >= 1 {
        o.max_nr_iterations = o.max_nr_iterations.max(50).saturating_mul(4);
        o.max_step_halvings += 2;
    }
    if level >= 2 {
        o.abstol *= 10.0;
        o.reltol *= 10.0;
        o.gmin *= 10.0;
    }
    if level >= 3 {
        o.abstol *= 10.0;
        o.reltol *= 10.0;
        o.gmin *= 100.0;
        o.max_step_halvings += 2;
    }
    o
}

/// How one calibration point fared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PointOutcome {
    /// Measured cleanly under the configured options.
    Measured,
    /// Measured only after relaxing the solver to `relax_level`.
    Recovered {
        /// The retry-ladder level that succeeded (≥ 1).
        relax_level: usize,
    },
    /// Irrecoverable even at the deepest relaxation; dropped from the fit.
    Skipped,
}

/// One calibration point and its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// Device kind of the point's calibration circuit.
    pub kind: TransistorKind,
    /// Drive direction of the point's calibration circuit.
    pub direction: Direction,
    /// Slope ratio of the point; `None` for the step measurement that
    /// pins the static resistance.
    pub ratio: Option<f64>,
    /// What happened.
    pub outcome: PointOutcome,
    /// The final error for skips (and substitutions), if any.
    pub detail: Option<String>,
}

impl fmt::Display for PointRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}/{:?} ", self.kind, self.direction)?;
        match self.ratio {
            Some(r) => write!(f, "ratio {r}")?,
            None => f.write_str("step")?,
        }
        match &self.outcome {
            PointOutcome::Measured => f.write_str(": ok"),
            PointOutcome::Recovered { relax_level } => {
                write!(f, ": recovered at relax level {relax_level}")
            }
            PointOutcome::Skipped => match &self.detail {
                Some(d) => write!(f, ": skipped ({d})"),
                None => f.write_str(": skipped"),
            },
        }
    }
}

/// The point-by-point ledger of one calibration run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CalibrationReport {
    /// Every point attempted, in measurement order.
    pub records: Vec<PointRecord>,
}

impl CalibrationReport {
    /// Appends one record.
    pub fn record(&mut self, record: PointRecord) {
        self.records.push(record);
    }

    /// Points that needed a relaxed solver.
    pub fn degraded(&self) -> impl Iterator<Item = &PointRecord> {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, PointOutcome::Recovered { .. }))
    }

    /// Points dropped from the fit.
    pub fn skipped(&self) -> impl Iterator<Item = &PointRecord> {
        self.records
            .iter()
            .filter(|r| r.outcome == PointOutcome::Skipped)
    }

    /// `true` when every point measured cleanly at level 0.
    pub fn is_clean(&self) -> bool {
        self.records
            .iter()
            .all(|r| r.outcome == PointOutcome::Measured)
    }
}

impl fmt::Display for CalibrationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let clean = self
            .records
            .iter()
            .filter(|r| r.outcome == PointOutcome::Measured)
            .count();
        let degraded = self.degraded().count();
        let skipped = self.skipped().count();
        writeln!(
            f,
            "calibration: {clean} points clean, {degraded} recovered, {skipped} skipped"
        )?;
        for r in self
            .records
            .iter()
            .filter(|r| r.outcome != PointOutcome::Measured)
        {
            writeln!(f, "  {r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxation_level_zero_is_the_base() {
        let base = Options::default();
        assert_eq!(relaxed_options(&base, 0), base);
    }

    #[test]
    fn relaxation_loosens_monotonically() {
        let base = Options::default();
        let mut prev = base;
        for level in 1..=MAX_RELAX_LEVEL {
            let o = relaxed_options(&base, level);
            assert!(
                o.max_nr_iterations >= prev.max_nr_iterations,
                "level {level}"
            );
            assert!(o.abstol >= prev.abstol, "level {level}");
            assert!(o.reltol >= prev.reltol, "level {level}");
            assert!(o.gmin >= prev.gmin, "level {level}");
            assert!(
                o.max_step_halvings >= prev.max_step_halvings,
                "level {level}"
            );
            prev = o;
        }
        // Beyond the ladder it saturates.
        assert_eq!(
            relaxed_options(&base, MAX_RELAX_LEVEL),
            relaxed_options(&base, MAX_RELAX_LEVEL + 5)
        );
    }

    #[test]
    fn report_classifies_and_summarizes() {
        let mut report = CalibrationReport::default();
        let mk = |ratio, outcome| PointRecord {
            kind: TransistorKind::NEnhancement,
            direction: Direction::PullDown,
            ratio,
            outcome,
            detail: None,
        };
        report.record(mk(None, PointOutcome::Measured));
        assert!(report.is_clean());
        report.record(mk(Some(2.0), PointOutcome::Recovered { relax_level: 1 }));
        report.record(PointRecord {
            detail: Some("no midpoint crossing".into()),
            ..mk(Some(8.0), PointOutcome::Skipped)
        });
        assert!(!report.is_clean());
        assert_eq!(report.degraded().count(), 1);
        assert_eq!(report.skipped().count(), 1);
        let s = report.to_string();
        assert!(s.contains("1 points clean"), "{s}");
        assert!(s.contains("recovered at relax level 1"), "{s}");
        assert!(s.contains("no midpoint crossing"), "{s}");
    }
}
