//! # calibrate — fitting the slope model against the reference simulator
//!
//! Reproduces the paper's model-calibration methodology: for every
//! (device kind, drive direction) pair, run the reference simulator
//! (`nanospice`, standing in for SPICE) on a canonical primitive circuit,
//! first with a step input to pin the **static effective resistance**, and
//! then across a sweep of input-slope ratios to fit the
//! **effective-resistance multiplier** and **output-transition** tables —
//! the empirical heart of the slope model.
//!
//! ```no_run
//! use calibrate::{calibrate_technology, CalibrationConfig};
//! use nanospice::MosModelSet;
//!
//! # fn main() -> Result<(), calibrate::CalibrateError> {
//! let tech = calibrate_technology(&MosModelSet::default(), &CalibrationConfig::default())?;
//! assert!(tech.name.contains("calibrated"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod fit;
pub mod report;
pub mod runner;

pub use error::CalibrateError;
pub use report::{relaxed_options, CalibrationReport, PointOutcome, PointRecord, MAX_RELAX_LEVEL};

use crystal::tech::{Direction, DriveParams, Technology};
use mosnet::units::{Ohms, Seconds, Volts};
use mosnet::TransistorKind;
use nanospice::engine::Options as SimOptions;
use nanospice::MosModelSet;
use runner::{measure_with_options, model_load_capacitance, Measurement};

/// Parameters of a calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationConfig {
    /// Slope ratios to sample (0 is always implied as the first point).
    pub ratios: Vec<f64>,
    /// Explicit calibration load (farads).
    pub load_farads: f64,
    /// Simulation horizon for the step measurement; slower ratios extend
    /// it automatically.
    pub step_horizon: Seconds,
    /// Base reference-simulator options. Failed points are retried under
    /// progressive relaxations of these (see [`relaxed_options`]).
    pub sim_options: SimOptions,
}

impl Default for CalibrationConfig {
    fn default() -> CalibrationConfig {
        CalibrationConfig {
            ratios: vec![0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
            load_farads: 200e-15,
            step_horizon: Seconds::from_nanos(40.0),
            sim_options: SimOptions::default(),
        }
    }
}

impl CalibrationConfig {
    /// A cheap configuration for tests: two ratios, shorter horizon.
    pub fn coarse() -> CalibrationConfig {
        CalibrationConfig {
            ratios: vec![1.0, 4.0],
            ..CalibrationConfig::default()
        }
    }
}

/// Measures one calibration point, climbing the relaxation ladder on
/// failure. Returns the measurement and the level that produced it
/// (0 = the base options).
///
/// # Errors
/// Returns the deepest level's error when every rung fails.
pub fn measure_resilient(
    kind: TransistorKind,
    direction: Direction,
    models: &MosModelSet,
    load_farads: f64,
    input_transition: Seconds,
    horizon: Seconds,
    base: &SimOptions,
) -> Result<(Measurement, usize), CalibrateError> {
    let mut last_err = None;
    for level in 0..=MAX_RELAX_LEVEL {
        match measure_with_options(
            kind,
            direction,
            models,
            load_farads,
            input_transition,
            horizon,
            relaxed_options(base, level),
        ) {
            Ok(m) => return Ok((m, level)),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("at least one level was attempted"))
}

/// Calibrates all six (kind, direction) drive-parameter sets against the
/// given device physics, returning a fitted [`Technology`].
///
/// The depletion pull-down configuration has no physical calibration
/// circuit in classical MOS logic; it inherits the depletion pull-up fit
/// (documented substitution, as in the original tool's practice of sharing
/// load parameters).
///
/// # Errors
/// Propagates simulator failures and fit defects ([`CalibrateError`]).
pub fn calibrate_technology(
    models: &MosModelSet,
    config: &CalibrationConfig,
) -> Result<Technology, CalibrateError> {
    calibrate_technology_with_report(models, config).map(|(tech, _)| tech)
}

/// Like [`calibrate_technology`], but fail-soft: a (kind, direction) pair
/// whose calibration is irrecoverable keeps the nominal drive parameters
/// instead of aborting the run, and the returned [`CalibrationReport`]
/// lists every point that was retried under relaxed solver options or
/// skipped outright.
///
/// # Errors
/// Currently never fails — the `Result` reserves room for future defects
/// that cannot be substituted away.
pub fn calibrate_technology_with_report(
    models: &MosModelSet,
    config: &CalibrationConfig,
) -> Result<(Technology, CalibrationReport), CalibrateError> {
    let mut tech = Technology::new("calibrated-4um", Volts(models.vdd));
    tech.cox_per_area = models.cox_per_area;
    tech.cj_per_width = models.cj_per_width;
    let nominal = Technology::nominal();
    let mut report = CalibrationReport::default();

    let mut depletion_up: Option<DriveParams> = None;
    for kind in TransistorKind::ALL {
        for direction in Direction::ALL {
            if kind == TransistorKind::Depletion && direction == Direction::PullDown {
                continue; // filled from the pull-up fit below
            }
            let params =
                match calibrate_drive_with_report(kind, direction, models, config, &mut report) {
                    Ok(p) => p,
                    Err(e) => {
                        // The whole pair is irrecoverable: fall back to the
                        // nominal parameters so the rest of the technology
                        // still calibrates, and record the substitution.
                        report.record(PointRecord {
                            kind,
                            direction,
                            ratio: None,
                            outcome: PointOutcome::Skipped,
                            detail: Some(format!("pair substituted with nominal parameters: {e}")),
                        });
                        nominal.drive(kind, direction).clone()
                    }
                };
            if kind == TransistorKind::Depletion && direction == Direction::PullUp {
                depletion_up = Some(params.clone());
            }
            tech.set_drive(kind, direction, params);
        }
    }
    let dep = depletion_up.expect("depletion pull-up was calibrated");
    tech.set_drive(TransistorKind::Depletion, Direction::PullDown, dep);
    Ok((tech, report))
}

/// Calibrates one (kind, direction) pair.
///
/// # Errors
/// See [`calibrate_technology`].
pub fn calibrate_drive(
    kind: TransistorKind,
    direction: Direction,
    models: &MosModelSet,
    config: &CalibrationConfig,
) -> Result<DriveParams, CalibrateError> {
    calibrate_drive_with_report(
        kind,
        direction,
        models,
        config,
        &mut CalibrationReport::default(),
    )
}

/// Calibrates one (kind, direction) pair, retrying failed points up the
/// relaxation ladder and recording every point's fate in `report`.
///
/// Ratio points that stay irrecoverable are dropped from the fit (the
/// table is fitted through the remaining points) and recorded as
/// [`PointOutcome::Skipped`].
///
/// # Errors
/// Fails when the step measurement — which pins the static resistance
/// every other point is normalized by — is irrecoverable, or when the
/// surviving points do not form a valid table.
pub fn calibrate_drive_with_report(
    kind: TransistorKind,
    direction: Direction,
    models: &MosModelSet,
    config: &CalibrationConfig,
    report: &mut CalibrationReport,
) -> Result<DriveParams, CalibrateError> {
    let outcome_for = |level: usize| match level {
        0 => PointOutcome::Measured,
        relax_level => PointOutcome::Recovered { relax_level },
    };
    // Step input pins the static effective resistance. Without it no
    // ratio point can even be scheduled, so its failure fails the pair.
    let (step, level) = measure_resilient(
        kind,
        direction,
        models,
        config.load_farads,
        Seconds::ZERO,
        config.step_horizon,
        &config.sim_options,
    )?;
    report.record(PointRecord {
        kind,
        direction,
        ratio: None,
        outcome: outcome_for(level),
        detail: None,
    });
    let t50 = step.delay.value();
    if t50 <= 0.0 {
        return Err(CalibrateError::BadFit {
            message: format!("{kind:?}/{direction:?}: non-positive step delay"),
        });
    }
    let c_model = model_load_capacitance(kind, direction, models, config.load_farads);
    let r_device = t50 / c_model;
    let r_square = Ohms(r_device / runner::device_squares(kind, direction));

    // Ratio sweep fits the two slope tables.
    let mut reff_points = vec![(0.0, 1.0)];
    let mut tout_points = vec![(0.0, step.transition.value() / t50)];
    for &ratio in &config.ratios {
        if ratio <= 0.0 {
            continue;
        }
        let input_transition = Seconds(ratio * t50);
        // Slow edges need a longer window: settle + ramp + response.
        let horizon = Seconds(config.step_horizon.value() + 2.0 * input_transition.value());
        match measure_resilient(
            kind,
            direction,
            models,
            config.load_farads,
            input_transition,
            horizon,
            &config.sim_options,
        ) {
            Ok((m, level)) => {
                report.record(PointRecord {
                    kind,
                    direction,
                    ratio: Some(ratio),
                    outcome: outcome_for(level),
                    detail: None,
                });
                reff_points.push((ratio, m.delay.value() / t50));
                tout_points.push((ratio, m.transition.value() / t50));
            }
            Err(e) => {
                // One stubborn point must not sink the pair: fit through
                // the surviving points and say so.
                report.record(PointRecord {
                    kind,
                    direction,
                    ratio: Some(ratio),
                    outcome: PointOutcome::Skipped,
                    detail: Some(e.to_string()),
                });
            }
        }
    }

    Ok(DriveParams {
        r_square,
        reff: fit::fit_monotone_table(&reff_points)?,
        tout: fit::fit_monotone_table(&tout_points)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_n_pulldown_with_sane_magnitudes() {
        let p = calibrate_drive(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            &MosModelSet::default(),
            &CalibrationConfig::coarse(),
        )
        .unwrap();
        // A 4 µm-class unit pull-down is a few kΩ-per-square device.
        assert!(
            p.r_square.value() > 1_000.0 && p.r_square.value() < 100_000.0,
            "r_square {}",
            p.r_square.value()
        );
        assert!(p.reff.is_monotone_nondecreasing());
        // Slower inputs must cost delay: the last table value exceeds 1.
        let last = p.reff.points().last().expect("points").1;
        assert!(last > 1.1, "reff saturates too low: {last}");
    }

    #[test]
    fn pass_configurations_are_weaker_than_primary_drives() {
        let models = MosModelSet::default();
        let cfg = CalibrationConfig {
            ratios: vec![],
            ..CalibrationConfig::coarse()
        };
        let n_down = calibrate_drive(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            &models,
            &cfg,
        )
        .unwrap();
        let n_up = calibrate_drive(
            TransistorKind::NEnhancement,
            Direction::PullUp,
            &models,
            &cfg,
        )
        .unwrap();
        assert!(
            n_up.r_square.value() > n_down.r_square.value(),
            "passing high ({}) must be weaker than pulling down ({})",
            n_up.r_square.value(),
            n_down.r_square.value()
        );
    }

    #[test]
    fn healthy_calibration_reports_clean() {
        let mut report = CalibrationReport::default();
        calibrate_drive_with_report(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            &MosModelSet::default(),
            &CalibrationConfig::coarse(),
            &mut report,
        )
        .unwrap();
        assert!(report.is_clean(), "{report}");
        // One step point + two ratio points.
        assert_eq!(report.records.len(), 3);
    }

    #[test]
    fn starved_solver_recovers_up_the_ladder() {
        // One Newton iteration per solve cannot converge the calibration
        // circuit; level 1 quadruples the budget and must succeed.
        let starved = nanospice::Options {
            max_nr_iterations: 1,
            ..nanospice::Options::default()
        };
        let (m, level) = measure_resilient(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            &MosModelSet::default(),
            200e-15,
            Seconds::ZERO,
            Seconds::from_nanos(20.0),
            &starved,
        )
        .expect("the relaxation ladder rescues a starved solver");
        assert!(level >= 1, "level {level} should not be the base");
        // The recovered measurement matches a healthy one closely.
        let healthy = runner::measure(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            &MosModelSet::default(),
            200e-15,
            Seconds::ZERO,
            Seconds::from_nanos(20.0),
        )
        .unwrap();
        let rel = (m.delay.value() - healthy.delay.value()).abs() / healthy.delay.value();
        assert!(rel < 0.05, "recovered delay off by {:.1}%", 100.0 * rel);
    }

    #[test]
    fn irrecoverable_pair_is_substituted_with_nominal_params() {
        // Zero tolerances make Newton convergence unsatisfiable at every
        // relaxation level (relaxing multiplies them, and 0 × k = 0), so
        // every pair is irrecoverable.
        let impossible = CalibrationConfig {
            ratios: vec![],
            sim_options: nanospice::Options {
                abstol: 0.0,
                reltol: 0.0,
                ..nanospice::Options::default()
            },
            ..CalibrationConfig::coarse()
        };
        let (tech, report) =
            calibrate_technology_with_report(&MosModelSet::default(), &impossible).unwrap();
        // Every calibrated pair fell back to nominal parameters…
        let nominal = Technology::nominal();
        for kind in TransistorKind::ALL {
            for direction in Direction::ALL {
                assert_eq!(
                    tech.drive(kind, direction),
                    nominal.drive(kind, direction),
                    "{kind:?}/{direction:?}"
                );
            }
        }
        // …and the report says so, once per attempted pair.
        assert!(!report.is_clean());
        assert_eq!(report.skipped().count(), 5, "{report}");
        assert!(report.to_string().contains("substituted with nominal"));
    }

    #[test]
    fn full_technology_calibration_fills_all_pairs() {
        let tech = calibrate_technology(
            &MosModelSet::default(),
            &CalibrationConfig {
                ratios: vec![2.0],
                ..CalibrationConfig::coarse()
            },
        )
        .unwrap();
        for kind in TransistorKind::ALL {
            for direction in Direction::ALL {
                let d = tech.drive(kind, direction);
                assert!(d.r_square.value() > 0.0, "{kind:?}/{direction:?}");
                assert!(d.reff.is_monotone_nondecreasing());
            }
        }
        // Depletion pull-down mirrors pull-up by construction.
        assert_eq!(
            tech.drive(TransistorKind::Depletion, Direction::PullDown),
            tech.drive(TransistorKind::Depletion, Direction::PullUp)
        );
    }
}
