//! # calibrate — fitting the slope model against the reference simulator
//!
//! Reproduces the paper's model-calibration methodology: for every
//! (device kind, drive direction) pair, run the reference simulator
//! (`nanospice`, standing in for SPICE) on a canonical primitive circuit,
//! first with a step input to pin the **static effective resistance**, and
//! then across a sweep of input-slope ratios to fit the
//! **effective-resistance multiplier** and **output-transition** tables —
//! the empirical heart of the slope model.
//!
//! ```no_run
//! use calibrate::{calibrate_technology, CalibrationConfig};
//! use nanospice::MosModelSet;
//!
//! # fn main() -> Result<(), calibrate::CalibrateError> {
//! let tech = calibrate_technology(&MosModelSet::default(), &CalibrationConfig::default())?;
//! assert!(tech.name.contains("calibrated"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod fit;
pub mod runner;

pub use error::CalibrateError;

use crystal::tech::{Direction, DriveParams, Technology};
use mosnet::units::{Ohms, Seconds, Volts};
use mosnet::TransistorKind;
use nanospice::MosModelSet;
use runner::{measure, model_load_capacitance};

/// Parameters of a calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationConfig {
    /// Slope ratios to sample (0 is always implied as the first point).
    pub ratios: Vec<f64>,
    /// Explicit calibration load (farads).
    pub load_farads: f64,
    /// Simulation horizon for the step measurement; slower ratios extend
    /// it automatically.
    pub step_horizon: Seconds,
}

impl Default for CalibrationConfig {
    fn default() -> CalibrationConfig {
        CalibrationConfig {
            ratios: vec![0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
            load_farads: 200e-15,
            step_horizon: Seconds::from_nanos(40.0),
        }
    }
}

impl CalibrationConfig {
    /// A cheap configuration for tests: two ratios, shorter horizon.
    pub fn coarse() -> CalibrationConfig {
        CalibrationConfig {
            ratios: vec![1.0, 4.0],
            load_farads: 200e-15,
            step_horizon: Seconds::from_nanos(40.0),
        }
    }
}

/// Calibrates all six (kind, direction) drive-parameter sets against the
/// given device physics, returning a fitted [`Technology`].
///
/// The depletion pull-down configuration has no physical calibration
/// circuit in classical MOS logic; it inherits the depletion pull-up fit
/// (documented substitution, as in the original tool's practice of sharing
/// load parameters).
///
/// # Errors
/// Propagates simulator failures and fit defects ([`CalibrateError`]).
pub fn calibrate_technology(
    models: &MosModelSet,
    config: &CalibrationConfig,
) -> Result<Technology, CalibrateError> {
    let mut tech = Technology::new("calibrated-4um", Volts(models.vdd));
    tech.cox_per_area = models.cox_per_area;
    tech.cj_per_width = models.cj_per_width;

    let mut depletion_up: Option<DriveParams> = None;
    for kind in TransistorKind::ALL {
        for direction in Direction::ALL {
            if kind == TransistorKind::Depletion && direction == Direction::PullDown {
                continue; // filled from the pull-up fit below
            }
            let params = calibrate_drive(kind, direction, models, config)?;
            if kind == TransistorKind::Depletion && direction == Direction::PullUp {
                depletion_up = Some(params.clone());
            }
            tech.set_drive(kind, direction, params);
        }
    }
    let dep = depletion_up.expect("depletion pull-up was calibrated");
    tech.set_drive(TransistorKind::Depletion, Direction::PullDown, dep);
    Ok(tech)
}

/// Calibrates one (kind, direction) pair.
///
/// # Errors
/// See [`calibrate_technology`].
pub fn calibrate_drive(
    kind: TransistorKind,
    direction: Direction,
    models: &MosModelSet,
    config: &CalibrationConfig,
) -> Result<DriveParams, CalibrateError> {
    // Step input pins the static effective resistance.
    let step = measure(
        kind,
        direction,
        models,
        config.load_farads,
        Seconds::ZERO,
        config.step_horizon,
    )?;
    let t50 = step.delay.value();
    if t50 <= 0.0 {
        return Err(CalibrateError::BadFit {
            message: format!("{kind:?}/{direction:?}: non-positive step delay"),
        });
    }
    let c_model = model_load_capacitance(kind, direction, models, config.load_farads);
    let r_device = t50 / c_model;
    let r_square = Ohms(r_device / runner::device_squares(kind, direction));

    // Ratio sweep fits the two slope tables.
    let mut reff_points = vec![(0.0, 1.0)];
    let mut tout_points = vec![(0.0, step.transition.value() / t50)];
    for &ratio in &config.ratios {
        if ratio <= 0.0 {
            continue;
        }
        let input_transition = Seconds(ratio * t50);
        // Slow edges need a longer window: settle + ramp + response.
        let horizon = Seconds(config.step_horizon.value() + 2.0 * input_transition.value());
        let m = measure(
            kind,
            direction,
            models,
            config.load_farads,
            input_transition,
            horizon,
        )?;
        reff_points.push((ratio, m.delay.value() / t50));
        tout_points.push((ratio, m.transition.value() / t50));
    }

    Ok(DriveParams {
        r_square,
        reff: fit::fit_monotone_table(&reff_points)?,
        tout: fit::fit_monotone_table(&tout_points)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrates_n_pulldown_with_sane_magnitudes() {
        let p = calibrate_drive(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            &MosModelSet::default(),
            &CalibrationConfig::coarse(),
        )
        .unwrap();
        // A 4 µm-class unit pull-down is a few kΩ-per-square device.
        assert!(
            p.r_square.value() > 1_000.0 && p.r_square.value() < 100_000.0,
            "r_square {}",
            p.r_square.value()
        );
        assert!(p.reff.is_monotone_nondecreasing());
        // Slower inputs must cost delay: the last table value exceeds 1.
        let last = p.reff.points().last().expect("points").1;
        assert!(last > 1.1, "reff saturates too low: {last}");
    }

    #[test]
    fn pass_configurations_are_weaker_than_primary_drives() {
        let models = MosModelSet::default();
        let cfg = CalibrationConfig {
            ratios: vec![],
            ..CalibrationConfig::coarse()
        };
        let n_down = calibrate_drive(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            &models,
            &cfg,
        )
        .unwrap();
        let n_up = calibrate_drive(
            TransistorKind::NEnhancement,
            Direction::PullUp,
            &models,
            &cfg,
        )
        .unwrap();
        assert!(
            n_up.r_square.value() > n_down.r_square.value(),
            "passing high ({}) must be weaker than pulling down ({})",
            n_up.r_square.value(),
            n_down.r_square.value()
        );
    }

    #[test]
    fn full_technology_calibration_fills_all_pairs() {
        let tech = calibrate_technology(
            &MosModelSet::default(),
            &CalibrationConfig {
                ratios: vec![2.0],
                ..CalibrationConfig::coarse()
            },
        )
        .unwrap();
        for kind in TransistorKind::ALL {
            for direction in Direction::ALL {
                let d = tech.drive(kind, direction);
                assert!(d.r_square.value() > 0.0, "{kind:?}/{direction:?}");
                assert!(d.reff.is_monotone_nondecreasing());
            }
        }
        // Depletion pull-down mirrors pull-up by construction.
        assert_eq!(
            tech.drive(TransistorKind::Depletion, Direction::PullDown),
            tech.drive(TransistorKind::Depletion, Direction::PullUp)
        );
    }
}
