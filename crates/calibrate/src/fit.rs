//! Table fitting: turning raw calibration measurements into the
//! [`SlopeTable`]s the slope model consumes.

use crate::error::CalibrateError;
use crystal::tech::SlopeTable;

/// Builds a [`SlopeTable`] from `(ratio, value)` samples.
///
/// The samples are sorted by ratio, duplicate ratios are averaged, and
/// values are made non-decreasing by a running maximum — measurement noise
/// must not produce a physically impossible "faster with a slower input"
/// dip.
///
/// # Errors
/// Returns [`CalibrateError::BadFit`] when no samples are given or a value
/// is non-positive/non-finite.
pub fn fit_monotone_table(samples: &[(f64, f64)]) -> Result<SlopeTable, CalibrateError> {
    if samples.is_empty() {
        return Err(CalibrateError::BadFit {
            message: "no samples".into(),
        });
    }
    if samples
        .iter()
        .any(|&(r, v)| !r.is_finite() || !v.is_finite() || v <= 0.0 || r < 0.0)
    {
        return Err(CalibrateError::BadFit {
            message: "samples must be finite with ratios >= 0 and values > 0".into(),
        });
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite ratios"));

    // Average duplicate ratios.
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(sorted.len());
    for (r, v) in sorted {
        match merged.last_mut() {
            Some(last) if (last.0 - r).abs() < 1e-12 => {
                last.1 = 0.5 * (last.1 + v);
            }
            _ => merged.push((r, v)),
        }
    }

    // Running maximum enforces monotone non-decreasing values.
    let mut peak = 0.0f64;
    for point in &mut merged {
        peak = peak.max(point.1);
        point.1 = peak;
    }

    SlopeTable::new(merged).map_err(|e| CalibrateError::BadFit {
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_and_interpolates() {
        let t = fit_monotone_table(&[(4.0, 2.0), (0.0, 1.0), (2.0, 1.5)]).unwrap();
        assert!((t.eval(1.0) - 1.25).abs() < 1e-12);
        assert!((t.eval(3.0) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn enforces_monotonicity_against_noise() {
        let t = fit_monotone_table(&[(0.0, 1.0), (1.0, 1.2), (2.0, 1.15), (4.0, 1.6)]).unwrap();
        assert!(t.is_monotone_nondecreasing());
        // The dip at ratio 2 is flattened to the running max, 1.2.
        assert!((t.eval(2.0) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn averages_duplicate_ratios() {
        let t = fit_monotone_table(&[(0.0, 1.0), (1.0, 2.0), (1.0, 4.0)]).unwrap();
        assert!((t.eval(1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_samples() {
        assert!(fit_monotone_table(&[]).is_err());
        assert!(fit_monotone_table(&[(0.0, -1.0)]).is_err());
        assert!(fit_monotone_table(&[(f64::NAN, 1.0)]).is_err());
    }
}
