//! Error type for the calibration pipeline.

use std::error::Error;
use std::fmt;

/// Errors produced while calibrating a technology.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrateError {
    /// The reference simulator failed.
    Simulation(nanospice::SimError),
    /// A calibration waveform could not be measured.
    Unmeasurable {
        /// What failed and why.
        what: String,
    },
    /// The fitted points do not form a valid table.
    BadFit {
        /// Description of the defect.
        message: String,
    },
}

impl fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrateError::Simulation(e) => write!(f, "reference simulation failed: {e}"),
            CalibrateError::Unmeasurable { what } => write!(f, "unmeasurable response: {what}"),
            CalibrateError::BadFit { message } => write!(f, "bad fit: {message}"),
        }
    }
}

impl Error for CalibrateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CalibrateError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nanospice::SimError> for CalibrateError {
    fn from(e: nanospice::SimError) -> CalibrateError {
        CalibrateError::Simulation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sim_error_with_source() {
        let e = CalibrateError::from(nanospice::SimError::BadNode { index: 1 });
        assert!(e.to_string().contains("reference simulation failed"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
