//! Dense linear algebra: just enough for modified nodal analysis.
//!
//! Circuit matrices at this scale (tens to a few hundred unknowns) are
//! fastest with a cache-friendly dense LU; no external solver is needed.

use crate::error::SimError;

/// A dense row-major square-capable matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to entry `(r, c)` — the MNA "stamp" primitive.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] += v;
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    #[allow(clippy::needless_range_loop)] // index loops mirror the math
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }
}

/// An LU factorization with partial pivoting of a square matrix.
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: Matrix,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Factors `a` (consumed) into `P·A = L·U`.
    ///
    /// # Errors
    /// Returns [`SimError::SingularMatrix`] when no usable pivot exists in
    /// some column (the circuit matrix is structurally or numerically
    /// singular, e.g. a floating subcircuit).
    pub fn factor(mut a: Matrix) -> Result<LuFactors, SimError> {
        assert_eq!(a.rows, a.cols, "LU needs a square matrix");
        let n = a.rows;
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivot: largest magnitude in column k at or below row k.
            let mut pivot_row = k;
            let mut pivot_mag = a.get(k, k).abs();
            for r in (k + 1)..n {
                let mag = a.get(r, k).abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = r;
                }
            }
            if pivot_mag < 1e-300 {
                return Err(SimError::SingularMatrix { column: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = a.get(k, c);
                    a.set(k, c, a.get(pivot_row, c));
                    a.set(pivot_row, c, tmp);
                }
                perm.swap(k, pivot_row);
            }
            let pivot = a.get(k, k);
            for r in (k + 1)..n {
                let factor = a.get(r, k) / pivot;
                a.set(r, k, factor);
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        let v = a.get(r, c) - factor * a.get(k, c);
                        a.set(r, c, v);
                    }
                }
            }
        }
        Ok(LuFactors { lu: a, perm })
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the matrix dimension.
    #[allow(clippy::needless_range_loop)] // index loops mirror the math
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows;
        assert_eq!(b.len(), n);
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution (L has implicit unit diagonal).
        for r in 1..n {
            let mut sum = x[r];
            for c in 0..r {
                sum -= self.lu.get(r, c) * x[c];
            }
            x[r] = sum;
        }
        // Back substitution.
        for r in (0..n).rev() {
            let mut sum = x[r];
            for c in (r + 1)..n {
                sum -= self.lu.get(r, c) * x[c];
            }
            x[r] = sum / self.lu.get(r, r);
        }
        x
    }
}

/// Convenience: factor and solve in one call.
///
/// # Errors
/// Propagates [`SimError::SingularMatrix`] from the factorization.
pub fn solve(a: Matrix, b: &[f64]) -> Result<Vec<f64>, SimError> {
    Ok(LuFactors::factor(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(vals: &[&[f64]]) -> Matrix {
        let n = vals.len();
        let m = vals[0].len();
        let mut a = Matrix::zeros(n, m);
        for (r, row) in vals.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                a.set(r, c, v);
            }
        }
        a
    }

    #[test]
    fn solves_identity() {
        let a = mat(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = solve(a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_hand_computed_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = mat(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Leading zero forces a row swap.
        let a = mat(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = mat(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve(a, &[1.0, 2.0]),
            Err(SimError::SingularMatrix { .. })
        ));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn residual_is_small_for_random_spd_like_system() {
        // Build a diagonally dominant system (like a conductance matrix).
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        let mut b = vec![0.0; n];
        let mut seed = 12345u64;
        let mut next = || {
            // xorshift
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 1000.0
        };
        for r in 0..n {
            for c in 0..n {
                if r != c {
                    let g = next() * 0.1;
                    a.add(r, c, -g);
                    a.add(r, r, g);
                }
            }
            a.add(r, r, 1.0);
            b[r] = next();
        }
        let factors = LuFactors::factor(a.clone()).unwrap();
        let x = factors.solve(&b);
        let ax = a.mul_vec(&x);
        for (lhs, rhs) in ax.iter().zip(&b) {
            assert!((lhs - rhs).abs() < 1e-9, "residual too large");
        }
    }

    #[test]
    fn stamp_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add(0, 0, 1.0);
        a.add(0, 0, 2.5);
        assert_eq!(a.get(0, 0), 3.5);
        a.clear();
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn solve_after_clear_reuses_allocation() {
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 2.0);
        a.set(1, 1, 4.0);
        let x = solve(a.clone(), &[2.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }
}
