//! Dense linear algebra: the small-circuit fast path for modified nodal
//! analysis.
//!
//! Circuit matrices up to a few dozen unknowns are fastest with a
//! cache-friendly dense LU; larger systems go through the CSC sparse LU
//! in [`sparse`](crate::sparse). Both backends share the pivot policy
//! defined here ([`REL_PIVOT_MIN`]) and are selected behind the
//! [`LinearSolver`](crate::solver::LinearSolver) trait.

use crate::error::SimError;
use std::cell::Cell;

/// Relative singular-pivot threshold shared by the dense and sparse LU
/// paths: a column counts as numerically singular when the best available
/// pivot is smaller than this fraction of the column's largest original
/// magnitude. Conductance matrices in femtofarad/picosecond units sit
/// many orders of magnitude from 1.0, so an absolute cutoff would be
/// scale-blind: it would pass a pivot that is pure cancellation noise in
/// a large-magnitude system, and (with a larger constant) reject a
/// perfectly well-conditioned but uniformly tiny one.
pub const REL_PIVOT_MIN: f64 = 1e-12;

/// Hard floor below which a pivot is rejected regardless of column scale;
/// dividing by a subnormal this small produces infinities anyway.
pub(crate) const ABS_PIVOT_MIN: f64 = 1e-300;

thread_local! {
    static MATRIX_COPIES: Cell<u64> = const { Cell::new(0) };
}

/// Number of deep [`Matrix`] copies (`clone()` calls) made **on the
/// current thread** since it started.
///
/// The Newton hot loop is required to stamp, factor, and solve without
/// ever copying the system matrix; regression tests read this counter
/// around a solve to pin that down. Thread-local so concurrently running
/// tests cannot perturb each other's deltas.
pub fn matrix_copy_count() -> u64 {
    MATRIX_COPIES.with(|c| c.get())
}

/// A dense row-major square-capable matrix of `f64`.
#[derive(Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Clone for Matrix {
    fn clone(&self) -> Matrix {
        MATRIX_COPIES.with(|c| c.set(c.get() + 1));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.clone(),
        }
    }
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads entry `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds (checked in release builds too: a
    /// wrong-but-in-range flat index would silently alias another entry).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "matrix index ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Writes entry `(r, c)`.
    ///
    /// # Panics
    /// Panics if out of bounds (checked in release builds too).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "matrix index ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to entry `(r, c)` — the MNA "stamp" primitive.
    ///
    /// # Panics
    /// Panics if out of bounds (checked in release builds too).
    #[inline]
    pub fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "matrix index ({r}, {c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] += v;
    }

    /// Resets every entry to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    #[allow(clippy::needless_range_loop)] // index loops mirror the math
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }
}

/// Factors `a` in place with partial pivoting: on success `a` holds L
/// (unit diagonal, strictly below) and U (on and above the diagonal),
/// and `perm` the row permutation. `col_scale` is workspace for the
/// per-column original magnitudes the relative singular test needs; both
/// vectors are resized to fit, so a caller that keeps them across solves
/// pays no per-factor allocation.
// The negated `>=` in the singular test is deliberate: it sends NaN
// pivots to the error arm too.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub(crate) fn lu_factor_in_place(
    a: &mut Matrix,
    perm: &mut Vec<usize>,
    col_scale: &mut Vec<f64>,
) -> Result<(), SimError> {
    assert_eq!(a.rows, a.cols, "LU needs a square matrix");
    let n = a.rows;
    perm.clear();
    perm.extend(0..n);
    col_scale.clear();
    col_scale.resize(n, 0.0);
    for r in 0..n {
        let row = &a.data[r * n..(r + 1) * n];
        for (c, v) in row.iter().enumerate() {
            let m = v.abs();
            if m > col_scale[c] {
                col_scale[c] = m;
            }
        }
    }
    for k in 0..n {
        // Partial pivot: largest magnitude in column k at or below row k.
        let mut pivot_row = k;
        let mut pivot_mag = a.data[k * n + k].abs();
        for r in (k + 1)..n {
            let mag = a.data[r * n + k].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        // Singular when the whole remaining column is cancellation noise
        // relative to the column's original magnitude (negated comparison
        // so NaN also lands in the error arm).
        if pivot_mag < ABS_PIVOT_MIN || !(pivot_mag >= REL_PIVOT_MIN * col_scale[k]) {
            return Err(SimError::SingularMatrix { column: k });
        }
        if pivot_row != k {
            let (head, tail) = a.data.split_at_mut(pivot_row * n);
            head[k * n..k * n + n].swap_with_slice(&mut tail[..n]);
            perm.swap(k, pivot_row);
        }
        let (head, tail) = a.data.split_at_mut((k + 1) * n);
        let pivot_row_data = &head[k * n..];
        let pivot = pivot_row_data[k];
        for r in (k + 1)..n {
            let row = &mut tail[(r - k - 1) * n..(r - k) * n];
            let factor = row[k] / pivot;
            row[k] = factor;
            if factor != 0.0 {
                for c in (k + 1)..n {
                    row[c] -= factor * pivot_row_data[c];
                }
            }
        }
    }
    Ok(())
}

/// Solves `A·x = b` in place from factors produced by
/// [`lu_factor_in_place`]: `b` is overwritten with the solution.
/// `scratch` holds the permuted right-hand side so `b` itself never
/// aliases the substitution.
pub(crate) fn lu_solve_in_place(
    lu: &Matrix,
    perm: &[usize],
    b: &mut [f64],
    scratch: &mut Vec<f64>,
) {
    let n = lu.rows;
    assert_eq!(b.len(), n);
    assert_eq!(perm.len(), n);
    scratch.clear();
    scratch.extend(perm.iter().map(|&p| b[p]));
    let x = &mut scratch[..];
    // Forward substitution (L has implicit unit diagonal).
    for r in 1..n {
        let row = &lu.data[r * n..r * n + r];
        let mut sum = x[r];
        for (c, l) in row.iter().enumerate() {
            sum -= l * x[c];
        }
        x[r] = sum;
    }
    // Back substitution.
    for r in (0..n).rev() {
        let row = &lu.data[r * n..(r + 1) * n];
        let mut sum = x[r];
        for c in (r + 1)..n {
            sum -= row[c] * x[c];
        }
        x[r] = sum / row[r];
    }
    b.copy_from_slice(x);
}

/// An LU factorization with partial pivoting of a square matrix.
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: Matrix,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Factors `a` (consumed) into `P·A = L·U`.
    ///
    /// # Errors
    /// Returns [`SimError::SingularMatrix`] when no usable pivot exists in
    /// some column — none at all, or only pivots below [`REL_PIVOT_MIN`]
    /// of the column's original magnitude (the circuit matrix is
    /// structurally or numerically singular, e.g. a floating subcircuit).
    pub fn factor(mut a: Matrix) -> Result<LuFactors, SimError> {
        let mut perm = Vec::new();
        let mut col_scale = Vec::new();
        lu_factor_in_place(&mut a, &mut perm, &mut col_scale)?;
        Ok(LuFactors { lu: a, perm })
    }

    /// Solves `A·x = b` using the stored factors.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        let mut scratch = Vec::with_capacity(b.len());
        lu_solve_in_place(&self.lu, &self.perm, &mut x, &mut scratch);
        x
    }
}

/// Convenience: factor and solve in one call.
///
/// # Errors
/// Propagates [`SimError::SingularMatrix`] from the factorization.
pub fn solve(a: Matrix, b: &[f64]) -> Result<Vec<f64>, SimError> {
    Ok(LuFactors::factor(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(vals: &[&[f64]]) -> Matrix {
        let n = vals.len();
        let m = vals[0].len();
        let mut a = Matrix::zeros(n, m);
        for (r, row) in vals.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                a.set(r, c, v);
            }
        }
        a
    }

    #[test]
    fn solves_identity() {
        let a = mat(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let x = solve(a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_hand_computed_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = mat(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Leading zero forces a row swap.
        let a = mat(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = mat(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve(a, &[1.0, 2.0]),
            Err(SimError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn detects_singular_at_large_scale() {
        // Rows nearly dependent in a matrix scaled to 1e8: elimination
        // leaves a second pivot of 1e-6, which an absolute threshold
        // (the old `1e-300`) would happily divide by, silently producing
        // garbage. The relative test sees 1e-6 ≪ 1e-12 × 6e8 and rejects.
        let a = mat(&[&[1e8, 2e8], &[3e8, 6e8 + 1e-6]]);
        assert!(matches!(
            solve(a, &[1.0, 2.0]),
            Err(SimError::SingularMatrix { column: 1 })
        ));
    }

    #[test]
    fn uniformly_tiny_system_still_solves() {
        // Well-conditioned, just uniformly scaled to 1e-250 — legal for a
        // femtofarad/picosecond-scaled conductance matrix. The relative
        // pivot test must not reject it.
        let s = 1e-250;
        let a = mat(&[&[2.0 * s, 1.0 * s], &[1.0 * s, 3.0 * s]]);
        let x = solve(a, &[5.0 * s, 10.0 * s]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9, "{}", x[0]);
        assert!((x[1] - 3.0).abs() < 1e-9, "{}", x[1]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn residual_is_small_for_random_spd_like_system() {
        // Build a diagonally dominant system (like a conductance matrix).
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        let mut b = vec![0.0; n];
        let mut seed = 12345u64;
        let mut next = || {
            // xorshift
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 1000.0
        };
        for r in 0..n {
            for c in 0..n {
                if r != c {
                    let g = next() * 0.1;
                    a.add(r, c, -g);
                    a.add(r, r, g);
                }
            }
            a.add(r, r, 1.0);
            b[r] = next();
        }
        let factors = LuFactors::factor(a.clone()).unwrap();
        let x = factors.solve(&b);
        let ax = a.mul_vec(&x);
        for (lhs, rhs) in ax.iter().zip(&b) {
            assert!((lhs - rhs).abs() < 1e-9, "residual too large");
        }
    }

    #[test]
    fn stamp_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        a.add(0, 0, 1.0);
        a.add(0, 0, 2.5);
        assert_eq!(a.get(0, 0), 3.5);
        a.clear();
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics_in_release_too() {
        let a = Matrix::zeros(2, 3);
        // (0, 3) flattens to index 3, inside the backing vec — the old
        // debug_assert-only check silently read entry (1, 0) in release.
        let _ = a.get(0, 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics_in_release_too() {
        let mut a = Matrix::zeros(2, 3);
        a.set(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_out_of_bounds_panics_in_release_too() {
        let mut a = Matrix::zeros(3, 3);
        a.add(3, 0, 1.0);
    }

    #[test]
    fn clone_bumps_copy_counter() {
        let a = Matrix::zeros(4, 4);
        let before = matrix_copy_count();
        let _b = a.clone();
        assert_eq!(matrix_copy_count(), before + 1);
    }

    #[test]
    fn solve_after_clear_reuses_allocation() {
        // Stamp → solve → clear → restamp → solve: the exact lifecycle
        // the engine's Newton loop runs, and the one the sparse solver's
        // pattern reuse depends on.
        let mut a = Matrix::zeros(2, 2);
        a.add(0, 0, 2.0);
        a.add(1, 1, 4.0);
        let x = solve(a.clone(), &[2.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);

        let ptr_before = a.data.as_ptr();
        a.clear();
        assert_eq!(a.get(0, 0), 0.0);
        assert_eq!(a.get(1, 1), 0.0);

        // Restamp a different system into the same storage.
        a.add(0, 0, 1.0);
        a.add(0, 1, 2.0);
        a.add(1, 0, 1.0);
        a.add(1, 1, 3.0);
        assert_eq!(
            a.data.as_ptr(),
            ptr_before,
            "clear() must keep the allocation"
        );
        let x = solve(a, &[5.0, 7.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn in_place_path_matches_owned_factor_bit_for_bit() {
        // DenseSolver drives the in-place entry points; LuFactors is the
        // documented oracle. Same arithmetic, same bits.
        let build = || {
            mat(&[
                &[4.0, -1.0, 0.0, -0.3],
                &[-1.0, 3.7, -1.2, 0.0],
                &[0.0, -1.2, 5.1, -2.0],
                &[-0.3, 0.0, -2.0, 4.4],
            ])
        };
        let b = [1.0, -2.0, 0.5, 3.25];
        let via_factors = LuFactors::factor(build()).unwrap().solve(&b);
        let mut a = build();
        let mut perm = Vec::new();
        let mut scale = Vec::new();
        lu_factor_in_place(&mut a, &mut perm, &mut scale).unwrap();
        let mut x = b.to_vec();
        let mut scratch = Vec::new();
        lu_solve_in_place(&a, &perm, &mut x, &mut scratch);
        for (p, q) in via_factors.iter().zip(&x) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }
}
