//! CSC sparse LU: the large-circuit path for modified nodal analysis.
//!
//! Left-looking Gilbert–Peierls factorization with partial pivoting over
//! a minimum-degree column ordering, plus KLU-style numeric
//! *refactorization*: the first `factor()` records the fill pattern, the
//! per-column reach sets, and the pivot sequence; subsequent factors
//! replay them value-only — no graph traversal, no reallocation — with a
//! pivot-stability check that falls back to a full re-pivoting pass when
//! the operating point drifts far enough to invalidate the recorded
//! pivots.
//!
//! Assembly reuses the engine's determinism the same way: the first
//! assembly records the `(row, col)` stamp sequence; `analyze` maps each
//! stamp event to its CSC value slot, so every later assembly replays
//! through a cursor in O(1) per stamp. A sequence that stops matching
//! (never the case for a fixed circuit and analysis mode, but handled
//! anyway) triggers a pattern rebuild instead of wrong answers.

use crate::error::SimError;
use crate::matrix::{ABS_PIVOT_MIN, REL_PIVOT_MIN};
use crate::solver::LinearSolver;

/// Sentinel for "row not yet pivoted" in `pinv`.
const UNSET: u32 = u32::MAX;

/// A recorded pivot must stay within this factor of its column's current
/// candidate maximum for the value-only refactorization to be accepted;
/// otherwise the factor falls back to full re-pivoting. 1e-3 mirrors
/// KLU's default partial-pivoting tolerance.
const REFACTOR_PIVOT_TOL: f64 = 1e-3;

/// Threshold pivoting bias toward the structural diagonal: the diagonal
/// row is taken whenever its magnitude is at least this fraction of the
/// best off-diagonal candidate. MNA matrices are near diagonally
/// dominant, and keeping rows paired with their own columns prevents
/// *pivot stranding* — partial pivoting stealing a weakly-coupled row's
/// natural pivot, leaving that row to surface at a late elimination step
/// as a catastrophically cancelled (spuriously "singular") Schur entry.
const DIAG_PIVOT_PREF: f64 = 0.1;

/// CSC sparse LU with symbolic-pattern reuse, behind [`LinearSolver`].
#[derive(Debug)]
pub struct SparseLu {
    n: usize,

    // --- assembly ---
    /// True until the first `factor()`: stamps are recorded as triplets.
    recording: bool,
    /// The recorded stamp sequence: `(row, col)` per stamp event.
    trip: Vec<(u32, u32)>,
    /// Stamp values for the recording assembly only.
    trip_v: Vec<f64>,
    /// CSC slot for each stamp event, filled by `analyze`.
    seq_slot: Vec<u32>,
    /// Replay position in `trip` for the current assembly.
    cursor: usize,
    /// The current assembly stopped matching the recorded sequence.
    diverged: bool,
    /// Out-of-sequence stamps collected after divergence.
    pending: Vec<(u32, u32, f64)>,

    // --- the assembled matrix, compressed sparse column ---
    ap: Vec<usize>,
    ai: Vec<u32>,
    av: Vec<f64>,
    /// Per-column max magnitude of the assembled values, for the relative
    /// singular test (same policy as the dense path).
    col_scale: Vec<f64>,

    // --- symbolic analysis ---
    /// Column elimination order: step `j` eliminates original column
    /// `q[j]` (minimum degree on the pattern of A + Aᵀ).
    q: Vec<u32>,

    // --- factors ---
    // L column-wise in *original* row indices, unit diagonal entry first;
    // U column-wise in pivot-step indices, diagonal entry last. Keeping L
    // in original row space avoids a rename pass and lets the refactor
    // replay reach sets directly.
    lp: Vec<usize>,
    li: Vec<u32>,
    lx: Vec<f64>,
    up: Vec<usize>,
    ui: Vec<u32>,
    ux: Vec<f64>,
    /// Original row → pivot step ([`UNSET`] while unpivoted).
    pinv: Vec<u32>,
    /// Pivot step → original row.
    prow: Vec<u32>,
    /// Concatenated per-column reach sets (topological order), replayed
    /// by the value-only refactorization.
    reach: Vec<u32>,
    reach_p: Vec<usize>,
    have_factors: bool,
    factored: bool,

    // --- workspaces (allocated once) ---
    work: Vec<f64>,
    mark: Vec<u32>,
    mark_gen: u32,
    stack: Vec<(u32, usize)>,
    topo: Vec<u32>,
    y: Vec<f64>,
    z: Vec<f64>,
}

impl SparseLu {
    /// Creates a sparse solver for an `n × n` system.
    pub fn new(n: usize) -> SparseLu {
        SparseLu {
            n,
            recording: true,
            trip: Vec::new(),
            trip_v: Vec::new(),
            seq_slot: Vec::new(),
            cursor: 0,
            diverged: false,
            pending: Vec::new(),
            ap: Vec::new(),
            ai: Vec::new(),
            av: Vec::new(),
            col_scale: Vec::new(),
            q: Vec::new(),
            lp: Vec::new(),
            li: Vec::new(),
            lx: Vec::new(),
            up: Vec::new(),
            ui: Vec::new(),
            ux: Vec::new(),
            pinv: Vec::new(),
            prow: Vec::new(),
            reach: Vec::new(),
            reach_p: Vec::new(),
            have_factors: false,
            factored: false,
            work: Vec::new(),
            mark: vec![0; n],
            mark_gen: 0,
            stack: Vec::new(),
            topo: Vec::new(),
            y: Vec::new(),
            z: Vec::new(),
        }
    }

    /// Number of stored nonzeros in the assembled matrix (after the first
    /// `factor`).
    pub fn nnz(&self) -> usize {
        self.ai.len()
    }

    /// Number of stored nonzeros in the L and U factors combined.
    pub fn factor_nnz(&self) -> usize {
        self.li.len() + self.ui.len()
    }

    /// Compresses the recorded triplets into CSC (duplicates merged, rows
    /// sorted within each column), maps every stamp event to its value
    /// slot, and computes the column elimination order.
    fn analyze(&mut self) {
        let n = self.n;
        let mut order: Vec<u32> = (0..self.trip.len() as u32).collect();
        {
            let trip = &self.trip;
            order.sort_unstable_by_key(|&t| {
                let (r, c) = trip[t as usize];
                ((c as u64) << 32) | r as u64
            });
        }
        self.ai.clear();
        self.av.clear();
        self.seq_slot.clear();
        self.seq_slot.resize(self.trip.len(), 0);
        let mut counts = vec![0usize; n];
        let mut last: Option<(u32, u32)> = None;
        for &t in &order {
            let (r, c) = self.trip[t as usize];
            if last != Some((r, c)) {
                self.ai.push(r);
                self.av.push(0.0);
                counts[c as usize] += 1;
                last = Some((r, c));
            }
            let slot = self.ai.len() - 1;
            self.seq_slot[t as usize] = slot as u32;
            self.av[slot] += self.trip_v[t as usize];
        }
        self.ap.clear();
        self.ap.push(0);
        let mut total = 0usize;
        for &cnt in &counts {
            total += cnt;
            self.ap.push(total);
        }
        self.trip_v.clear();
        self.trip_v.shrink_to_fit();
        self.q = min_degree(n, &self.ap, &self.ai);
        self.have_factors = false;
    }

    /// Rebuilds the pattern when an assembly diverged from the recorded
    /// stamp sequence: the matrix is the currently assembled values plus
    /// the out-of-sequence stamps.
    fn rebuild_from_current(&mut self) {
        let mut trip = Vec::with_capacity(self.ai.len() + self.pending.len());
        let mut trip_v = Vec::with_capacity(trip.capacity());
        for c in 0..self.n {
            for p in self.ap[c]..self.ap[c + 1] {
                trip.push((self.ai[p], c as u32));
                trip_v.push(self.av[p]);
            }
        }
        for &(r, c, v) in &self.pending {
            trip.push((r, c));
            trip_v.push(v);
        }
        self.trip = trip;
        self.trip_v = trip_v;
        self.pending.clear();
        self.diverged = false;
        self.cursor = self.trip.len();
        self.analyze();
    }

    fn compute_col_scales(&mut self) {
        self.col_scale.clear();
        self.col_scale.resize(self.n, 0.0);
        for c in 0..self.n {
            let mut m = 0.0f64;
            for p in self.ap[c]..self.ap[c + 1] {
                m = m.max(self.av[p].abs());
            }
            self.col_scale[c] = m;
        }
    }

    /// Fills `self.topo` with the topological order of the nonzero
    /// pattern of `L⁻¹·A(:, col)` — the rows this column's triangular
    /// solve touches — by DFS over the partially built L.
    fn compute_reach(&mut self, col: usize) {
        self.topo.clear();
        self.mark_gen += 1;
        let gen = self.mark_gen;
        let SparseLu {
            ref ap,
            ref ai,
            ref lp,
            ref li,
            ref pinv,
            ref mut stack,
            ref mut mark,
            ref mut topo,
            ..
        } = *self;
        let child_start = |node: u32| -> usize {
            let k = pinv[node as usize];
            if k == UNSET {
                0
            } else {
                lp[k as usize] + 1
            }
        };
        let child_end = |node: u32| -> usize {
            let k = pinv[node as usize];
            if k == UNSET {
                0
            } else {
                lp[k as usize + 1]
            }
        };
        for &root in &ai[ap[col]..ap[col + 1]] {
            if mark[root as usize] == gen {
                continue;
            }
            mark[root as usize] = gen;
            stack.push((root, child_start(root)));
            while let Some(&(node, ptr)) = stack.last() {
                let end = child_end(node);
                let mut next_ptr = ptr;
                let mut descend = None;
                while next_ptr < end {
                    let child = li[next_ptr];
                    next_ptr += 1;
                    if mark[child as usize] != gen {
                        mark[child as usize] = gen;
                        descend = Some(child);
                        break;
                    }
                }
                stack.last_mut().expect("nonempty").1 = next_ptr;
                match descend {
                    Some(child) => stack.push((child, child_start(child))),
                    None => {
                        topo.push(node);
                        stack.pop();
                    }
                }
            }
        }
        // Reverse finish order = parents before the rows they update.
        topo.reverse();
    }

    /// Full Gilbert–Peierls factorization with partial pivoting,
    /// recording the reach sets and pivot sequence for later value-only
    /// refactorization.
    // The negated `>=` in the singular test is deliberate: it sends NaN
    // pivots to the error arm too.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn factor_full(&mut self) -> Result<(), SimError> {
        let n = self.n;
        self.lp.clear();
        self.li.clear();
        self.lx.clear();
        self.up.clear();
        self.ui.clear();
        self.ux.clear();
        self.reach.clear();
        self.reach_p.clear();
        self.lp.push(0);
        self.up.push(0);
        self.reach_p.push(0);
        self.pinv.clear();
        self.pinv.resize(n, UNSET);
        self.prow.clear();
        self.prow.resize(n, 0);
        self.work.clear();
        self.work.resize(n, 0.0);
        self.have_factors = false;
        self.compute_col_scales();
        for j in 0..n {
            let col = self.q[j] as usize;
            self.compute_reach(col);
            // Scatter A(:, col), then eliminate in topological order: a
            // sparse triangular solve x = L⁻¹·A(:, col).
            for p in self.ap[col]..self.ap[col + 1] {
                self.work[self.ai[p] as usize] = self.av[p];
            }
            for t in 0..self.topo.len() {
                let i = self.topo[t] as usize;
                let k = self.pinv[i];
                if k == UNSET {
                    continue;
                }
                let xk = self.work[i];
                for p in self.lp[k as usize] + 1..self.lp[k as usize + 1] {
                    self.work[self.li[p] as usize] -= self.lx[p] * xk;
                }
            }
            // Threshold pivot among the rows not yet assigned to a column:
            // largest magnitude wins, except that the structural diagonal
            // is preferred whenever it is within [`DIAG_PIVOT_PREF`] of it.
            let mut pmag = -1.0f64;
            let mut choice = UNSET;
            for t in 0..self.topo.len() {
                let i = self.topo[t] as usize;
                if self.pinv[i] == UNSET {
                    let m = self.work[i].abs();
                    if m > pmag {
                        pmag = m;
                        choice = i as u32;
                    }
                }
            }
            if choice != col as u32 && self.pinv[col] == UNSET {
                let dm = self.work[col].abs();
                if dm >= DIAG_PIVOT_PREF * pmag {
                    pmag = dm;
                    choice = col as u32;
                }
            }
            if choice == UNSET
                || pmag < ABS_PIVOT_MIN
                || !(pmag >= REL_PIVOT_MIN * self.col_scale[col])
            {
                for t in 0..self.topo.len() {
                    self.work[self.topo[t] as usize] = 0.0;
                }
                return Err(SimError::SingularMatrix { column: col });
            }
            // Emit U column j (already-pivoted rows in topo order, then
            // the diagonal) and L column j (unit diagonal first, then the
            // remaining rows divided by the pivot).
            for t in 0..self.topo.len() {
                let i = self.topo[t] as usize;
                let k = self.pinv[i];
                if k != UNSET {
                    self.ui.push(k);
                    self.ux.push(self.work[i]);
                }
            }
            let pivot = self.work[choice as usize];
            self.ui.push(j as u32);
            self.ux.push(pivot);
            self.up.push(self.ui.len());
            self.li.push(choice);
            self.lx.push(1.0);
            for t in 0..self.topo.len() {
                let i = self.topo[t];
                if self.pinv[i as usize] == UNSET && i != choice {
                    self.li.push(i);
                    self.lx.push(self.work[i as usize] / pivot);
                }
            }
            self.lp.push(self.li.len());
            self.pinv[choice as usize] = j as u32;
            self.prow[j] = choice;
            for t in 0..self.topo.len() {
                let i = self.topo[t];
                self.reach.push(i);
                self.work[i as usize] = 0.0;
            }
            self.reach_p.push(self.reach.len());
        }
        self.have_factors = true;
        Ok(())
    }

    /// Value-only refactorization along the recorded pattern and pivot
    /// sequence. Returns `false` (without touching the recorded pattern)
    /// when a recorded pivot went numerically stale, in which case the
    /// caller runs [`Self::factor_full`] again.
    fn refactor(&mut self) -> bool {
        let n = self.n;
        self.compute_col_scales();
        self.work.clear();
        self.work.resize(n, 0.0);
        for j in 0..n {
            let col = self.q[j] as usize;
            for p in self.ap[col]..self.ap[col + 1] {
                self.work[self.ai[p] as usize] = self.av[p];
            }
            let (rs, re) = (self.reach_p[j], self.reach_p[j + 1]);
            let mut uslot = self.up[j];
            for rp in rs..re {
                let i = self.reach[rp] as usize;
                let k = self.pinv[i];
                if (k as usize) < j {
                    let xk = self.work[i];
                    self.ux[uslot] = xk;
                    uslot += 1;
                    for p in self.lp[k as usize] + 1..self.lp[k as usize + 1] {
                        self.work[self.li[p] as usize] -= self.lx[p] * xk;
                    }
                }
            }
            let pivot = self.work[self.prow[j] as usize];
            let pmag = pivot.abs();
            let mut cmax = 0.0f64;
            for rp in rs..re {
                let i = self.reach[rp] as usize;
                if (self.pinv[i] as usize) >= j {
                    cmax = cmax.max(self.work[i].abs());
                }
            }
            let stable = pmag >= ABS_PIVOT_MIN
                && pmag >= REL_PIVOT_MIN * self.col_scale[col]
                && pmag >= REFACTOR_PIVOT_TOL * cmax;
            if !stable {
                for rp in rs..re {
                    self.work[self.reach[rp] as usize] = 0.0;
                }
                return false;
            }
            debug_assert_eq!(uslot, self.up[j + 1] - 1);
            self.ux[uslot] = pivot;
            let mut lslot = self.lp[j] + 1;
            for rp in rs..re {
                let i = self.reach[rp] as usize;
                if (self.pinv[i] as usize) > j {
                    self.lx[lslot] = self.work[i] / pivot;
                    lslot += 1;
                }
            }
            debug_assert_eq!(lslot, self.lp[j + 1]);
            for rp in rs..re {
                self.work[self.reach[rp] as usize] = 0.0;
            }
        }
        true
    }
}

impl LinearSolver for SparseLu {
    fn dim(&self) -> usize {
        self.n
    }

    fn begin(&mut self) {
        self.factored = false;
        if self.recording {
            self.trip.clear();
            self.trip_v.clear();
        } else {
            self.av.fill(0.0);
            self.cursor = 0;
            self.diverged = false;
            self.pending.clear();
        }
    }

    fn add(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.n && c < self.n,
            "sparse stamp ({r}, {c}) out of bounds for n = {}",
            self.n
        );
        if self.recording {
            self.trip.push((r as u32, c as u32));
            self.trip_v.push(v);
        } else if !self.diverged
            && self.cursor < self.trip.len()
            && self.trip[self.cursor] == (r as u32, c as u32)
        {
            self.av[self.seq_slot[self.cursor] as usize] += v;
            self.cursor += 1;
        } else {
            self.diverged = true;
            self.pending.push((r as u32, c as u32, v));
        }
    }

    fn factor(&mut self) -> Result<(), SimError> {
        if self.recording {
            self.analyze();
            self.recording = false;
        } else if self.diverged {
            self.rebuild_from_current();
        }
        if self.have_factors && self.refactor() {
            self.factored = true;
            return Ok(());
        }
        self.factor_full()?;
        self.factored = true;
        Ok(())
    }

    fn solve_in_place(&mut self, b: &mut [f64]) {
        assert!(self.factored, "solve_in_place before a successful factor");
        let n = self.n;
        assert_eq!(b.len(), n);
        // Forward solve L·z = b with L in original row space: z lives in
        // pivot order, the running right-hand side in original order.
        self.y.clear();
        self.y.extend_from_slice(b);
        self.z.clear();
        self.z.resize(n, 0.0);
        for j in 0..n {
            let zj = self.y[self.prow[j] as usize];
            self.z[j] = zj;
            if zj != 0.0 {
                for p in self.lp[j] + 1..self.lp[j + 1] {
                    self.y[self.li[p] as usize] -= self.lx[p] * zj;
                }
            }
        }
        // Back solve U·w = z (columns in reverse, diagonal stored last).
        for j in (0..n).rev() {
            let zj = self.z[j] / self.ux[self.up[j + 1] - 1];
            self.z[j] = zj;
            if zj != 0.0 {
                for p in self.up[j]..self.up[j + 1] - 1 {
                    self.z[self.ui[p] as usize] -= self.ux[p] * zj;
                }
            }
        }
        // Undo the column permutation.
        for j in 0..n {
            b[self.q[j] as usize] = self.z[j];
        }
    }

    fn name(&self) -> &'static str {
        "sparse"
    }
}

/// Minimum-degree ordering on the symmetrized pattern of the assembled
/// matrix (A + Aᵀ, diagonal ignored): repeatedly eliminates a node of
/// minimum current degree and forms the resulting clique among its live
/// neighbors. Clique formation is budget-capped so pathological dense
/// rows degrade to plain degree ordering instead of quadratic blowup.
fn min_degree(n: usize, ap: &[usize], ai: &[u32]) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for c in 0..n {
        for &row in &ai[ap[c]..ap[c + 1]] {
            let r = row as usize;
            if r != c {
                adj[r].push(c as u32);
                adj[c].push(r as u32);
            }
        }
    }
    let mut edges = 0usize;
    for l in adj.iter_mut() {
        l.sort_unstable();
        l.dedup();
        edges += l.len();
    }
    let mut cur_deg: Vec<u32> = adj.iter().map(|l| l.len() as u32).collect();
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> =
        (0..n).map(|i| Reverse((cur_deg[i], i as u32))).collect();
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut budget = 32 * edges + 4096;
    let mut scratch: Vec<u32> = Vec::new();
    while let Some(Reverse((d, v))) = heap.pop() {
        let vu = v as usize;
        if eliminated[vu] || d != cur_deg[vu] {
            continue;
        }
        eliminated[vu] = true;
        order.push(v);
        if budget == 0 {
            continue;
        }
        let live: Vec<u32> = adj[vu]
            .iter()
            .copied()
            .filter(|&u| !eliminated[u as usize])
            .collect();
        for &u in &live {
            let uu = u as usize;
            scratch.clear();
            scratch.extend(adj[uu].iter().copied().filter(|&w| !eliminated[w as usize]));
            scratch.extend(live.iter().copied().filter(|&w| w != u));
            scratch.sort_unstable();
            scratch.dedup();
            budget = budget.saturating_sub(scratch.len());
            std::mem::swap(&mut adj[uu], &mut scratch);
            cur_deg[uu] = adj[uu].len() as u32;
            heap.push(Reverse((cur_deg[uu], u)));
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{solve as dense_solve, Matrix};

    /// Stamps the same triplets into a dense matrix and a sparse solver,
    /// solves both, and checks agreement to tight tolerance.
    fn check_against_dense(n: usize, stamps: &[(usize, usize, f64)], b: &[f64]) -> Vec<f64> {
        let mut dense = Matrix::zeros(n, n);
        for &(r, c, v) in stamps {
            dense.add(r, c, v);
        }
        let reference = dense_solve(dense, b).unwrap();

        let mut sp = SparseLu::new(n);
        sp.begin();
        for &(r, c, v) in stamps {
            sp.add(r, c, v);
        }
        sp.factor().unwrap();
        let mut x = b.to_vec();
        sp.solve_in_place(&mut x);
        for (i, (p, q)) in reference.iter().zip(&x).enumerate() {
            assert!(
                (p - q).abs() <= 1e-9 * (1.0 + p.abs()),
                "x[{i}]: dense {p} vs sparse {q}"
            );
        }
        x
    }

    #[test]
    fn matches_dense_on_small_system() {
        check_against_dense(
            3,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 3.0),
                (1, 2, -0.5),
                (2, 1, -0.5),
                (2, 2, 1.25),
            ],
            &[1.0, 0.25, -2.0],
        );
    }

    #[test]
    fn handles_zero_diagonal_rows_like_vsource_branches() {
        // MNA with an ideal source: the branch row/column has a
        // structurally zero diagonal, so pivoting is mandatory.
        check_against_dense(
            3,
            &[
                (0, 0, 1e-3),
                (0, 2, 1.0),
                (2, 0, 1.0),
                (0, 1, -1e-3),
                (1, 0, -1e-3),
                (1, 1, 2e-3),
            ],
            &[0.0, 1e-3, 5.0],
        );
    }

    #[test]
    fn pattern_reuse_replays_new_values() {
        let n = 4;
        let stamps = |g: f64| {
            vec![
                (0usize, 0usize, 1.0 + g),
                (0, 1, -g),
                (1, 0, -g),
                (1, 1, 2.0 * g + 0.5),
                (1, 2, -g),
                (2, 1, -g),
                (2, 2, g + 0.25),
                (3, 3, 1.0),
                (0, 3, 0.125),
            ]
        };
        let b = [1.0, -1.0, 0.5, 2.0];
        let mut sp = SparseLu::new(n);
        for round in 0..5 {
            let g = 0.5 + round as f64;
            sp.begin();
            for &(r, c, v) in &stamps(g) {
                sp.add(r, c, v);
            }
            sp.factor().unwrap();
            let mut x = b.to_vec();
            sp.solve_in_place(&mut x);

            let mut dense = Matrix::zeros(n, n);
            for &(r, c, v) in &stamps(g) {
                dense.add(r, c, v);
            }
            let reference = dense_solve(dense, &b).unwrap();
            for (p, q) in reference.iter().zip(&x) {
                assert!((p - q).abs() < 1e-12, "round {round}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn refactor_falls_back_when_pivot_order_goes_stale() {
        // First factor pivots column 0 on row 1 (|3| > |1|); the second
        // assembly flips the magnitudes so the recorded pivot is 1e4×
        // smaller than the new candidate — refactor must bail and a full
        // re-pivoting factor must still produce the right answer.
        let b = [1.0, 2.0];
        let mut sp = SparseLu::new(2);
        sp.begin();
        sp.add(0, 0, 1.0);
        sp.add(0, 1, 2.0);
        sp.add(1, 0, 3.0);
        sp.add(1, 1, 4.0);
        sp.factor().unwrap();
        let mut x = b.to_vec();
        sp.solve_in_place(&mut x);
        // [[1,2],[3,4]]·x = [1,2] → x = [0, 0.5]
        assert!(x[0].abs() < 1e-12 && (x[1] - 0.5).abs() < 1e-12, "{x:?}");

        sp.begin();
        sp.add(0, 0, 10.0);
        sp.add(0, 1, 2.0);
        sp.add(1, 0, 1e-3);
        sp.add(1, 1, 4.0);
        sp.factor().unwrap();
        let mut x = [24.0, 4.0003];
        sp.solve_in_place(&mut x);
        let mut dense = Matrix::zeros(2, 2);
        dense.add(0, 0, 10.0);
        dense.add(0, 1, 2.0);
        dense.add(1, 0, 1e-3);
        dense.add(1, 1, 4.0);
        let reference = dense_solve(dense, &[24.0, 4.0003]).unwrap();
        for (p, q) in reference.iter().zip(&x) {
            assert!((p - q).abs() < 1e-12, "{p} vs {q}");
        }
    }

    #[test]
    fn diverged_stamp_sequence_rebuilds_pattern() {
        let b = [1.0, 2.0, 3.0];
        let mut sp = SparseLu::new(3);
        sp.begin();
        sp.add(0, 0, 2.0);
        sp.add(1, 1, 3.0);
        sp.add(2, 2, 4.0);
        sp.factor().unwrap();
        let mut x = b.to_vec();
        sp.solve_in_place(&mut x);
        assert!((x[0] - 0.5).abs() < 1e-12);

        // New assembly with a different sequence and an extra entry.
        sp.begin();
        sp.add(1, 1, 3.0);
        sp.add(0, 0, 2.0);
        sp.add(0, 1, -1.0);
        sp.add(2, 2, 4.0);
        sp.factor().unwrap();
        let mut x = b.to_vec();
        sp.solve_in_place(&mut x);
        let mut dense = Matrix::zeros(3, 3);
        dense.add(1, 1, 3.0);
        dense.add(0, 0, 2.0);
        dense.add(0, 1, -1.0);
        dense.add(2, 2, 4.0);
        let reference = dense_solve(dense, &b).unwrap();
        for (p, q) in reference.iter().zip(&x) {
            assert!((p - q).abs() < 1e-12, "{p} vs {q}");
        }
    }

    #[test]
    fn structurally_singular_reports_column() {
        // Column 1 has no entries at all.
        let mut sp = SparseLu::new(3);
        sp.begin();
        sp.add(0, 0, 1.0);
        sp.add(2, 2, 1.0);
        sp.add(0, 2, 0.5);
        assert_eq!(sp.factor(), Err(SimError::SingularMatrix { column: 1 }));
    }

    #[test]
    fn detects_singular_at_large_scale_like_dense() {
        let mut sp = SparseLu::new(2);
        sp.begin();
        sp.add(0, 0, 1e8);
        sp.add(0, 1, 2e8);
        sp.add(1, 0, 3e8);
        sp.add(1, 1, 6e8 + 1e-6);
        assert!(matches!(sp.factor(), Err(SimError::SingularMatrix { .. })));
    }

    #[test]
    fn diagonal_preference_avoids_pivot_stranding() {
        // Newton Jacobian of a 12-stage CMOS inverter chain at a
        // gmin-rescue rung, captured from the engine. Pure partial
        // pivoting steals row 2's natural pivot (column 2's off-diagonal
        // is 1.05× its diagonal), strands row 2 until the last
        // elimination step, and lands on a catastrophically cancelled
        // ~5e-17 Schur entry — a spurious singular verdict on a matrix
        // the dense path factors. Diagonal-preference threshold pivoting
        // must keep row 2 paired with column 2 and factor it.
        let stamps: &[(usize, usize, f64)] = &[
            (0, 0, 0.06359240667920467),
            (2, 0, 0.0),
            (3, 0, -0.0005461881826892369),
            (4, 0, -0.0007963339066800706),
            (5, 0, -0.0011789902425160038),
            (6, 0, -0.001732513642059966),
            (7, 0, -0.0025237565619911848),
            (8, 0, -0.0036332583373447657),
            (9, 0, -0.0051530622530034376),
            (10, 0, -0.007180974487468129),
            (11, 0, -0.009818655776366172),
            (12, 0, -0.01319624415311309),
            (13, 0, -0.017732429135972613),
            (14, 0, 1.0),
            (0, 1, 0.0),
            (1, 1, 0.0001),
            (2, 1, 0.0),
            (15, 1, 1.0),
            (0, 2, -0.0005269881826892368),
            (2, 2, 0.0005),
            (3, 2, 0.0005269881826892368),
            (0, 3, -0.0007882316370549976),
            (3, 3, 0.00011920000000000001),
            (4, 3, 0.0007690316370549976),
            (0, 4, -0.0011662666397694666),
            (4, 4, 0.00012730226962507298),
            (5, 4, 0.0011389643701443936),
            (0, 5, -0.0017146489779710252),
            (5, 5, 0.00014002587237161034),
            (6, 5, 0.001674623105599415),
            (0, 6, -0.0024992233761252022),
            (6, 6, 0.000157890536460551),
            (7, 6, 0.0024413328396646512),
            (0, 7, -0.0036008174827751446),
            (7, 7, 0.00018242372232653368),
            (8, 7, 0.003518393760448611),
            (0, 8, -0.005112192558799465),
            (8, 8, 0.0002148645768961548),
            (9, 8, 0.00499732798190331),
            (0, 9, -0.0071324135800083675),
            (9, 9, 0.00025573427110012756),
            (10, 9, 0.00697667930890824),
            (0, 10, -0.009764505197743434),
            (10, 10, 0.0003042951785598896),
            (11, 10, 0.009959738495211017),
            (0, 11, -0.013138907994343372),
            (11, 11, 0.0003588389122668803),
            (12, 11, 0.015165521653874383),
            (0, 12, -0.017663178095821453),
            (12, 12, 0.0004242704121514973),
            (13, 12, 0.02309958535023213),
            (0, 13, -0.0003850329561035009),
            (13, 13, 0.0005205887655440257),
            (0, 14, 1.0),
            (1, 15, 1.0),
        ];
        let b: Vec<f64> = (0..16).map(|i| 0.25 * (i as f64) - 1.0).collect();
        check_against_dense(16, stamps, &b);
    }

    #[test]
    fn random_diagonally_dominant_systems_match_dense() {
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 10_000) as f64 / 10_000.0
        };
        for &n in &[5usize, 17, 40, 90] {
            let mut stamps = Vec::new();
            let mut b = vec![0.0; n];
            for (r, rhs) in b.iter_mut().enumerate() {
                // A few off-diagonal couplings per row, diagonally dominant.
                for _ in 0..3 {
                    let c = (next() * n as f64) as usize % n;
                    if c != r {
                        let g = 0.01 + next();
                        stamps.push((r, c, -g));
                        stamps.push((r, r, g));
                    }
                }
                stamps.push((r, r, 1.0 + next()));
                *rhs = next() - 0.5;
            }
            check_against_dense(n, &stamps, &b);
        }
    }

    #[test]
    fn empty_system_is_trivial() {
        let mut sp = SparseLu::new(0);
        sp.begin();
        sp.factor().unwrap();
        let mut x: Vec<f64> = vec![];
        sp.solve_in_place(&mut x);
    }
}
