//! Convergence-rescue policies and logs.
//!
//! Newton–Raphson on stiff MOS circuits can fail for reasons that have
//! nothing to do with the circuit being unsolvable: a starved iteration
//! budget, a hard nonlinearity at the operating point, a source
//! discontinuity crossing a step. Instead of surfacing
//! [`SimError::NoConvergence`](crate::error::SimError::NoConvergence)
//! immediately, the engine can climb a **rescue ladder** — gmin stepping,
//! then source stepping, then timestep reduction with exponential
//! backoff — controlled by a [`RecoveryPolicy`] and reported through a
//! [`RecoveryLog`] so callers can see what it took to converge.
//!
//! The entry points are
//! [`Simulator::op_recovered`](crate::engine::Simulator::op_recovered)
//! and
//! [`Simulator::transient_recovered`](crate::engine::Simulator::transient_recovered).

use std::fmt;

/// One rung of the convergence-rescue ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RescueStrategy {
    /// Re-solve with a large gmin shunt, relaxing it geometrically back
    /// to the nominal value (continuation in conductance).
    GminStepping,
    /// Ramp all independent sources from zero to full value, re-solving
    /// at each scale (continuation in excitation). DC only.
    SourceStepping,
    /// Halve the transient sub-step beyond the ordinary halving budget,
    /// with a boosted Newton iteration budget. Transient only.
    TimestepReduction,
}

impl fmt::Display for RescueStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RescueStrategy::GminStepping => "gmin stepping",
            RescueStrategy::SourceStepping => "source stepping",
            RescueStrategy::TimestepReduction => "timestep reduction",
        };
        f.write_str(name)
    }
}

/// Controls whether and how hard the engine fights non-convergence.
///
/// The default policy is enabled with budgets that rescue the common
/// pathologies (starved iteration budgets, stiff operating points)
/// without letting a truly broken circuit burn unbounded time. Use
/// [`RecoveryPolicy::disabled`] to reproduce the bare solver behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Master switch; when `false` every rescue rung is skipped and the
    /// original error surfaces unchanged.
    pub enabled: bool,
    /// Newton iteration budget used *inside rescue rungs*, independent of
    /// [`Options::max_nr_iterations`](crate::engine::Options::max_nr_iterations)
    /// so a starved base budget can still be rescued.
    pub nr_iterations: usize,
    /// Initial gmin for the gmin-stepping rung (S).
    pub gmin_start: f64,
    /// Factor applied to gmin per rung step (must be in `(0, 1)`).
    pub gmin_reduction: f64,
    /// Number of source-ramp points for the source-stepping rung.
    pub source_steps: usize,
    /// Extra sub-step halvings allowed beyond
    /// [`Options::max_step_halvings`](crate::engine::Options::max_step_halvings)
    /// during the timestep-reduction rung.
    pub max_extra_halvings: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            enabled: true,
            nr_iterations: 200,
            gmin_start: 1e-2,
            gmin_reduction: 1e-2,
            source_steps: 8,
            max_extra_halvings: 8,
        }
    }
}

impl RecoveryPolicy {
    /// A policy that never rescues: failures surface exactly as the bare
    /// solver reports them.
    pub fn disabled() -> RecoveryPolicy {
        RecoveryPolicy {
            enabled: false,
            ..RecoveryPolicy::default()
        }
    }
}

/// One attempted rescue rung and its outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryAttempt {
    /// The rung that was climbed.
    pub strategy: RescueStrategy,
    /// Whether this rung produced a converged solution.
    pub succeeded: bool,
    /// Simulation time at which the rescue ran (seconds; `0.0` for DC).
    pub time: f64,
}

/// Per-run record of every rescue attempt, in the order tried.
///
/// An empty log means the run converged without rescue.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryLog {
    attempts: Vec<RecoveryAttempt>,
}

impl RecoveryLog {
    /// Creates an empty log.
    pub fn new() -> RecoveryLog {
        RecoveryLog::default()
    }

    /// Records one rescue attempt.
    pub fn record(&mut self, strategy: RescueStrategy, succeeded: bool, time: f64) {
        self.attempts.push(RecoveryAttempt {
            strategy,
            succeeded,
            time,
        });
    }

    /// Every attempt, in the order tried.
    pub fn attempts(&self) -> &[RecoveryAttempt] {
        &self.attempts
    }

    /// `true` when at least one rescue rung ran (the base solve failed
    /// somewhere).
    pub fn needed_rescue(&self) -> bool {
        !self.attempts.is_empty()
    }

    /// The strategy of the last successful attempt, if any.
    pub fn succeeded_with(&self) -> Option<RescueStrategy> {
        self.attempts
            .iter()
            .rev()
            .find(|a| a.succeeded)
            .map(|a| a.strategy)
    }

    /// The distinct strategies tried, in first-tried order.
    pub fn strategies_tried(&self) -> Vec<RescueStrategy> {
        let mut seen = Vec::new();
        for a in &self.attempts {
            if !seen.contains(&a.strategy) {
                seen.push(a.strategy);
            }
        }
        seen
    }

    /// Merges another log's attempts onto the end of this one.
    pub fn absorb(&mut self, other: RecoveryLog) {
        self.attempts.extend(other.attempts);
    }
}

impl fmt::Display for RecoveryLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.attempts.is_empty() {
            return f.write_str("no rescue needed");
        }
        for (i, a) in self.attempts.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(
                f,
                "{} at t={:.3e}: {}",
                a.strategy,
                a.time,
                if a.succeeded { "converged" } else { "failed" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_enabled_and_bounded() {
        let p = RecoveryPolicy::default();
        assert!(p.enabled);
        assert!(p.nr_iterations > 0);
        assert!(p.gmin_start > 0.0);
        assert!(p.gmin_reduction > 0.0 && p.gmin_reduction < 1.0);
        assert!(p.source_steps > 0);
        assert!(!RecoveryPolicy::disabled().enabled);
    }

    #[test]
    fn log_tracks_attempts_and_winner() {
        let mut log = RecoveryLog::new();
        assert!(!log.needed_rescue());
        assert_eq!(log.succeeded_with(), None);
        log.record(RescueStrategy::GminStepping, false, 0.0);
        log.record(RescueStrategy::SourceStepping, true, 0.0);
        assert!(log.needed_rescue());
        assert_eq!(log.succeeded_with(), Some(RescueStrategy::SourceStepping));
        assert_eq!(
            log.strategies_tried(),
            vec![RescueStrategy::GminStepping, RescueStrategy::SourceStepping]
        );
        let text = log.to_string();
        assert!(text.contains("gmin stepping"), "{text}");
        assert!(text.contains("source stepping"), "{text}");
    }

    #[test]
    fn strategies_tried_deduplicates() {
        let mut log = RecoveryLog::new();
        log.record(RescueStrategy::TimestepReduction, false, 1e-9);
        log.record(RescueStrategy::TimestepReduction, true, 1e-9);
        assert_eq!(
            log.strategies_tried(),
            vec![RescueStrategy::TimestepReduction]
        );
        assert_eq!(
            log.succeeded_with(),
            Some(RescueStrategy::TimestepReduction)
        );
    }

    #[test]
    fn absorb_concatenates() {
        let mut a = RecoveryLog::new();
        a.record(RescueStrategy::GminStepping, true, 0.0);
        let mut b = RecoveryLog::new();
        b.record(RescueStrategy::TimestepReduction, true, 2e-9);
        a.absorb(b);
        assert_eq!(a.attempts().len(), 2);
    }

    #[test]
    fn empty_log_displays_cleanly() {
        assert_eq!(RecoveryLog::new().to_string(), "no rescue needed");
    }
}
