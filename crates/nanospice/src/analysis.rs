//! High-level measurement helpers: drive a switch-level network with an
//! input edge and measure propagation delay and output transition time —
//! exactly the procedure the paper uses to calibrate and judge the
//! switch-level delay models against circuit simulation.

use crate::circuit::{elaborate, Elaboration, MosModelSet};
use crate::devices::Waveshape;
use crate::engine::{Options, Simulator, TranResult};
use crate::error::SimError;
use crate::waveform::Waveform;
use mosnet::units::Seconds;
use mosnet::{Network, NodeId};
use std::collections::HashMap;

/// A transient simulation of a switch-level network, queryable by
/// `mosnet` node id or name.
#[derive(Debug, Clone)]
pub struct NetSim {
    elaboration: Elaboration,
    result: TranResult,
}

impl NetSim {
    /// Runs a transient simulation of `net` with the given input drives.
    ///
    /// Inputs not mentioned in `drives` are held at 0 V.
    ///
    /// # Errors
    /// Propagates solver errors ([`SimError::NoConvergence`],
    /// [`SimError::SingularMatrix`], [`SimError::BadParameter`]).
    pub fn run(
        net: &Network,
        models: &MosModelSet,
        drives: &HashMap<NodeId, Waveshape>,
        tstop: Seconds,
        dt: Seconds,
    ) -> Result<NetSim, SimError> {
        Self::run_with_options(net, models, drives, tstop, dt, Options::default())
    }

    /// Like [`NetSim::run`] with explicit solver options.
    ///
    /// # Errors
    /// See [`NetSim::run`].
    pub fn run_with_options(
        net: &Network,
        models: &MosModelSet,
        drives: &HashMap<NodeId, Waveshape>,
        tstop: Seconds,
        dt: Seconds,
        options: Options,
    ) -> Result<NetSim, SimError> {
        let elaboration = elaborate(net, models, drives);
        let sim = Simulator::with_options(&elaboration.circuit, options);
        let result = sim.transient(tstop.value(), dt.value())?;
        Ok(NetSim {
            elaboration,
            result,
        })
    }

    /// The waveform of a network node.
    pub fn voltage(&self, node: NodeId) -> Waveform {
        self.result.voltage(self.elaboration.terminal(node))
    }

    /// The raw transient result.
    pub fn result(&self) -> &TranResult {
        &self.result
    }
}

/// Solves the DC operating point of a network with the given input levels
/// (volts; unlisted inputs held at 0 V) and returns every node's settled
/// voltage, indexed by `NodeId`.
///
/// # Errors
/// Propagates solver failures ([`SimError::NoConvergence`],
/// [`SimError::SingularMatrix`]).
pub fn operating_voltages(
    net: &Network,
    models: &MosModelSet,
    levels: &HashMap<NodeId, f64>,
) -> Result<Vec<f64>, SimError> {
    let drives: HashMap<NodeId, Waveshape> = net
        .inputs()
        .into_iter()
        .map(|n| (n, Waveshape::Dc(levels.get(&n).copied().unwrap_or(0.0))))
        .collect();
    let elaboration = elaborate(net, models, &drives);
    let sim = Simulator::new(&elaboration.circuit);
    let x = sim.op()?;
    Ok((0..net.node_count())
        .map(
            |i| match elaboration.terminal(mosnet::NodeId::from_index(i)) {
                crate::devices::NodeRef::Ground => 0.0,
                crate::devices::NodeRef::Node(k) => x[k],
            },
        )
        .collect())
}

/// Sweeps one input across `values` (volts), DC-solving at every point,
/// and returns `output`'s voltage per point — the classic transfer-curve
/// analysis.
///
/// Other inputs are held at their `statics` level (unlisted inputs at
/// 0 V). Each point reuses the circuit elaboration; convergence of every
/// point is required.
///
/// # Errors
/// Propagates solver failures; returns [`SimError::BadParameter`] for an
/// empty sweep.
pub fn dc_sweep(
    net: &Network,
    models: &MosModelSet,
    swept: NodeId,
    values: &[f64],
    statics: &HashMap<NodeId, f64>,
    output: NodeId,
) -> Result<Vec<f64>, SimError> {
    if values.is_empty() {
        return Err(SimError::BadParameter {
            message: "dc sweep needs at least one point".into(),
        });
    }
    let mut curve = Vec::with_capacity(values.len());
    for &v in values {
        let mut levels = statics.clone();
        levels.insert(swept, v);
        let voltages = operating_voltages(net, models, &levels)?;
        curve.push(voltages[output.index()]);
    }
    Ok(curve)
}

/// The input voltage at which `output` crosses `vdd/2` on a rising input
/// sweep — the inverter switching threshold.
///
/// # Errors
/// Propagates [`dc_sweep`] errors; returns [`SimError::BadParameter`]
/// when the output never crosses midrail within the sweep.
pub fn switching_threshold(
    net: &Network,
    models: &MosModelSet,
    input: NodeId,
    output: NodeId,
    points: usize,
) -> Result<f64, SimError> {
    let values: Vec<f64> = (0..points)
        .map(|i| models.vdd * i as f64 / (points - 1).max(1) as f64)
        .collect();
    let curve = dc_sweep(net, models, input, &values, &HashMap::new(), output)?;
    let mid = models.vdd / 2.0;
    for w in 0..curve.len() - 1 {
        let (a, b) = (curve[w], curve[w + 1]);
        if (a >= mid && b < mid) || (a <= mid && b > mid) {
            let frac = (mid - a) / (b - a);
            return Ok(values[w] + frac * (values[w + 1] - values[w]));
        }
    }
    Err(SimError::BadParameter {
        message: "output never crosses midrail in the sweep".into(),
    })
}

/// Which transition to apply/observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Low-to-high transition.
    Rising,
    /// High-to-low transition.
    Falling,
}

impl Edge {
    /// `true` for [`Edge::Rising`].
    #[inline]
    pub fn is_rising(self) -> bool {
        self == Edge::Rising
    }

    /// The opposite edge.
    #[inline]
    pub fn inverted(self) -> Edge {
        match self {
            Edge::Rising => Edge::Falling,
            Edge::Falling => Edge::Rising,
        }
    }
}

/// Specification of one delay measurement.
#[derive(Debug, Clone)]
pub struct TransitionSpec {
    /// The switching input.
    pub input: NodeId,
    /// Direction of the input edge.
    pub input_edge: Edge,
    /// Input 10–90% transition time (0 for an ideal step); the edge is a
    /// linear ramp sized so its 10–90% interval equals this value.
    pub input_transition: Seconds,
    /// The observed output.
    pub output: NodeId,
    /// Expected direction of the output transition.
    pub output_edge: Edge,
    /// Static voltage levels for the non-switching inputs (volts).
    pub statics: HashMap<NodeId, f64>,
    /// The output's settled final voltage, when known (e.g. from a DC
    /// operating point at the final input vector). Supplying it makes the
    /// 50% measurement immune to slow settling tails — important for
    /// threshold-dropped pass-transistor outputs. `None` falls back to
    /// the last simulated sample.
    pub expected_final: Option<f64>,
}

/// A measured input-to-output transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayMeasurement {
    /// 50%-of-input to 50%-of-output propagation delay.
    pub delay: Seconds,
    /// 10–90% output transition time (of the observed swing).
    pub output_transition: Seconds,
    /// Output voltage before the edge.
    pub v_initial: f64,
    /// Output voltage at the end of the simulation.
    pub v_final: f64,
}

/// Fraction of `tstop` spent settling before the input edge fires.
const SETTLE_FRACTION: f64 = 0.25;

/// Drives `spec.input` with a ramp and measures the delay to `spec.output`.
///
/// The input sits at its initial level for the first quarter of `tstop`
/// (letting the circuit settle), then ramps over `spec.input_transition`.
/// Delay is measured from the input's 50% point to the output's 50% point
/// of its *observed* swing (so ratioed-logic levels are handled correctly);
/// the output transition time is the 10–90% interval of that swing.
///
/// # Errors
/// Returns [`SimError::BadParameter`] if the output never completes the
/// expected transition within `tstop`, plus any solver error.
pub fn measure_transition(
    net: &Network,
    models: &MosModelSet,
    spec: &TransitionSpec,
    tstop: Seconds,
    dt: Seconds,
) -> Result<DelayMeasurement, SimError> {
    let t_edge = tstop.value() * SETTLE_FRACTION;
    let (v0, v1) = match spec.input_edge {
        Edge::Rising => (0.0, models.vdd),
        Edge::Falling => (models.vdd, 0.0),
    };
    // A linear 0–100% ramp of length T has a 10–90% interval of 0.8·T.
    let full_ramp = spec.input_transition.value() / 0.8;
    let mut drives: HashMap<NodeId, Waveshape> = spec
        .statics
        .iter()
        .map(|(&n, &v)| (n, Waveshape::Dc(v)))
        .collect();
    drives.insert(spec.input, Waveshape::ramp(v0, v1, t_edge, full_ramp));

    let sim = NetSim::run(net, models, &drives, tstop, dt)?;
    let out = sim.voltage(spec.output);

    let t_in_50 = t_edge + 0.5 * full_ramp;
    let v_initial = out.value_at(t_edge);
    let v_final = spec.expected_final.unwrap_or_else(|| out.last());
    let swing = v_final - v_initial;
    let expected_sign = if spec.output_edge.is_rising() {
        1.0
    } else {
        -1.0
    };
    if swing * expected_sign <= 0.0 || swing.abs() < 0.1 * models.vdd {
        return Err(SimError::BadParameter {
            message: format!(
                "output did not complete the expected {:?} transition \
                 (swing {swing:.3} V)",
                spec.output_edge
            ),
        });
    }
    let midpoint = v_initial + 0.5 * swing;
    let t_out_50 = out
        .crossing(midpoint, spec.output_edge.is_rising(), t_edge)
        .ok_or_else(|| SimError::BadParameter {
            message: "output never crossed its midpoint".into(),
        })?;
    let transition = out
        .transition_time(v_initial, v_final, 0.1, 0.9, t_edge)
        // With a supplied asymptote the 90% level may lie beyond the
        // simulated window; fall back to the observed swing for the
        // transition-time measurement only.
        .or_else(|| out.transition_time(v_initial, out.last(), 0.1, 0.9, t_edge))
        .ok_or_else(|| SimError::BadParameter {
            message: "output never completed its 10-90% transition".into(),
        })?;

    Ok(DelayMeasurement {
        delay: Seconds(t_out_50 - t_in_50),
        output_transition: Seconds(transition),
        v_initial,
        v_final,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosnet::generators::{inverter, inverter_chain, Style};
    use mosnet::units::Farads;

    fn spec_for_inverter(net: &Network, edge: Edge) -> TransitionSpec {
        TransitionSpec {
            input: net.node_by_name("in").expect("in"),
            input_edge: edge,
            input_transition: Seconds::from_nanos(0.5),
            output: net.node_by_name("out").expect("out"),
            output_edge: edge.inverted(),
            statics: HashMap::new(),
            expected_final: None,
        }
    }

    #[test]
    fn cmos_inverter_delay_is_positive_and_sane() {
        let net = inverter(Style::Cmos, Farads::from_femto(100.0));
        let models = MosModelSet::default();
        let m = measure_transition(
            &net,
            &models,
            &spec_for_inverter(&net, Edge::Rising),
            Seconds::from_nanos(20.0),
            Seconds::from_picos(20.0),
        )
        .unwrap();
        assert!(m.delay.value() > 0.0);
        assert!(m.delay.nanos() < 5.0, "delay {} ns", m.delay.nanos());
        assert!(m.output_transition.value() > 0.0);
        // Full CMOS swing.
        assert!(m.v_initial > 4.5);
        assert!(m.v_final < 0.5);
    }

    #[test]
    fn heavier_load_means_longer_delay() {
        let models = MosModelSet::default();
        let light = inverter(Style::Cmos, Farads::from_femto(50.0));
        let heavy = inverter(Style::Cmos, Farads::from_femto(400.0));
        let d_light = measure_transition(
            &light,
            &models,
            &spec_for_inverter(&light, Edge::Rising),
            Seconds::from_nanos(30.0),
            Seconds::from_picos(30.0),
        )
        .unwrap()
        .delay;
        let d_heavy = measure_transition(
            &heavy,
            &models,
            &spec_for_inverter(&heavy, Edge::Rising),
            Seconds::from_nanos(30.0),
            Seconds::from_picos(30.0),
        )
        .unwrap()
        .delay;
        assert!(
            d_heavy.value() > 2.0 * d_light.value(),
            "heavy {} vs light {}",
            d_heavy.nanos(),
            d_light.nanos()
        );
    }

    #[test]
    fn slower_input_means_longer_delay() {
        // The core slope-model phenomenon: input transition time matters.
        let models = MosModelSet::default();
        let net = inverter(Style::Cmos, Farads::from_femto(100.0));
        let mut fast_spec = spec_for_inverter(&net, Edge::Rising);
        fast_spec.input_transition = Seconds::from_picos(100.0);
        let mut slow_spec = spec_for_inverter(&net, Edge::Rising);
        slow_spec.input_transition = Seconds::from_nanos(8.0);
        let fast = measure_transition(
            &net,
            &models,
            &fast_spec,
            Seconds::from_nanos(40.0),
            Seconds::from_picos(40.0),
        )
        .unwrap();
        let slow = measure_transition(
            &net,
            &models,
            &slow_spec,
            Seconds::from_nanos(40.0),
            Seconds::from_picos(40.0),
        )
        .unwrap();
        assert!(
            slow.delay.value() > fast.delay.value(),
            "slow {} vs fast {}",
            slow.delay.nanos(),
            fast.delay.nanos()
        );
    }

    #[test]
    fn two_stage_chain_output_follows_input_direction() {
        // Two inversions: rising input ⇒ rising output.
        let net = inverter_chain(Style::Cmos, 2, 2.0, Farads::from_femto(100.0)).unwrap();
        let models = MosModelSet::default();
        let spec = TransitionSpec {
            input: net.node_by_name("in").unwrap(),
            input_edge: Edge::Rising,
            input_transition: Seconds::from_picos(500.0),
            output: net.node_by_name("out").unwrap(),
            output_edge: Edge::Rising,
            statics: HashMap::new(),
            expected_final: None,
        };
        let m = measure_transition(
            &net,
            &models,
            &spec,
            Seconds::from_nanos(30.0),
            Seconds::from_picos(30.0),
        )
        .unwrap();
        assert!(m.v_final > m.v_initial);
        assert!(m.delay.value() > 0.0);
    }

    #[test]
    fn wrong_expected_direction_is_detected() {
        let net = inverter(Style::Cmos, Farads::from_femto(100.0));
        let models = MosModelSet::default();
        let mut spec = spec_for_inverter(&net, Edge::Rising);
        spec.output_edge = Edge::Rising; // inverter actually falls
        assert!(matches!(
            measure_transition(
                &net,
                &models,
                &spec,
                Seconds::from_nanos(20.0),
                Seconds::from_picos(20.0),
            ),
            Err(SimError::BadParameter { .. })
        ));
    }

    #[test]
    fn dc_sweep_traces_monotone_inverter_transfer() {
        let net = inverter(Style::Cmos, Farads::from_femto(10.0));
        let models = MosModelSet::default();
        let input = net.node_by_name("in").unwrap();
        let output = net.node_by_name("out").unwrap();
        let values: Vec<f64> = (0..=20).map(|i| 0.25 * i as f64).collect();
        let curve = dc_sweep(&net, &models, input, &values, &HashMap::new(), output).unwrap();
        assert!(curve[0] > 4.9, "low input -> high output");
        assert!(curve[20] < 0.1, "high input -> low output");
        // Monotone non-increasing within solver tolerance (each point is
        // an independent Newton solve with ~5 mV reltol).
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 0.02, "{} then {}", w[0], w[1]);
        }
    }

    #[test]
    fn switching_threshold_is_midrange() {
        let net = inverter(Style::Cmos, Farads::from_femto(10.0));
        let models = MosModelSet::default();
        let input = net.node_by_name("in").unwrap();
        let output = net.node_by_name("out").unwrap();
        let vth = switching_threshold(&net, &models, input, output, 51).unwrap();
        // Our p-device is weaker per width (kp 10 vs 25 µA/V²) even at 2×
        // width, so the threshold sits below midrail but well inside the
        // transition region.
        assert!(vth > 1.0 && vth < 3.5, "threshold {vth}");
    }

    #[test]
    fn dc_sweep_rejects_empty() {
        let net = inverter(Style::Cmos, Farads::from_femto(10.0));
        let models = MosModelSet::default();
        let input = net.node_by_name("in").unwrap();
        let output = net.node_by_name("out").unwrap();
        assert!(matches!(
            dc_sweep(&net, &models, input, &[], &HashMap::new(), output),
            Err(SimError::BadParameter { .. })
        ));
    }

    #[test]
    fn nmos_inverter_ratioed_levels_are_handled() {
        let net = inverter(Style::Nmos, Farads::from_femto(100.0));
        let models = MosModelSet::default();
        let m = measure_transition(
            &net,
            &models,
            &spec_for_inverter(&net, Edge::Rising),
            Seconds::from_nanos(40.0),
            Seconds::from_picos(40.0),
        )
        .unwrap();
        // Low level is above ground (ratioed), high level near vdd.
        assert!(m.v_initial > 4.0);
        assert!(m.v_final < 1.5);
        assert!(m.delay.value() > 0.0);
    }
}
