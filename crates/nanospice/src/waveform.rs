//! Sampled waveforms and the timing measurements taken on them.

use crate::error::SimError;

/// A sampled waveform: strictly increasing times with one value each.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl Waveform {
    /// Creates a waveform from parallel time/value vectors.
    ///
    /// # Panics
    /// Panics if the vectors differ in length, are empty, or the times are
    /// not strictly increasing.
    pub fn new(times: Vec<f64>, values: Vec<f64>) -> Waveform {
        assert_eq!(times.len(), values.len(), "times/values length mismatch");
        assert!(!times.is_empty(), "waveform must have at least one sample");
        assert!(
            times.windows(2).all(|w| w[1] > w[0]),
            "times must be strictly increasing"
        );
        Waveform { times, values }
    }

    /// The sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when there is exactly one sample (a constant).
    pub fn is_empty(&self) -> bool {
        false // invariant: never empty
    }

    /// First sampled value.
    pub fn first(&self) -> f64 {
        self.values[0]
    }

    /// Last sampled value.
    pub fn last(&self) -> f64 {
        *self.values.last().expect("nonempty")
    }

    /// Linear interpolation at time `t`, clamped to the ends.
    pub fn value_at(&self, t: f64) -> f64 {
        if t <= self.times[0] {
            return self.values[0];
        }
        if t >= *self.times.last().expect("nonempty") {
            return self.last();
        }
        // Binary search for the bracketing interval.
        let idx = match self
            .times
            .binary_search_by(|probe| probe.partial_cmp(&t).expect("finite times"))
        {
            Ok(i) => return self.values[i],
            Err(i) => i,
        };
        let (t0, t1) = (self.times[idx - 1], self.times[idx]);
        let (v0, v1) = (self.values[idx - 1], self.values[idx]);
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// The first time the waveform crosses `level` in the given direction,
    /// at or after `t_start`, located by linear interpolation.
    pub fn crossing(&self, level: f64, rising: bool, t_start: f64) -> Option<f64> {
        for w in 0..self.times.len() - 1 {
            let (t0, t1) = (self.times[w], self.times[w + 1]);
            if t1 < t_start {
                continue;
            }
            let (v0, v1) = (self.values[w], self.values[w + 1]);
            let crosses = if rising {
                v0 < level && v1 >= level
            } else {
                v0 > level && v1 <= level
            };
            if crosses {
                let t = t0 + (t1 - t0) * (level - v0) / (v1 - v0);
                if t >= t_start {
                    return Some(t);
                }
            }
        }
        None
    }

    /// Transition time between the `lo_frac` and `hi_frac` fractions of the
    /// swing `v_from → v_to` (e.g. 0.1/0.9 for a 10–90% rise time). Works
    /// for both rising (`v_to > v_from`) and falling edges.
    ///
    /// Returns `None` if the waveform never completes the transition.
    pub fn transition_time(
        &self,
        v_from: f64,
        v_to: f64,
        lo_frac: f64,
        hi_frac: f64,
        t_start: f64,
    ) -> Option<f64> {
        let swing = v_to - v_from;
        let first_level = v_from + lo_frac * swing;
        let second_level = v_from + hi_frac * swing;
        let rising = swing > 0.0;
        let t1 = self.crossing(first_level, rising, t_start)?;
        let t2 = self.crossing(second_level, rising, t1)?;
        Some(t2 - t1)
    }

    /// 50%-to-50% delay from an input edge to this waveform's response.
    ///
    /// `t_input_50` is when the driving signal crossed its midpoint;
    /// `midpoint` is this waveform's 50% level; `rising` is the expected
    /// direction of this waveform's transition.
    pub fn delay_from(&self, t_input_50: f64, midpoint: f64, rising: bool) -> Option<f64> {
        self.crossing(midpoint, rising, t_input_50)
            .map(|t| t - t_input_50)
    }

    /// Maximum absolute difference against another waveform, compared on
    /// this waveform's grid.
    ///
    /// # Errors
    /// Returns [`SimError::BadParameter`] when the other waveform does not
    /// overlap this one's span at all.
    pub fn max_difference(&self, other: &Waveform) -> Result<f64, SimError> {
        let start = self.times[0].max(other.times[0]);
        let end = self
            .times
            .last()
            .expect("nonempty")
            .min(*other.times.last().expect("nonempty"));
        if end <= start {
            return Err(SimError::BadParameter {
                message: "waveforms do not overlap in time".into(),
            });
        }
        let mut max = 0.0f64;
        for (&t, &v) in self.times.iter().zip(&self.values) {
            if t < start || t > end {
                continue;
            }
            max = max.max((v - other.value_at(t)).abs());
        }
        Ok(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> Waveform {
        // 0 V at t=0 rising linearly to 5 V at t=10.
        Waveform::new(vec![0.0, 10.0], vec![0.0, 5.0])
    }

    #[test]
    fn interpolation_and_clamping() {
        let w = ramp();
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(5.0), 2.5);
        assert_eq!(w.value_at(20.0), 5.0);
        assert_eq!(w.first(), 0.0);
        assert_eq!(w.last(), 5.0);
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn rising_crossing() {
        let w = ramp();
        let t = w.crossing(2.5, true, 0.0).unwrap();
        assert!((t - 5.0).abs() < 1e-12);
        assert_eq!(w.crossing(2.5, false, 0.0), None);
    }

    #[test]
    fn falling_crossing() {
        let w = Waveform::new(vec![0.0, 10.0], vec![5.0, 0.0]);
        let t = w.crossing(2.5, false, 0.0).unwrap();
        assert!((t - 5.0).abs() < 1e-12);
    }

    #[test]
    fn crossing_respects_start_time() {
        // Two rising crossings of 0.5: at t=0.5 and t=2.5.
        let w = Waveform::new(vec![0.0, 1.0, 2.0, 3.0], vec![0.0, 1.0, 0.0, 1.0]);
        let first = w.crossing(0.5, true, 0.0).unwrap();
        assert!((first - 0.5).abs() < 1e-12);
        let second = w.crossing(0.5, true, 1.5).unwrap();
        assert!((second - 2.5).abs() < 1e-12);
    }

    #[test]
    fn rise_time_10_90() {
        let w = ramp();
        // 10% = 0.5 V at t=1; 90% = 4.5 V at t=9 ⇒ 8 time units.
        let tr = w.transition_time(0.0, 5.0, 0.1, 0.9, 0.0).unwrap();
        assert!((tr - 8.0).abs() < 1e-12);
    }

    #[test]
    fn fall_time_via_negative_swing() {
        let w = Waveform::new(vec![0.0, 10.0], vec![5.0, 0.0]);
        let tf = w.transition_time(5.0, 0.0, 0.1, 0.9, 0.0).unwrap();
        assert!((tf - 8.0).abs() < 1e-12);
    }

    #[test]
    fn incomplete_transition_is_none() {
        let w = Waveform::new(vec![0.0, 10.0], vec![0.0, 2.0]);
        assert!(w.transition_time(0.0, 5.0, 0.1, 0.9, 0.0).is_none());
    }

    #[test]
    fn delay_from_input_edge() {
        let w = ramp();
        // Input crossed 50% at t=1; output (this ramp) crosses 2.5 at t=5.
        let d = w.delay_from(1.0, 2.5, true).unwrap();
        assert!((d - 4.0).abs() < 1e-12);
    }

    #[test]
    fn max_difference_between_waveforms() {
        let a = ramp();
        let b = Waveform::new(vec![0.0, 10.0], vec![0.5, 5.0]);
        let d = a.max_difference(&b).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_overlapping_waveforms_error() {
        let a = Waveform::new(vec![0.0, 1.0], vec![0.0, 1.0]);
        let b = Waveform::new(vec![5.0, 6.0], vec![0.0, 1.0]);
        assert!(a.max_difference(&b).is_err());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_times() {
        let _ = Waveform::new(vec![0.0, 0.0], vec![1.0, 2.0]);
    }
}
