//! Simulator-side circuit representation and the mapping from a
//! switch-level [`mosnet::Network`].

use crate::devices::{
    Capacitor, Device, MosParams, Mosfet, NodeRef, Polarity, Resistor, VSource, Waveshape,
};
use crate::error::SimError;
use mosnet::{Network, NodeId, NodeKind, TransistorKind};
use std::collections::HashMap;

/// Physics parameters mapping a switch-level network onto level-1 devices —
/// the simulator's equivalent of a SPICE model card set.
#[derive(Debug, Clone, PartialEq)]
pub struct MosModelSet {
    /// n-enhancement parameters.
    pub nmos: MosParams,
    /// p-enhancement parameters.
    pub pmos: MosParams,
    /// Depletion-load parameters.
    pub depletion: MosParams,
    /// Gate-oxide capacitance per area (F/m²), lumped gate-to-ground.
    pub cox_per_area: f64,
    /// Source/drain diffusion capacitance per channel width (F/m).
    pub cj_per_width: f64,
    /// Supply voltage (V).
    pub vdd: f64,
}

impl Default for MosModelSet {
    /// A representative 4 µm-class process at VDD = 5 V.
    fn default() -> MosModelSet {
        MosModelSet {
            nmos: MosParams::nmos_default(),
            pmos: MosParams::pmos_default(),
            depletion: MosParams::depletion_default(),
            cox_per_area: 7e-4, // 0.7 fF/µm²
            cj_per_width: 1e-9, // 1 fF/µm of width
            vdd: 5.0,
        }
    }
}

impl MosModelSet {
    /// A faster scaled process (2 µm-class): double the transconductance,
    /// lower thresholds, thinner oxide. Used to show that the calibration
    /// pipeline adapts the slope model to a different technology without
    /// any code change.
    pub fn scaled_2um() -> MosModelSet {
        MosModelSet {
            nmos: MosParams {
                vt0: 0.8,
                kp: 50e-6,
                lambda: 0.03,
                polarity: Polarity::N,
            },
            pmos: MosParams {
                vt0: -0.8,
                kp: 20e-6,
                lambda: 0.03,
                polarity: Polarity::P,
            },
            depletion: MosParams {
                vt0: -2.5,
                kp: 50e-6,
                lambda: 0.03,
                polarity: Polarity::N,
            },
            cox_per_area: 1.1e-3, // 1.1 fF/µm²
            cj_per_width: 0.8e-9,
            vdd: 5.0,
        }
    }

    /// Parameters for a given switch-level device kind.
    pub fn params_for(&self, kind: TransistorKind) -> MosParams {
        match kind {
            TransistorKind::NEnhancement => self.nmos,
            TransistorKind::PEnhancement => self.pmos,
            TransistorKind::Depletion => self.depletion,
        }
    }
}

/// A flat simulator circuit: named unknown nodes plus devices.
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    names: Vec<String>,
    devices: Vec<Device>,
    n_branches: usize,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Circuit {
        Circuit::default()
    }

    /// Adds an unknown node with a diagnostic name.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeRef {
        let id = self.names.len();
        self.names.push(name.into());
        NodeRef::Node(id)
    }

    /// Number of unknown (non-ground) nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of voltage-source branch unknowns.
    #[inline]
    pub fn branch_count(&self) -> usize {
        self.n_branches
    }

    /// Total system dimension: nodes + branches.
    #[inline]
    pub fn unknown_count(&self) -> usize {
        self.names.len() + self.n_branches
    }

    /// Diagnostic name of node `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.node_count()`.
    pub fn node_name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Finds a node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeRef> {
        self.names.iter().position(|n| n == name).map(NodeRef::Node)
    }

    /// The devices in insertion order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Adds a resistor.
    ///
    /// # Panics
    /// Panics if `ohms` is not strictly positive and finite.
    pub fn add_resistor(&mut self, a: NodeRef, b: NodeRef, ohms: f64) {
        self.devices
            .push(Device::Resistor(Resistor::new(a, b, ohms)));
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    /// Panics if `farads` is not strictly positive and finite.
    pub fn add_capacitor(&mut self, a: NodeRef, b: NodeRef, farads: f64) {
        self.devices
            .push(Device::Capacitor(Capacitor::new(a, b, farads)));
    }

    /// Adds an independent voltage source; returns its branch index.
    pub fn add_vsource(&mut self, pos: NodeRef, neg: NodeRef, shape: Waveshape) -> usize {
        let branch = self.n_branches;
        self.n_branches += 1;
        self.devices.push(Device::VSource(VSource {
            pos,
            neg,
            shape,
            branch,
        }));
        branch
    }

    /// Adds a MOSFET.
    ///
    /// # Panics
    /// Panics if the geometry is not strictly positive and finite.
    pub fn add_mosfet(
        &mut self,
        d: NodeRef,
        g: NodeRef,
        s: NodeRef,
        w: f64,
        l: f64,
        params: MosParams,
    ) {
        self.devices
            .push(Device::Mosfet(Mosfet::new(d, g, s, w, l, params)));
    }

    /// Validates that every device terminal references an existing node.
    ///
    /// # Errors
    /// Returns [`SimError::BadNode`] for the first out-of-range reference.
    pub fn check(&self) -> Result<(), SimError> {
        let check_ref = |r: NodeRef| -> Result<(), SimError> {
            if let NodeRef::Node(i) = r {
                if i >= self.names.len() {
                    return Err(SimError::BadNode { index: i });
                }
            }
            Ok(())
        };
        for d in &self.devices {
            match d {
                Device::Resistor(r) => {
                    check_ref(r.a)?;
                    check_ref(r.b)?;
                }
                Device::Capacitor(c) => {
                    check_ref(c.a)?;
                    check_ref(c.b)?;
                }
                Device::VSource(v) => {
                    check_ref(v.pos)?;
                    check_ref(v.neg)?;
                }
                Device::Mosfet(m) => {
                    check_ref(m.d)?;
                    check_ref(m.g)?;
                    check_ref(m.s)?;
                }
            }
        }
        Ok(())
    }
}

/// The result of elaborating a switch-level network for simulation: the
/// circuit plus the node-id mapping.
#[derive(Debug, Clone)]
pub struct Elaboration {
    /// The simulator circuit.
    pub circuit: Circuit,
    /// For each `mosnet` node: its simulator terminal (ground maps to
    /// [`NodeRef::Ground`]).
    pub node_map: Vec<NodeRef>,
}

impl Elaboration {
    /// The simulator terminal corresponding to a network node.
    #[inline]
    pub fn terminal(&self, node: NodeId) -> NodeRef {
        self.node_map[node.index()]
    }
}

/// Minimum capacitance added to every floating unknown node, keeping the
/// transient system well conditioned (1 fF).
pub const C_MIN: f64 = 1e-15;

/// Elaborates a switch-level network into a simulator circuit.
///
/// * Ground maps to the reference; the power rail gets a DC source at
///   `models.vdd`.
/// * Every primary input is driven by a voltage source: the waveshape from
///   `drives` if present, otherwise DC 0.
/// * Explicit node capacitance becomes a capacitor to ground; every node
///   additionally receives gate capacitance (`cox·W·L`, lumped at the gate)
///   and diffusion capacitance (`cj·W` at source and drain) from the
///   transistors touching it, plus [`C_MIN`].
pub fn elaborate(
    net: &Network,
    models: &MosModelSet,
    drives: &HashMap<NodeId, Waveshape>,
) -> Elaboration {
    let mut circuit = Circuit::new();
    let mut node_map = vec![NodeRef::Ground; net.node_count()];
    // Accumulated capacitance to ground per mosnet node.
    let mut caps = vec![0.0f64; net.node_count()];

    for (id, node) in net.nodes() {
        match node.kind() {
            NodeKind::Ground => {
                node_map[id.index()] = NodeRef::Ground;
            }
            _ => {
                node_map[id.index()] = circuit.add_node(node.name());
                caps[id.index()] += node.capacitance().value();
            }
        }
    }

    // Rails and input drives.
    let power_ref = node_map[net.power().index()];
    circuit.add_vsource(power_ref, NodeRef::Ground, Waveshape::Dc(models.vdd));
    for input in net.inputs() {
        let shape = drives.get(&input).cloned().unwrap_or(Waveshape::Dc(0.0));
        circuit.add_vsource(node_map[input.index()], NodeRef::Ground, shape);
    }

    // Transistors plus their parasitic capacitances.
    for (_, t) in net.transistors() {
        let g = t.geometry();
        let params = models.params_for(t.kind());
        circuit.add_mosfet(
            node_map[t.drain().index()],
            node_map[t.gate().index()],
            node_map[t.source().index()],
            g.width.value(),
            g.length.value(),
            params,
        );
        caps[t.gate().index()] += models.cox_per_area * g.gate_area();
        caps[t.source().index()] += models.cj_per_width * g.width.value();
        caps[t.drain().index()] += models.cj_per_width * g.width.value();
    }

    for (id, _) in net.nodes() {
        if let NodeRef::Node(_) = node_map[id.index()] {
            let c = caps[id.index()] + C_MIN;
            circuit.add_capacitor(node_map[id.index()], NodeRef::Ground, c);
        }
    }

    Elaboration { circuit, node_map }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosnet::generators::{inverter, Style};
    use mosnet::units::Farads;

    #[test]
    fn circuit_bookkeeping() {
        let mut c = Circuit::new();
        let a = c.add_node("a");
        let b = c.add_node("b");
        c.add_resistor(a, b, 1000.0);
        c.add_capacitor(b, NodeRef::Ground, 1e-12);
        c.add_vsource(a, NodeRef::Ground, Waveshape::Dc(5.0));
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.branch_count(), 1);
        assert_eq!(c.unknown_count(), 3);
        assert_eq!(c.find_node("b"), Some(b));
        assert_eq!(c.find_node("zzz"), None);
        assert!(c.check().is_ok());
    }

    #[test]
    fn check_catches_bad_references() {
        let mut c = Circuit::new();
        let a = c.add_node("a");
        c.add_resistor(a, NodeRef::Node(99), 100.0);
        assert_eq!(c.check(), Err(SimError::BadNode { index: 99 }));
    }

    #[test]
    fn elaborates_inverter() {
        let net = inverter(Style::Cmos, Farads::from_femto(50.0));
        let models = MosModelSet::default();
        let elab = elaborate(&net, &models, &HashMap::new());
        // 3 unknown nodes (vdd, in, out), 2 sources (vdd + input)
        assert_eq!(elab.circuit.node_count(), 3);
        assert_eq!(elab.circuit.branch_count(), 2);
        assert_eq!(elab.terminal(net.ground()), NodeRef::Ground);
        assert!(matches!(elab.terminal(net.power()), NodeRef::Node(_)));
        // Devices: 2 MOSFETs + 2 sources + 3 caps.
        let mosfets = elab
            .circuit
            .devices()
            .iter()
            .filter(|d| matches!(d, Device::Mosfet(_)))
            .count();
        let caps = elab
            .circuit
            .devices()
            .iter()
            .filter(|d| matches!(d, Device::Capacitor(_)))
            .count();
        assert_eq!(mosfets, 2);
        assert_eq!(caps, 3);
        assert!(elab.circuit.check().is_ok());
    }

    #[test]
    fn parasitics_accumulate_on_output() {
        let net = inverter(Style::Cmos, Farads::from_femto(50.0));
        let models = MosModelSet::default();
        let elab = elaborate(&net, &models, &HashMap::new());
        let out = net.node_by_name("out").unwrap();
        let out_ref = elab.terminal(out);
        let cap = elab
            .circuit
            .devices()
            .iter()
            .find_map(|d| match d {
                Device::Capacitor(c) if c.a == out_ref => Some(c.farads),
                _ => None,
            })
            .expect("output has a capacitor");
        // 50 fF explicit + diffusion of both devices (8 µm + 16 µm widths
        // at 1 fF/µm = 24 fF) + C_MIN.
        let expect = 50e-15 + 24e-15 + C_MIN;
        assert!(
            (cap - expect).abs() < 1e-18,
            "got {cap:e}, expected {expect:e}"
        );
    }

    #[test]
    fn input_drive_is_honored() {
        let net = inverter(Style::Cmos, Farads::from_femto(10.0));
        let a = net.node_by_name("in").unwrap();
        let mut drives = HashMap::new();
        drives.insert(a, Waveshape::Dc(5.0));
        let elab = elaborate(&net, &MosModelSet::default(), &drives);
        let found = elab.circuit.devices().iter().any(|d| {
            matches!(d, Device::VSource(v)
                if v.pos == elab.terminal(a) && v.shape == Waveshape::Dc(5.0))
        });
        assert!(found);
    }
}
