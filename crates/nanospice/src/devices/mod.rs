//! Device models and their MNA companion stamps.

pub mod capacitor;
pub mod mosfet;
pub mod resistor;
pub mod vsource;

pub use capacitor::Capacitor;
pub use mosfet::{MosParams, Mosfet, Polarity};
pub use resistor::Resistor;
pub use vsource::{VSource, Waveshape};

/// A terminal reference: either the ground reference or an unknown node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeRef {
    /// The 0 V reference node (not an unknown).
    Ground,
    /// Unknown node with the given dense index.
    Node(usize),
}

impl NodeRef {
    /// The unknown index, or `None` for ground.
    #[inline]
    pub fn index(self) -> Option<usize> {
        match self {
            NodeRef::Ground => None,
            NodeRef::Node(i) => Some(i),
        }
    }

    /// Reads this terminal's voltage from the solution vector.
    #[inline]
    pub fn voltage(self, x: &[f64]) -> f64 {
        match self {
            NodeRef::Ground => 0.0,
            NodeRef::Node(i) => x[i],
        }
    }
}

/// Any simulator device.
#[derive(Debug, Clone, PartialEq)]
pub enum Device {
    /// Linear resistor.
    Resistor(Resistor),
    /// Linear capacitor.
    Capacitor(Capacitor),
    /// Independent voltage source (owns an extra branch-current unknown).
    VSource(VSource),
    /// Level-1 MOSFET.
    Mosfet(Mosfet),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ref_voltage_lookup() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(NodeRef::Ground.voltage(&x), 0.0);
        assert_eq!(NodeRef::Node(2).voltage(&x), 3.0);
        assert_eq!(NodeRef::Ground.index(), None);
        assert_eq!(NodeRef::Node(1).index(), Some(1));
    }
}
