//! Linear resistor.

use super::NodeRef;

/// A linear resistor between two terminals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resistor {
    /// First terminal.
    pub a: NodeRef,
    /// Second terminal.
    pub b: NodeRef,
    /// Resistance in ohms (must be positive).
    pub ohms: f64,
}

impl Resistor {
    /// Creates a resistor.
    ///
    /// # Panics
    /// Panics if `ohms` is not strictly positive and finite.
    pub fn new(a: NodeRef, b: NodeRef, ohms: f64) -> Resistor {
        assert!(
            ohms > 0.0 && ohms.is_finite(),
            "resistance must be positive, got {ohms}"
        );
        Resistor { a, b, ohms }
    }

    /// The conductance this device stamps.
    #[inline]
    pub fn conductance(&self) -> f64 {
        1.0 / self.ohms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conductance_is_reciprocal() {
        let r = Resistor::new(NodeRef::Node(0), NodeRef::Ground, 2000.0);
        assert!((r.conductance() - 5e-4).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn rejects_zero_resistance() {
        let _ = Resistor::new(NodeRef::Node(0), NodeRef::Ground, 0.0);
    }
}
