//! Independent voltage sources with DC, pulse, and piecewise-linear
//! waveshapes.

use super::NodeRef;

/// Time-dependent source value.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveshape {
    /// Constant value.
    Dc(f64),
    /// SPICE-style pulse.
    Pulse {
        /// Initial value.
        v0: f64,
        /// Pulsed value.
        v1: f64,
        /// Delay before the first edge (s).
        delay: f64,
        /// Rise time (s).
        rise: f64,
        /// Fall time (s).
        fall: f64,
        /// Pulse width at `v1` (s).
        width: f64,
        /// Repetition period (s); `f64::INFINITY` for a single pulse.
        period: f64,
    },
    /// Piecewise-linear `(time, value)` breakpoints, sorted by time; the
    /// value is held flat before the first and after the last point.
    Pwl(Vec<(f64, f64)>),
}

impl Waveshape {
    /// A single rising ramp from `v0` to `v1` starting at `delay` and
    /// lasting `rise` seconds — the canonical slope-model stimulus.
    pub fn ramp(v0: f64, v1: f64, delay: f64, rise: f64) -> Waveshape {
        if rise <= 0.0 {
            // A zero-length ramp is a step.
            return Waveshape::Pwl(vec![(delay, v0), (delay + 1e-15, v1)]);
        }
        Waveshape::Pwl(vec![(delay, v0), (delay + rise, v1)])
    }

    /// Evaluates the source at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveshape::Dc(v) => *v,
            Waveshape::Pulse {
                v0,
                v1,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v0;
                }
                let mut tau = t - delay;
                if period.is_finite() && *period > 0.0 {
                    tau %= period;
                }
                if tau < *rise {
                    if *rise <= 0.0 {
                        return *v1;
                    }
                    v0 + (v1 - v0) * tau / rise
                } else if tau < rise + width {
                    *v1
                } else if tau < rise + width + fall {
                    if *fall <= 0.0 {
                        return *v0;
                    }
                    v1 + (v0 - v1) * (tau - rise - width) / fall
                } else {
                    *v0
                }
            }
            Waveshape::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for pair in points.windows(2) {
                    let (t0, v0) = pair[0];
                    let (t1, v1) = pair[1];
                    if t <= t1 {
                        if t1 <= t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }
}

/// An independent voltage source from `pos` to `neg`.
#[derive(Debug, Clone, PartialEq)]
pub struct VSource {
    /// Positive terminal.
    pub pos: NodeRef,
    /// Negative terminal.
    pub neg: NodeRef,
    /// Source waveform.
    pub shape: Waveshape,
    /// Index of this source's branch-current unknown (set by the circuit).
    pub branch: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveshape::Dc(5.0);
        assert_eq!(w.value(0.0), 5.0);
        assert_eq!(w.value(1.0), 5.0);
    }

    #[test]
    fn pulse_phases() {
        let w = Waveshape::Pulse {
            v0: 0.0,
            v1: 5.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
            period: f64::INFINITY,
        };
        assert_eq!(w.value(0.5), 0.0); // before delay
        assert!((w.value(1.5) - 2.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.value(2.5), 5.0); // plateau
        assert!((w.value(4.5) - 2.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.value(10.0), 0.0); // after
    }

    #[test]
    fn pulse_repeats_with_period() {
        let w = Waveshape::Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 1.0,
            period: 2.0,
        };
        assert_eq!(w.value(0.5), 1.0);
        assert_eq!(w.value(1.5), 0.0);
        assert_eq!(w.value(2.5), 1.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveshape::Pwl(vec![(1.0, 0.0), (2.0, 10.0)]);
        assert_eq!(w.value(0.0), 0.0);
        assert!((w.value(1.5) - 5.0).abs() < 1e-12);
        assert_eq!(w.value(3.0), 10.0);
    }

    #[test]
    fn ramp_helper() {
        let w = Waveshape::ramp(0.0, 5.0, 1e-9, 2e-9);
        assert_eq!(w.value(0.0), 0.0);
        assert!((w.value(2e-9) - 2.5).abs() < 1e-12);
        assert_eq!(w.value(4e-9), 5.0);
        // Degenerate rise time becomes a step.
        let s = Waveshape::ramp(0.0, 5.0, 1e-9, 0.0);
        assert_eq!(s.value(0.999e-9), 0.0);
        assert_eq!(s.value(1.1e-9), 5.0);
    }

    #[test]
    fn empty_pwl_is_zero() {
        assert_eq!(Waveshape::Pwl(Vec::new()).value(1.0), 0.0);
    }
}
