//! Level-1 (Shichman–Hodges) MOSFET model with channel-length modulation.
//!
//! The model is evaluated symmetrically: when `Vds < 0` the source and
//! drain roles swap, and p-channel devices are handled by mirroring all
//! terminal voltages through zero. The linearization returned by
//! [`Mosfet::linearize`] is expressed directly in the original terminal
//! frame, so the engine can stamp it without caring about polarity or
//! terminal order.

use super::NodeRef;

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// n-channel: conducts for `Vgs > Vt`.
    N,
    /// p-channel: conducts for `Vgs < Vt` (with `Vt < 0`).
    P,
}

/// Level-1 model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosParams {
    /// Zero-bias threshold voltage (V). Negative for depletion n-devices
    /// and for p-devices.
    pub vt0: f64,
    /// Transconductance parameter `µ·Cox` (A/V²).
    pub kp: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Device polarity.
    pub polarity: Polarity,
}

impl MosParams {
    /// n-channel enhancement defaults for a 4 µm-class process at 5 V.
    pub fn nmos_default() -> MosParams {
        MosParams {
            vt0: 1.0,
            kp: 25e-6,
            lambda: 0.02,
            polarity: Polarity::N,
        }
    }

    /// p-channel enhancement defaults (hole mobility ≈ 0.4× electron).
    pub fn pmos_default() -> MosParams {
        MosParams {
            vt0: -1.0,
            kp: 10e-6,
            lambda: 0.02,
            polarity: Polarity::P,
        }
    }

    /// n-channel depletion defaults (the nMOS load device).
    pub fn depletion_default() -> MosParams {
        MosParams {
            vt0: -3.0,
            kp: 25e-6,
            lambda: 0.02,
            polarity: Polarity::N,
        }
    }
}

/// The device's contribution to the linearized system, in the original
/// `(d, g, s)` frame: `i_ds ≈ g_d·Vd + g_g·Vg + g_s·Vs + i_eq`, where
/// `i_ds` is the current flowing from drain to source through the channel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MosStamp {
    /// ∂i/∂Vd.
    pub g_d: f64,
    /// ∂i/∂Vg.
    pub g_g: f64,
    /// ∂i/∂Vs.
    pub g_s: f64,
    /// Current offset at the linearization point.
    pub i_eq: f64,
}

/// A level-1 MOSFET instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    /// Drain terminal.
    pub d: NodeRef,
    /// Gate terminal.
    pub g: NodeRef,
    /// Source terminal.
    pub s: NodeRef,
    /// Channel width (m).
    pub w: f64,
    /// Channel length (m).
    pub l: f64,
    /// Model parameters.
    pub params: MosParams,
}

impl Mosfet {
    /// Creates a MOSFET.
    ///
    /// # Panics
    /// Panics if `w` or `l` is not strictly positive and finite.
    pub fn new(d: NodeRef, g: NodeRef, s: NodeRef, w: f64, l: f64, params: MosParams) -> Mosfet {
        assert!(w > 0.0 && w.is_finite(), "width must be positive, got {w}");
        assert!(l > 0.0 && l.is_finite(), "length must be positive, got {l}");
        Mosfet {
            d,
            g,
            s,
            w,
            l,
            params,
        }
    }

    /// `β = kp · W / L`.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.params.kp * self.w / self.l
    }

    /// Drain current and derivatives for an *n-type* device with
    /// `vds >= 0`. Returns `(id, gm, gds)`.
    fn eval_n(&self, vgs: f64, vds: f64, vt: f64) -> (f64, f64, f64) {
        debug_assert!(vds >= 0.0);
        let beta = self.beta();
        let vov = vgs - vt;
        if vov <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        let lam = self.params.lambda;
        let clm = 1.0 + lam * vds;
        if vds < vov {
            // Linear (triode) region.
            let core = vov * vds - 0.5 * vds * vds;
            let id = beta * core * clm;
            let gm = beta * vds * clm;
            let gds = beta * (vov - vds) * clm + beta * core * lam;
            (id, gm, gds)
        } else {
            // Saturation.
            let core = 0.5 * vov * vov;
            let id = beta * core * clm;
            let gm = beta * vov * clm;
            let gds = beta * core * lam;
            (id, gm, gds)
        }
    }

    /// Channel current `i(d→s)` at the given terminal voltages.
    pub fn current(&self, vd: f64, vg: f64, vs: f64) -> f64 {
        self.linearize(vd, vg, vs).eval(vd, vg, vs)
    }

    /// Linearizes the device around `(vd, vg, vs)`; see [`MosStamp`].
    pub fn linearize(&self, vd: f64, vg: f64, vs: f64) -> MosStamp {
        // Mirror p-devices through zero: i_p(v) = -i_n(-v) with |vt|-style
        // parameters; derivatives are unchanged by the double negation.
        let (vd_e, vg_e, vs_e, sign) = match self.params.polarity {
            Polarity::N => (vd, vg, vs, 1.0),
            Polarity::P => (-vd, -vg, -vs, -1.0),
        };
        let vt = match self.params.polarity {
            Polarity::N => self.params.vt0,
            // In the mirrored frame a p-device behaves like an n-device
            // with threshold |vt0|.
            Polarity::P => -self.params.vt0,
        };

        let (g_d, g_g, g_s, i);
        if vd_e >= vs_e {
            let (id, gm, gds) = self.eval_n(vg_e - vs_e, vd_e - vs_e, vt);
            i = id;
            g_d = gds;
            g_g = gm;
            g_s = -(gm + gds);
        } else {
            // Swap source and drain: current in the original frame is the
            // negative of the swapped-frame current.
            let (id, gm, gds) = self.eval_n(vg_e - vd_e, vs_e - vd_e, vt);
            i = -id;
            g_d = gm + gds;
            g_g = -gm;
            g_s = -gds;
        }

        // Undo the polarity mirror. With v_e = -v, i = -i_e:
        // di/dv = -di_e/dv_e * dv_e/dv = di_e/dv_e, so conductances carry
        // over unchanged; only the current offset flips.
        let (g_d, g_g, g_s, i) = (g_d, g_g, g_s, sign * i);
        let i_eq = i - (g_d * vd + g_g * vg + g_s * vs);
        MosStamp {
            g_d,
            g_g,
            g_s,
            i_eq,
        }
    }
}

impl MosStamp {
    /// Evaluates the linearized current at the given voltages.
    #[inline]
    pub fn eval(&self, vd: f64, vg: f64, vs: f64) -> f64 {
        self.g_d * vd + self.g_g * vg + self.g_s * vs + self.i_eq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> Mosfet {
        Mosfet::new(
            NodeRef::Node(0),
            NodeRef::Node(1),
            NodeRef::Ground,
            8e-6,
            2e-6,
            MosParams {
                lambda: 0.0,
                ..MosParams::nmos_default()
            },
        )
    }

    #[test]
    fn cutoff_below_threshold() {
        let m = nmos();
        assert_eq!(m.current(5.0, 0.5, 0.0), 0.0);
        assert_eq!(m.current(5.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn saturation_current_matches_formula() {
        let m = nmos();
        // vgs = 5, vov = 4, vds = 5 > vov ⇒ saturation.
        let beta = 25e-6 * 4.0;
        let expect = 0.5 * beta * 16.0;
        assert!((m.current(5.0, 5.0, 0.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn triode_current_matches_formula() {
        let m = nmos();
        // vgs = 5, vov = 4, vds = 1 < vov ⇒ triode.
        let beta = 25e-6 * 4.0;
        let expect = beta * (4.0 * 1.0 - 0.5);
        assert!((m.current(1.0, 5.0, 0.0) - expect).abs() < 1e-12);
    }

    #[test]
    fn current_is_continuous_at_region_boundary() {
        let m = nmos();
        let below = m.current(3.9999, 5.0, 0.0);
        let above = m.current(4.0001, 5.0, 0.0);
        assert!((below - above).abs() < 1e-7);
    }

    #[test]
    fn symmetric_under_terminal_swap() {
        // i(d,s) with vds < 0 must equal -i(s,d) with the roles swapped.
        let m = nmos();
        let fwd = m.current(2.0, 5.0, 0.0);
        let rev = m.current(0.0, 5.0, 2.0);
        assert!((fwd + rev).abs() < 1e-12);
    }

    #[test]
    fn pmos_mirrors_nmos() {
        let n = Mosfet::new(
            NodeRef::Node(0),
            NodeRef::Node(1),
            NodeRef::Ground,
            8e-6,
            2e-6,
            MosParams {
                vt0: 1.0,
                kp: 25e-6,
                lambda: 0.0,
                polarity: Polarity::N,
            },
        );
        let p = Mosfet::new(
            NodeRef::Node(0),
            NodeRef::Node(1),
            NodeRef::Ground,
            8e-6,
            2e-6,
            MosParams {
                vt0: -1.0,
                kp: 25e-6,
                lambda: 0.0,
                polarity: Polarity::P,
            },
        );
        // Mirrored bias: p at (-vd, -vg) carries the negative of n at (vd, vg).
        let i_n = n.current(3.0, 5.0, 0.0);
        let i_p = p.current(-3.0, -5.0, 0.0);
        assert!((i_n + i_p).abs() < 1e-12);
        assert!(i_n > 0.0);
    }

    #[test]
    fn depletion_conducts_at_zero_vgs() {
        let m = Mosfet::new(
            NodeRef::Node(0),
            NodeRef::Node(1),
            NodeRef::Ground,
            2e-6,
            8e-6,
            MosParams {
                lambda: 0.0,
                ..MosParams::depletion_default()
            },
        );
        // vgs = 0 but vt = -3 ⇒ vov = 3 ⇒ conducting.
        assert!(m.current(5.0, 0.0, 0.0) > 0.0);
    }

    #[test]
    fn linearization_is_tangent() {
        // The linear stamp must reproduce the current exactly at the
        // linearization point and be first-order accurate nearby.
        let m = nmos();
        let (vd, vg, vs) = (2.0, 3.5, 0.5);
        let st = m.linearize(vd, vg, vs);
        assert!((st.eval(vd, vg, vs) - m.current(vd, vg, vs)).abs() < 1e-14);
        let eps = 1e-6;
        for (dd, dg, ds) in [(eps, 0.0, 0.0), (0.0, eps, 0.0), (0.0, 0.0, eps)] {
            let exact = m.current(vd + dd, vg + dg, vs + ds);
            let approx = st.eval(vd + dd, vg + dg, vs + ds);
            assert!(
                (exact - approx).abs() < 1e-9,
                "tangency violated for ({dd},{dg},{ds})"
            );
        }
    }

    #[test]
    fn linearization_tangent_in_reverse_mode() {
        let m = nmos();
        // vds < 0 engages the terminal swap.
        let (vd, vg, vs) = (0.5, 4.0, 2.0);
        let st = m.linearize(vd, vg, vs);
        assert!((st.eval(vd, vg, vs) - m.current(vd, vg, vs)).abs() < 1e-12);
        let eps = 1e-6;
        let exact = m.current(vd + eps, vg, vs);
        assert!((exact - st.eval(vd + eps, vg, vs)).abs() < 1e-9);
    }

    #[test]
    fn channel_length_modulation_increases_saturation_current() {
        let flat = nmos();
        let clm = Mosfet::new(
            flat.d,
            flat.g,
            flat.s,
            flat.w,
            flat.l,
            MosParams {
                lambda: 0.05,
                ..MosParams::nmos_default()
            },
        );
        assert!(clm.current(5.0, 5.0, 0.0) > flat.current(5.0, 5.0, 0.0));
        // And gives a positive output conductance in saturation.
        let st = clm.linearize(5.0, 5.0, 0.0);
        assert!(st.g_d > 0.0);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn rejects_bad_geometry() {
        let _ = Mosfet::new(
            NodeRef::Ground,
            NodeRef::Ground,
            NodeRef::Ground,
            0.0,
            1e-6,
            MosParams::nmos_default(),
        );
    }
}
