//! Linear capacitor with a backward-Euler companion model.

use super::NodeRef;

/// A linear capacitor between two terminals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capacitor {
    /// First terminal (positive for the stored voltage convention).
    pub a: NodeRef,
    /// Second terminal.
    pub b: NodeRef,
    /// Capacitance in farads (must be positive).
    pub farads: f64,
}

impl Capacitor {
    /// Creates a capacitor.
    ///
    /// # Panics
    /// Panics if `farads` is not strictly positive and finite.
    pub fn new(a: NodeRef, b: NodeRef, farads: f64) -> Capacitor {
        assert!(
            farads > 0.0 && farads.is_finite(),
            "capacitance must be positive, got {farads}"
        );
        Capacitor { a, b, farads }
    }

    /// Backward-Euler companion: conductance `C/dt` and an equivalent
    /// current source `(C/dt)·v_prev` (flowing b→a) where `v_prev` is last
    /// step's voltage across the device.
    ///
    /// Returns `(g_eq, i_eq)`.
    #[inline]
    pub fn companion_be(&self, v_prev: f64, dt: f64) -> (f64, f64) {
        let g = self.farads / dt;
        (g, g * v_prev)
    }

    /// Trapezoidal companion: `i_{n+1} = (2C/dt)(v_{n+1} − v_n) − i_n`,
    /// i.e. conductance `2C/dt` and equivalent source
    /// `(2C/dt)·v_n + i_n`, where `i_prev` is the device current at the
    /// previous accepted step. Second-order accurate (versus first-order
    /// for backward Euler).
    ///
    /// Returns `(g_eq, i_eq)`.
    #[inline]
    pub fn companion_trapezoidal(&self, v_prev: f64, i_prev: f64, dt: f64) -> (f64, f64) {
        let g = 2.0 * self.farads / dt;
        (g, g * v_prev + i_prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn companion_values() {
        let c = Capacitor::new(NodeRef::Node(0), NodeRef::Ground, 1e-12);
        let (g, ieq) = c.companion_be(2.5, 1e-9);
        assert!((g - 1e-3).abs() < 1e-12);
        assert!((ieq - 2.5e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn rejects_negative_capacitance() {
        let _ = Capacitor::new(NodeRef::Node(0), NodeRef::Ground, -1e-15);
    }
}
