//! # nanospice — a small MOS level-1 transient circuit simulator
//!
//! The reference-simulation substrate of the *mos-timing* workspace. The
//! original paper calibrates and evaluates its switch-level delay models
//! against SPICE; this crate plays that role, implementing
//!
//! * modified nodal analysis behind a [`solver::LinearSolver`] trait:
//!   dense LU for small circuits ([`matrix`]) and CSC sparse LU with
//!   symbolic-pattern reuse for large ones ([`sparse`]);
//! * device models ([`devices`]): resistors, capacitors, independent
//!   voltage sources (DC / pulse / PWL), and a symmetric Shichman–Hodges
//!   (level-1) MOSFET with channel-length modulation;
//! * a Newton–Raphson DC operating point with gmin stepping and a
//!   backward-Euler transient loop with automatic sub-stepping
//!   ([`engine`]);
//! * waveform measurement ([`waveform`]) and high-level delay measurement
//!   of switch-level networks ([`analysis`]).
//!
//! ## Quick example: inverter propagation delay
//!
//! ```
//! use mosnet::generators::{inverter, Style};
//! use mosnet::units::{Farads, Seconds};
//! use nanospice::analysis::{measure_transition, Edge, TransitionSpec};
//! use nanospice::circuit::MosModelSet;
//! use std::collections::HashMap;
//!
//! # fn main() -> Result<(), nanospice::error::SimError> {
//! let net = inverter(Style::Cmos, Farads::from_femto(100.0));
//! let spec = TransitionSpec {
//!     input: net.node_by_name("in").expect("generated"),
//!     input_edge: Edge::Rising,
//!     input_transition: Seconds::from_picos(500.0),
//!     output: net.node_by_name("out").expect("generated"),
//!     output_edge: Edge::Falling,
//!     statics: HashMap::new(),
//!     expected_final: None,
//! };
//! let m = measure_transition(
//!     &net,
//!     &MosModelSet::default(),
//!     &spec,
//!     Seconds::from_nanos(20.0),
//!     Seconds::from_picos(50.0),
//! )?;
//! assert!(m.delay.value() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod circuit;
pub mod devices;
pub mod engine;
pub mod error;
pub mod matrix;
pub mod recovery;
pub mod solver;
pub mod sparse;
pub mod waveform;

pub use analysis::{
    dc_sweep, measure_transition, operating_voltages, switching_threshold, DelayMeasurement, Edge,
    NetSim, TransitionSpec,
};
pub use circuit::{elaborate, Circuit, Elaboration, MosModelSet};
pub use engine::{Integration, Options, Simulator, TranResult};
pub use error::SimError;
pub use recovery::{RecoveryAttempt, RecoveryLog, RecoveryPolicy, RescueStrategy};
pub use solver::{create_solver, LinearSolver, SolverChoice, DENSE_SPARSE_THRESHOLD};
pub use sparse::SparseLu;
pub use waveform::Waveform;
