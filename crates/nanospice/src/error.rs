//! Error types for the simulator.

use std::error::Error;
use std::fmt;

/// Errors produced by circuit assembly or simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The MNA matrix is singular — typically a floating subcircuit or a
    /// loop of ideal voltage sources.
    SingularMatrix {
        /// Column at which factorization failed.
        column: usize,
    },
    /// Newton–Raphson failed to converge even after step-size reduction.
    NoConvergence {
        /// Simulation time at which convergence was lost (seconds).
        time: f64,
        /// Iterations performed in the final attempt.
        iterations: usize,
    },
    /// A device references a node index the circuit does not have.
    BadNode {
        /// The offending index.
        index: usize,
    },
    /// Invalid analysis parameters (non-positive step or stop time, ...).
    BadParameter {
        /// Human-readable description.
        message: String,
    },
    /// The requested waveform/node does not exist in the result set.
    UnknownSignal {
        /// The requested name.
        name: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SingularMatrix { column } => {
                write!(f, "singular circuit matrix at column {column}")
            }
            SimError::NoConvergence { time, iterations } => write!(
                f,
                "newton iteration failed to converge at t = {time:.3e} s after {iterations} iterations"
            ),
            SimError::BadNode { index } => write!(f, "device references unknown node {index}"),
            SimError::BadParameter { message } => write!(f, "bad parameter: {message}"),
            SimError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = SimError::NoConvergence {
            time: 1e-9,
            iterations: 50,
        };
        let s = e.to_string();
        assert!(s.contains("1.000e-9") || s.contains("1e-9"), "{s}");
        assert!(s.contains("50"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>(_: E) {}
        assert_err(SimError::BadNode { index: 3 });
    }
}
