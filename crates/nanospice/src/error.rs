//! Error types for the simulator.

use crate::recovery::RescueStrategy;
use std::error::Error;
use std::fmt;

/// Errors produced by circuit assembly or simulation.
///
/// Marked `#[non_exhaustive]`: downstream crates must keep a wildcard
/// arm so future failure modes (like [`SimError::RecoveryExhausted`],
/// added after the first release) are not breaking changes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The MNA matrix is singular — typically a floating subcircuit or a
    /// loop of ideal voltage sources.
    SingularMatrix {
        /// Column at which factorization failed.
        column: usize,
    },
    /// Newton–Raphson failed to converge even after step-size reduction.
    NoConvergence {
        /// Simulation time at which convergence was lost (seconds).
        time: f64,
        /// Iterations performed in the final attempt.
        iterations: usize,
    },
    /// Newton–Raphson failed even after the convergence-rescue ladder
    /// (see [`recovery`](crate::recovery)) climbed every applicable rung.
    RecoveryExhausted {
        /// The rescue strategies attempted, in order.
        attempts: Vec<RescueStrategy>,
    },
    /// A device references a node index the circuit does not have.
    BadNode {
        /// The offending index.
        index: usize,
    },
    /// Invalid analysis parameters (non-positive step or stop time, ...).
    BadParameter {
        /// Human-readable description.
        message: String,
    },
    /// The requested waveform/node does not exist in the result set.
    UnknownSignal {
        /// The requested name.
        name: String,
    },
    /// An attached cooperative-cancellation flag fired mid-solve (see
    /// [`Simulator::with_cancel_flag`](crate::engine::Simulator::with_cancel_flag));
    /// typically an external watchdog enforcing a wall-clock deadline.
    Cancelled,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SingularMatrix { column } => {
                write!(f, "singular circuit matrix at column {column}")
            }
            SimError::NoConvergence { time, iterations } => write!(
                f,
                "newton iteration failed to converge at t = {time:.3e} s after {iterations} iterations"
            ),
            SimError::RecoveryExhausted { attempts } => {
                write!(f, "convergence rescue exhausted after trying ")?;
                if attempts.is_empty() {
                    write!(f, "no strategies")
                } else {
                    for (i, s) in attempts.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{s}")?;
                    }
                    Ok(())
                }
            }
            SimError::BadNode { index } => write!(f, "device references unknown node {index}"),
            SimError::BadParameter { message } => write!(f, "bad parameter: {message}"),
            SimError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
            SimError::Cancelled => {
                write!(f, "simulation cancelled by an external request")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every variant must Display with its payload context intact and
    /// round-trip through the `Error` trait object.
    #[test]
    fn display_round_trip_every_variant() {
        let cases: Vec<(SimError, &[&str])> = vec![
            (SimError::SingularMatrix { column: 7 }, &["singular", "7"]),
            (
                SimError::NoConvergence {
                    time: 1e-9,
                    iterations: 50,
                },
                &["converge", "50"],
            ),
            (
                SimError::RecoveryExhausted {
                    attempts: vec![
                        RescueStrategy::GminStepping,
                        RescueStrategy::SourceStepping,
                        RescueStrategy::TimestepReduction,
                    ],
                },
                &[
                    "rescue exhausted",
                    "gmin stepping",
                    "source stepping",
                    "timestep reduction",
                ],
            ),
            (SimError::BadNode { index: 3 }, &["unknown node", "3"]),
            (
                SimError::BadParameter {
                    message: "dt must be positive".into(),
                },
                &["bad parameter", "dt must be positive"],
            ),
            (
                SimError::UnknownSignal { name: "out".into() },
                &["unknown signal", "out"],
            ),
            (SimError::Cancelled, &["cancelled", "external request"]),
        ];
        for (err, needles) in cases {
            let direct = err.to_string();
            let via_trait = (&err as &dyn Error).to_string();
            assert_eq!(direct, via_trait, "{err:?}");
            for needle in needles {
                assert!(direct.contains(needle), "{direct:?} missing {needle:?}");
            }
        }
    }

    #[test]
    fn messages_carry_context() {
        let e = SimError::NoConvergence {
            time: 1e-9,
            iterations: 50,
        };
        let s = e.to_string();
        assert!(s.contains("1.000e-9") || s.contains("1e-9"), "{s}");
        assert!(s.contains("50"));
    }

    #[test]
    fn recovery_exhausted_with_no_attempts_displays() {
        let e = SimError::RecoveryExhausted { attempts: vec![] };
        assert!(e.to_string().contains("no strategies"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>(_: E) {}
        assert_err(SimError::BadNode { index: 3 });
    }
}
