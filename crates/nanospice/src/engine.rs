//! The analysis engine: DC operating point and fixed-grid transient with
//! Newton–Raphson per step and automatic sub-stepping on non-convergence.

use crate::circuit::Circuit;
use crate::devices::{Device, NodeRef};
use crate::error::SimError;
use crate::recovery::{RecoveryLog, RecoveryPolicy, RescueStrategy};
use crate::solver::{create_solver, LinearSolver, SolverChoice};
use crate::waveform::Waveform;
use std::sync::atomic::{AtomicBool, Ordering};

/// Time-integration method for the transient analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Integration {
    /// First-order, L-stable — the robust default.
    #[default]
    BackwardEuler,
    /// Second-order trapezoidal rule — more accurate at coarse steps,
    /// but can ring on sharp edges.
    Trapezoidal,
}

/// Solver options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Options {
    /// Time-integration method.
    pub integration: Integration,
    /// Maximum Newton iterations per solve.
    pub max_nr_iterations: usize,
    /// Absolute voltage convergence tolerance (V).
    pub abstol: f64,
    /// Relative convergence tolerance.
    pub reltol: f64,
    /// Conductance from every node to ground aiding convergence (S).
    pub gmin: f64,
    /// Per-iteration clamp on voltage updates (V).
    pub max_voltage_step: f64,
    /// Maximum times a transient step may be halved before giving up.
    pub max_step_halvings: u32,
    /// Linear-solver backend: dense LU, sparse LU with pattern reuse, or
    /// automatic selection by unknown count.
    pub solver: SolverChoice,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            integration: Integration::BackwardEuler,
            max_nr_iterations: 100,
            abstol: 1e-6,
            reltol: 1e-3,
            gmin: 1e-10,
            max_voltage_step: 2.0,
            max_step_halvings: 12,
            solver: SolverChoice::Auto,
        }
    }
}

/// Transient simulation result: voltages for every unknown node on the
/// output time grid.
#[derive(Debug, Clone)]
pub struct TranResult {
    names: Vec<String>,
    times: Vec<f64>,
    /// `data[step][node]`.
    data: Vec<Vec<f64>>,
}

impl TranResult {
    /// The output time grid (seconds).
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Names of the recorded nodes, in unknown order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Extracts the waveform of a node by [`NodeRef`].
    ///
    /// Ground yields the all-zero waveform.
    pub fn voltage(&self, node: NodeRef) -> Waveform {
        match node {
            NodeRef::Ground => Waveform::new(self.times.clone(), vec![0.0; self.times.len()]),
            NodeRef::Node(i) => Waveform::new(
                self.times.clone(),
                self.data.iter().map(|row| row[i]).collect(),
            ),
        }
    }

    /// Extracts the waveform of a node by name.
    ///
    /// # Errors
    /// Returns [`SimError::UnknownSignal`] when no node has that name.
    pub fn voltage_by_name(&self, name: &str) -> Result<Waveform, SimError> {
        let i =
            self.names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| SimError::UnknownSignal {
                    name: name.to_string(),
                })?;
        Ok(self.voltage(NodeRef::Node(i)))
    }
}

/// Per-step dynamic context handed to the assembler: the previous
/// accepted solution, the step size, and (for trapezoidal integration)
/// the capacitor currents at the previous accepted step.
#[derive(Debug, Clone, Copy)]
struct DynamicCtx<'a> {
    prev: &'a [f64],
    dt: f64,
    cap_currents: &'a [f64],
    /// Effective method for this step; the very first transient step
    /// always uses backward Euler (the trapezoidal companion needs a
    /// valid current history, which the DC point does not provide across
    /// a source discontinuity).
    method: Integration,
}

/// A simulator bound to one circuit.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    circuit: &'a Circuit,
    options: Options,
    /// Cooperative-cancellation flag polled between Newton iterations and
    /// transient steps; lives outside [`Options`] because `Options` is
    /// `Copy`. See [`Simulator::with_cancel_flag`].
    cancel: Option<&'a AtomicBool>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with default [`Options`].
    pub fn new(circuit: &'a Circuit) -> Simulator<'a> {
        Simulator {
            circuit,
            options: Options::default(),
            cancel: None,
        }
    }

    /// Creates a simulator with explicit options.
    pub fn with_options(circuit: &'a Circuit, options: Options) -> Simulator<'a> {
        Simulator {
            circuit,
            options,
            cancel: None,
        }
    }

    /// Attaches a cooperative-cancellation flag. The solver polls it at
    /// every Newton iteration and every transient step; once it reads
    /// `true`, the run stops with [`SimError::Cancelled`]. An external
    /// watchdog (e.g. the timing analyzer's per-scenario deadline) can
    /// therefore stop a wedged simulation without killing the thread.
    pub fn with_cancel_flag(mut self, cancel: &'a AtomicBool) -> Simulator<'a> {
        self.cancel = Some(cancel);
        self
    }

    /// Solver options in effect.
    pub fn options(&self) -> Options {
        self.options
    }

    /// `Err(SimError::Cancelled)` once the attached cancel flag fired.
    fn check_cancelled(&self) -> Result<(), SimError> {
        match self.cancel {
            Some(flag) if flag.load(Ordering::Acquire) => Err(SimError::Cancelled),
            _ => Ok(()),
        }
    }

    /// DC operating point with sources evaluated at `t = 0`.
    ///
    /// # Errors
    /// Returns [`SimError::NoConvergence`] if Newton iteration fails even
    /// with gmin stepping, or [`SimError::SingularMatrix`] for a
    /// structurally defective circuit.
    pub fn op(&self) -> Result<Vec<f64>, SimError> {
        self.op_at(0.0)
    }

    /// DC operating point with sources evaluated at time `t`.
    ///
    /// # Errors
    /// See [`Self::op`].
    pub fn op_at(&self, t: f64) -> Result<Vec<f64>, SimError> {
        self.circuit.check()?;
        let budget = self.options.max_nr_iterations;
        let n = self.circuit.unknown_count();
        // One solver for the whole DC ladder: the sparsity pattern is
        // identical at every gmin rung, so the sparse backend analyzes
        // once and refactors values-only from the second solve on.
        let mut solver = self.new_solver();
        let mut x = vec![0.0; n];
        match self.newton(
            t,
            None,
            &mut x,
            self.options.gmin,
            budget,
            1.0,
            solver.as_mut(),
        ) {
            Ok(()) => Ok(x),
            Err(_) => {
                // gmin stepping: start heavily damped, relax gradually.
                x.fill(0.0);
                let mut gmin = 1e-2;
                while gmin > self.options.gmin {
                    self.newton(t, None, &mut x, gmin, budget, 1.0, solver.as_mut())
                        .map_err(|e| match e {
                            SimError::NoConvergence { .. } => SimError::NoConvergence {
                                time: t,
                                iterations: budget,
                            },
                            other => other,
                        })?;
                    gmin *= 1e-2;
                }
                self.newton(
                    t,
                    None,
                    &mut x,
                    self.options.gmin,
                    budget,
                    1.0,
                    solver.as_mut(),
                )?;
                Ok(x)
            }
        }
    }

    /// DC operating point with the convergence-rescue ladder: when the
    /// plain solve (including its built-in gmin stepping) fails, retries
    /// under `policy` with gmin stepping at a boosted iteration budget,
    /// then source stepping. Every rung is recorded in the returned
    /// [`RecoveryLog`]; an empty log means no rescue was needed.
    ///
    /// # Errors
    /// Returns [`SimError::RecoveryExhausted`] listing the attempted
    /// strategies when every rung fails (or the original error when the
    /// policy is disabled), and passes through structural errors like
    /// [`SimError::SingularMatrix`] unchanged.
    pub fn op_recovered(
        &self,
        policy: &RecoveryPolicy,
    ) -> Result<(Vec<f64>, RecoveryLog), SimError> {
        let mut log = RecoveryLog::new();
        let x = self.op_rescued(0.0, policy, &mut log)?;
        Ok((x, log))
    }

    /// The rescue ladder for a DC solve at time `t`, appending attempts
    /// to `log`.
    fn op_rescued(
        &self,
        t: f64,
        policy: &RecoveryPolicy,
        log: &mut RecoveryLog,
    ) -> Result<Vec<f64>, SimError> {
        let base = match self.op_at(t) {
            Ok(x) => return Ok(x),
            Err(e @ (SimError::SingularMatrix { .. } | SimError::BadNode { .. })) => return Err(e),
            Err(e) => e,
        };
        if !policy.enabled {
            return Err(base);
        }
        let n = self.circuit.unknown_count();
        let budget = policy.nr_iterations.max(1);
        // Both rescue rungs assemble the same DC pattern — share a solver.
        let mut solver = self.new_solver();

        // Rung 1: gmin stepping with the policy's (boosted) budget.
        let mut x = vec![0.0; n];
        let mut gmin = policy.gmin_start;
        let rung = loop {
            if self
                .newton(t, None, &mut x, gmin, budget, 1.0, solver.as_mut())
                .is_err()
            {
                break Err(());
            }
            if gmin <= self.options.gmin {
                break Ok(());
            }
            gmin = (gmin * policy.gmin_reduction).max(self.options.gmin);
        };
        log.record(RescueStrategy::GminStepping, rung.is_ok(), t);
        if rung.is_ok() {
            return Ok(x);
        }

        // Rung 2: source stepping — ramp the excitation from zero,
        // re-converging at each scale from the previous solution.
        let mut x = vec![0.0; n];
        let steps = policy.source_steps.max(1);
        let rung = (1..=steps).try_for_each(|k| {
            let scale = k as f64 / steps as f64;
            self.newton(
                t,
                None,
                &mut x,
                self.options.gmin,
                budget,
                scale,
                solver.as_mut(),
            )
            .map_err(|_| ())
        });
        log.record(RescueStrategy::SourceStepping, rung.is_ok(), t);
        if rung.is_ok() {
            return Ok(x);
        }

        Err(SimError::RecoveryExhausted {
            attempts: log.strategies_tried(),
        })
    }

    /// Fixed-grid transient analysis from `0` to `tstop` with output step
    /// `dt`. Internally a step is halved (up to
    /// [`Options::max_step_halvings`]) when Newton fails to converge.
    ///
    /// # Errors
    /// Returns [`SimError::BadParameter`] for a non-positive `tstop`/`dt`,
    /// and [`SimError::NoConvergence`] if a step cannot be completed even
    /// at the smallest sub-step.
    pub fn transient(&self, tstop: f64, dt: f64) -> Result<TranResult, SimError> {
        self.transient_impl(tstop, dt, None, None)
    }

    /// [`Self::transient`] with the convergence-rescue ladder: when a
    /// step fails even after the ordinary halvings, the engine retries
    /// the step with gmin stepping at a boosted iteration budget, then
    /// keeps halving through `policy.max_extra_halvings` further
    /// reductions (exponential backoff) before giving up. The initial DC
    /// point is solved through the full DC ladder (gmin stepping, then
    /// source stepping). Every rung is recorded in the returned
    /// [`RecoveryLog`].
    ///
    /// # Errors
    /// As [`Self::transient`], with terminal convergence failures
    /// reported as [`SimError::RecoveryExhausted`].
    pub fn transient_recovered(
        &self,
        tstop: f64,
        dt: f64,
        policy: &RecoveryPolicy,
    ) -> Result<(TranResult, RecoveryLog), SimError> {
        let mut log = RecoveryLog::new();
        let result = self.transient_impl(tstop, dt, None, Some((policy, &mut log)))?;
        Ok((result, log))
    }

    /// Transient analysis "use initial conditions" style: instead of a DC
    /// operating point, the run starts from the supplied node voltages
    /// (`(node index, volts)` pairs; unlisted nodes start at 0 V). The
    /// first step immediately enforces source constraints, so only
    /// capacitor state really carries over — exactly what stored-charge
    /// scenarios need.
    ///
    /// # Errors
    /// As [`Self::transient`], plus [`SimError::BadNode`] for an
    /// out-of-range node index.
    pub fn transient_uic(
        &self,
        tstop: f64,
        dt: f64,
        initial: &[(usize, f64)],
    ) -> Result<TranResult, SimError> {
        for &(node, _) in initial {
            if node >= self.circuit.node_count() {
                return Err(SimError::BadNode { index: node });
            }
        }
        self.transient_impl(tstop, dt, Some(initial), None)
    }

    fn transient_impl(
        &self,
        tstop: f64,
        dt: f64,
        initial: Option<&[(usize, f64)]>,
        mut rescue: Option<(&RecoveryPolicy, &mut RecoveryLog)>,
    ) -> Result<TranResult, SimError> {
        if !(tstop > 0.0 && tstop.is_finite()) {
            return Err(SimError::BadParameter {
                message: format!("tstop must be positive, got {tstop}"),
            });
        }
        if !(dt > 0.0 && dt.is_finite() && dt <= tstop) {
            return Err(SimError::BadParameter {
                message: format!("dt must be positive and at most tstop, got {dt}"),
            });
        }
        let n_nodes = self.circuit.node_count();
        let mut x = match initial {
            None => match rescue.as_mut() {
                Some((policy, log)) => self.op_rescued(0.0, policy, log)?,
                None => self.op()?,
            },
            Some(ics) => {
                self.circuit.check()?;
                let mut x = vec![0.0; self.circuit.unknown_count()];
                for &(node, v) in ics {
                    x[node] = v;
                }
                x
            }
        };
        // Capacitor branch currents, needed by the trapezoidal companion;
        // zero at the DC operating point.
        let n_caps = self
            .circuit
            .devices()
            .iter()
            .filter(|d| matches!(d, Device::Capacitor(_)))
            .count();
        let mut cap_currents = vec![0.0; n_caps];
        let mut first_step = true;
        let steps = (tstop / dt).round() as usize;
        let mut times = Vec::with_capacity(steps + 1);
        let mut data = Vec::with_capacity(steps + 1);
        times.push(0.0);
        data.push(x[..n_nodes].to_vec());
        // One solver for every implicit step (and every rescue rung): the
        // dynamic stamp pattern is fixed for the whole run, so the sparse
        // backend analyzes on the first step only.
        let mut solver = self.new_solver();

        for step in 1..=steps {
            self.check_cancelled()?;
            let t_target = step as f64 * dt;
            let mut t_now = (step - 1) as f64 * dt;
            let mut sub_dt = dt;
            let mut halvings = 0u32;
            // Rescue bookkeeping for this output step: the gmin rung runs
            // at most once, and entering the extra-halving region switches
            // to the policy's boosted Newton budget.
            let mut gmin_rescue_tried = false;
            let mut in_reduction = false;
            while t_now < t_target - 1e-18 {
                let t_next = (t_now + sub_dt).min(t_target);
                let h = t_next - t_now;
                let x_prev = x.clone();
                let mut x_try = x.clone();
                let method = if first_step {
                    Integration::BackwardEuler
                } else {
                    self.options.integration
                };
                let ctx = DynamicCtx {
                    prev: &x_prev,
                    dt: h,
                    cap_currents: &cap_currents,
                    method,
                };
                let budget = match (&rescue, in_reduction) {
                    (Some((policy, _)), true) => policy.nr_iterations.max(1),
                    _ => self.options.max_nr_iterations,
                };
                match self.newton(
                    t_next,
                    Some(ctx),
                    &mut x_try,
                    self.options.gmin,
                    budget,
                    1.0,
                    solver.as_mut(),
                ) {
                    Ok(()) => {
                        if in_reduction {
                            if let Some((_, log)) = rescue.as_mut() {
                                log.record(RescueStrategy::TimestepReduction, true, t_next);
                            }
                            in_reduction = false;
                        }
                        self.update_cap_currents(&x_prev, &x_try, h, method, &mut cap_currents);
                        x = x_try;
                        t_now = t_next;
                        first_step = false;
                        // Regrow a previously halved step so one hard spot
                        // does not pin the rest of the run to tiny steps.
                        if halvings > 0 {
                            sub_dt = (sub_dt * 2.0).min(dt);
                            halvings -= 1;
                        }
                        gmin_rescue_tried = false;
                    }
                    Err(SimError::NoConvergence { .. }) => {
                        halvings += 1;
                        if halvings <= self.options.max_step_halvings {
                            sub_dt *= 0.5;
                            continue;
                        }
                        let Some((policy, log)) = rescue.as_mut().filter(|(p, _)| p.enabled) else {
                            return Err(SimError::NoConvergence {
                                time: t_next,
                                iterations: self.options.max_nr_iterations,
                            });
                        };
                        let policy = *policy;
                        if !gmin_rescue_tried {
                            gmin_rescue_tried = true;
                            let rescued =
                                self.step_gmin_rescue(t_next, ctx, policy, solver.as_mut());
                            log.record(RescueStrategy::GminStepping, rescued.is_some(), t_next);
                            if let Some(x_new) = rescued {
                                self.update_cap_currents(
                                    &x_prev,
                                    &x_new,
                                    h,
                                    method,
                                    &mut cap_currents,
                                );
                                x = x_new;
                                t_now = t_next;
                                first_step = false;
                                if halvings > 0 {
                                    sub_dt = (sub_dt * 2.0).min(dt);
                                    halvings -= 1;
                                }
                                gmin_rescue_tried = false;
                                continue;
                            }
                        }
                        // Timestep reduction: exponential backoff past the
                        // ordinary halving budget, at the boosted budget.
                        if halvings <= self.options.max_step_halvings + policy.max_extra_halvings {
                            in_reduction = true;
                            sub_dt *= 0.5;
                        } else {
                            log.record(RescueStrategy::TimestepReduction, false, t_next);
                            return Err(SimError::RecoveryExhausted {
                                attempts: log.strategies_tried(),
                            });
                        }
                    }
                    Err(other) => return Err(other),
                }
            }
            times.push(t_target);
            data.push(x[..n_nodes].to_vec());
        }

        Ok(TranResult {
            names: (0..n_nodes)
                .map(|i| self.circuit.node_name(i).to_string())
                .collect(),
            times,
            data,
        })
    }

    /// The gmin-stepping rescue rung for one implicit transient step:
    /// re-solves the same step starting from a large gmin shunt, relaxing
    /// geometrically back to the nominal value, all at the policy's
    /// boosted iteration budget. Returns the converged solution or `None`.
    fn step_gmin_rescue(
        &self,
        t: f64,
        ctx: DynamicCtx<'_>,
        policy: &RecoveryPolicy,
        solver: &mut dyn LinearSolver,
    ) -> Option<Vec<f64>> {
        let budget = policy.nr_iterations.max(1);
        let mut x_try = ctx.prev.to_vec();
        let mut gmin = policy.gmin_start;
        loop {
            self.newton(t, Some(ctx), &mut x_try, gmin, budget, 1.0, solver)
                .ok()?;
            if gmin <= self.options.gmin {
                return Some(x_try);
            }
            gmin = (gmin * policy.gmin_reduction).max(self.options.gmin);
        }
    }

    /// Recomputes the capacitor branch currents after an accepted step
    /// (the state the trapezoidal companion needs).
    fn update_cap_currents(
        &self,
        prev: &[f64],
        new: &[f64],
        dt: f64,
        method: Integration,
        currents: &mut [f64],
    ) {
        let mut k = 0;
        for device in self.circuit.devices() {
            if let Device::Capacitor(c) = device {
                let v_prev = c.a.voltage(prev) - c.b.voltage(prev);
                let v_new = c.a.voltage(new) - c.b.voltage(new);
                currents[k] = match method {
                    Integration::BackwardEuler => c.farads / dt * (v_new - v_prev),
                    Integration::Trapezoidal => {
                        2.0 * c.farads / dt * (v_new - v_prev) - currents[k]
                    }
                };
                k += 1;
            }
        }
    }

    /// Adaptive transient analysis: the internal step size is controlled
    /// by a step-doubling local-truncation-error estimate (one full step
    /// compared against two half steps), shrinking through fast edges and
    /// growing up to `dt_max` through quiet intervals. Results are
    /// reported on the uniform `dt_out` grid by linear interpolation.
    ///
    /// # Errors
    /// As [`Self::transient`]; additionally [`SimError::BadParameter`] if
    /// `dt_max < dt_out / 4` (the controller needs room to move).
    pub fn transient_adaptive(
        &self,
        tstop: f64,
        dt_out: f64,
        dt_max: f64,
    ) -> Result<TranResult, SimError> {
        if !(tstop > 0.0 && tstop.is_finite()) {
            return Err(SimError::BadParameter {
                message: format!("tstop must be positive, got {tstop}"),
            });
        }
        if !(dt_out > 0.0 && dt_out.is_finite() && dt_out <= tstop) {
            return Err(SimError::BadParameter {
                message: format!("dt_out must be positive and at most tstop, got {dt_out}"),
            });
        }
        if !(dt_max > 0.0 && dt_max.is_finite()) || dt_max < dt_out / 4.0 {
            return Err(SimError::BadParameter {
                message: format!("dt_max must be at least dt_out/4, got {dt_max}"),
            });
        }
        let n_nodes = self.circuit.node_count();
        let n_caps = self
            .circuit
            .devices()
            .iter()
            .filter(|d| matches!(d, Device::Capacitor(_)))
            .count();
        let mut x = self.op()?;
        let mut cap_currents = vec![0.0; n_caps];
        let mut first_step = true;
        // Shared across every trial step of the run (same dynamic pattern).
        let mut solver = self.new_solver();

        // Voltage LTE tolerance, deliberately looser than the Newton
        // tolerance so the controller reacts to integration error only.
        let tol = 10.0 * self.options.abstol + 1e-3;

        let steps_out = (tstop / dt_out).round() as usize;
        let mut times = Vec::with_capacity(steps_out + 1);
        let mut data = Vec::with_capacity(steps_out + 1);
        times.push(0.0);
        data.push(x[..n_nodes].to_vec());

        let mut t = 0.0;
        let mut h = dt_out.min(dt_max);
        let mut next_out = dt_out;
        // Last accepted point behind the output grid, for interpolation.
        let mut t_prev = 0.0;
        let mut x_prev_out = x.clone();
        let mut guard = 0usize;
        let guard_limit = 200_000;

        while t < tstop - 1e-18 {
            self.check_cancelled()?;
            guard += 1;
            if guard > guard_limit {
                return Err(SimError::NoConvergence {
                    time: t,
                    iterations: guard_limit,
                });
            }
            let h_eff = h.min(tstop - t);
            let method = if first_step {
                Integration::BackwardEuler
            } else {
                self.options.integration
            };
            // Full step.
            let attempt = |solver: &mut dyn LinearSolver,
                           target_x: &mut Vec<f64>,
                           from_x: &[f64],
                           from_i: &[f64],
                           step: f64,
                           at: f64|
             -> Result<(), SimError> {
                *target_x = from_x.to_vec();
                let ctx = DynamicCtx {
                    prev: from_x,
                    dt: step,
                    cap_currents: from_i,
                    method,
                };
                self.newton(
                    at,
                    Some(ctx),
                    target_x,
                    self.options.gmin,
                    self.options.max_nr_iterations,
                    1.0,
                    solver,
                )
            };
            let mut x_full = Vec::new();
            let full = attempt(
                solver.as_mut(),
                &mut x_full,
                &x,
                &cap_currents,
                h_eff,
                t + h_eff,
            );
            // Two half steps.
            let half_result = full.as_ref().ok().map(|()| {
                let mut x_half = Vec::new();
                let mut i_half = cap_currents.clone();
                let r1 = attempt(
                    solver.as_mut(),
                    &mut x_half,
                    &x,
                    &cap_currents,
                    h_eff / 2.0,
                    t + h_eff / 2.0,
                );
                if r1.is_err() {
                    return Err(r1.expect_err("checked"));
                }
                self.update_cap_currents(&x, &x_half, h_eff / 2.0, method, &mut i_half);
                let mut x_half2 = Vec::new();
                let r2 = attempt(
                    solver.as_mut(),
                    &mut x_half2,
                    &x_half,
                    &i_half,
                    h_eff / 2.0,
                    t + h_eff,
                );
                r2.map(|()| (x_half2, x_half, i_half))
            });

            let accept = match (&full, &half_result) {
                (Ok(()), Some(Ok((x_half2, _, _)))) => {
                    let err = x_full[..n_nodes]
                        .iter()
                        .zip(&x_half2[..n_nodes])
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f64, f64::max);
                    if err <= tol {
                        Some((x_half2.clone(), err))
                    } else {
                        None
                    }
                }
                _ => None,
            };

            match accept {
                Some((x_new, err)) => {
                    // Advance state using the more accurate half-step pair.
                    let mut i_new = cap_currents.clone();
                    if let Some(Ok((_, x_half, i_half))) = half_result {
                        i_new = i_half;
                        self.update_cap_currents(&x_half, &x_new, h_eff / 2.0, method, &mut i_new);
                    }
                    let t_new = t + h_eff;
                    // Emit output samples crossed by this step.
                    while next_out <= t_new + 1e-18 && times.len() <= steps_out {
                        let frac = if t_new > t_prev {
                            (next_out - t_prev) / (t_new - t_prev)
                        } else {
                            1.0
                        };
                        let row: Vec<f64> = x_prev_out[..n_nodes]
                            .iter()
                            .zip(&x_new[..n_nodes])
                            .map(|(a, b)| a + frac * (b - a))
                            .collect();
                        times.push(next_out);
                        data.push(row);
                        next_out += dt_out;
                    }
                    t_prev = t_new;
                    x_prev_out = x_new.clone();
                    t = t_new;
                    x = x_new;
                    cap_currents = i_new;
                    first_step = false;
                    // Grow when comfortably inside tolerance.
                    if err < 0.25 * tol {
                        h = (h * 1.6).min(dt_max);
                    }
                }
                None => {
                    h *= 0.5;
                    if h < 1e-18 {
                        return Err(SimError::NoConvergence {
                            time: t,
                            iterations: self.options.max_nr_iterations,
                        });
                    }
                }
            }
        }

        Ok(TranResult {
            names: (0..n_nodes)
                .map(|i| self.circuit.node_name(i).to_string())
                .collect(),
            times,
            data,
        })
    }

    /// Creates the linear-solver backend for this circuit according to
    /// [`Options::solver`].
    fn new_solver(&self) -> Box<dyn LinearSolver> {
        create_solver(self.options.solver, self.circuit.unknown_count())
    }

    /// One Newton solve at time `t`. `dynamic` carries the previous
    /// solution and the step size for capacitor companions; `None` means DC
    /// (capacitors open). `budget` caps the iterations (rescue rungs pass
    /// a boosted budget independent of the base options) and
    /// `source_scale` scales every independent source (1.0 outside the
    /// source-stepping rescue rung). `solver` is stamped, factored in
    /// place, and solved every iteration — no matrix copies on the hot
    /// path (the historical `factor(a.clone())` cost one full dense copy
    /// per iteration), and a caller-shared solver lets the sparse backend
    /// reuse its symbolic analysis across iterations and time steps.
    #[allow(clippy::too_many_arguments)]
    fn newton(
        &self,
        t: f64,
        dynamic: Option<DynamicCtx<'_>>,
        x: &mut [f64],
        gmin: f64,
        budget: usize,
        source_scale: f64,
        solver: &mut dyn LinearSolver,
    ) -> Result<(), SimError> {
        let n = self.circuit.unknown_count();
        let n_nodes = self.circuit.node_count();
        debug_assert_eq!(solver.dim(), n);
        let mut rhs = vec![0.0; n];

        for iteration in 0..budget {
            self.check_cancelled()?;
            solver.begin();
            rhs.fill(0.0);
            self.assemble(t, dynamic, x, gmin, source_scale, solver, &mut rhs);
            solver.factor()?;
            solver.solve_in_place(&mut rhs);
            let x_new = &rhs;

            // Damped update with convergence check on node voltages.
            let mut max_dv = 0.0f64;
            let mut clamped = false;
            for i in 0..n {
                let mut delta = x_new[i] - x[i];
                if i < n_nodes {
                    max_dv = max_dv.max(delta.abs());
                    let limit = self.options.max_voltage_step;
                    if delta.abs() > limit {
                        delta = delta.signum() * limit;
                        clamped = true;
                    }
                }
                x[i] += delta;
            }
            let tol = self.options.abstol
                + self.options.reltol * x[..n_nodes].iter().fold(0.0f64, |m, v| m.max(v.abs()));
            if !clamped && max_dv < tol && iteration > 0 {
                return Ok(());
            }
            // Linear circuits converge in one solve; detect that cheaply.
            if iteration == 0 && max_dv < self.options.abstol {
                return Ok(());
            }
        }
        Err(SimError::NoConvergence {
            time: t,
            iterations: budget,
        })
    }

    /// Assembles the linearized MNA system at the current iterate.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        &self,
        t: f64,
        dynamic: Option<DynamicCtx<'_>>,
        x: &[f64],
        gmin: f64,
        source_scale: f64,
        a: &mut dyn LinearSolver,
        rhs: &mut [f64],
    ) {
        let n_nodes = self.circuit.node_count();
        for i in 0..n_nodes {
            a.add(i, i, gmin);
        }
        let mut cap_index = 0usize;
        for device in self.circuit.devices() {
            match device {
                Device::Resistor(r) => {
                    stamp_conductance(a, r.a, r.b, r.conductance());
                }
                Device::Capacitor(c) => {
                    let k = cap_index;
                    cap_index += 1;
                    if let Some(ctx) = dynamic {
                        let v_prev = c.a.voltage(ctx.prev) - c.b.voltage(ctx.prev);
                        let (g, ieq) = match ctx.method {
                            Integration::BackwardEuler => c.companion_be(v_prev, ctx.dt),
                            Integration::Trapezoidal => {
                                c.companion_trapezoidal(v_prev, ctx.cap_currents[k], ctx.dt)
                            }
                        };
                        stamp_conductance(a, c.a, c.b, g);
                        if let Some(i) = c.a.index() {
                            rhs[i] += ieq;
                        }
                        if let Some(i) = c.b.index() {
                            rhs[i] -= ieq;
                        }
                    }
                }
                Device::VSource(v) => {
                    let row = n_nodes + v.branch;
                    if let Some(p) = v.pos.index() {
                        a.add(p, row, 1.0);
                        a.add(row, p, 1.0);
                    }
                    if let Some(m) = v.neg.index() {
                        a.add(m, row, -1.0);
                        a.add(row, m, -1.0);
                    }
                    rhs[row] += source_scale * v.shape.value(t);
                }
                Device::Mosfet(m) => {
                    let vd = m.d.voltage(x);
                    let vg = m.g.voltage(x);
                    let vs = m.s.voltage(x);
                    let st = m.linearize(vd, vg, vs);
                    // Current i(d→s) leaves node d and enters node s.
                    if let Some(d) = m.d.index() {
                        add_term(a, d, m.d, st.g_d);
                        add_term(a, d, m.g, st.g_g);
                        add_term(a, d, m.s, st.g_s);
                        rhs[d] -= st.i_eq;
                    }
                    if let Some(s) = m.s.index() {
                        add_term(a, s, m.d, -st.g_d);
                        add_term(a, s, m.g, -st.g_g);
                        add_term(a, s, m.s, -st.g_s);
                        rhs[s] += st.i_eq;
                    }
                }
            }
        }
    }
}

fn add_term(a: &mut dyn LinearSolver, row: usize, col: NodeRef, g: f64) {
    if let Some(c) = col.index() {
        a.add(row, c, g);
    }
}

fn stamp_conductance(a: &mut dyn LinearSolver, p: NodeRef, q: NodeRef, g: f64) {
    if let Some(i) = p.index() {
        a.add(i, i, g);
        if let Some(j) = q.index() {
            a.add(i, j, -g);
        }
    }
    if let Some(j) = q.index() {
        a.add(j, j, g);
        if let Some(i) = p.index() {
            a.add(j, i, -g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::Waveshape;

    /// V --R-- out --C-- gnd : the canonical RC low-pass.
    fn rc_circuit(r: f64, c: f64, v: Waveshape) -> Circuit {
        let mut ckt = Circuit::new();
        let src = ckt.add_node("src");
        let out = ckt.add_node("out");
        ckt.add_vsource(src, NodeRef::Ground, v);
        ckt.add_resistor(src, out, r);
        ckt.add_capacitor(out, NodeRef::Ground, c);
        ckt
    }

    #[test]
    fn pre_fired_cancel_flag_stops_every_analysis() {
        let ckt = rc_circuit(1e3, 1e-9, Waveshape::Dc(1.0));
        let cancel = AtomicBool::new(true);
        let sim = Simulator::new(&ckt).with_cancel_flag(&cancel);
        assert_eq!(sim.op(), Err(SimError::Cancelled));
        assert_eq!(
            sim.transient(1e-6, 1e-9).map(|_| ()),
            Err(SimError::Cancelled)
        );
        assert_eq!(
            sim.transient_adaptive(1e-6, 1e-9, 1e-8).map(|_| ()),
            Err(SimError::Cancelled)
        );
    }

    #[test]
    fn clear_cancel_flag_changes_nothing() {
        let ckt = rc_circuit(1e3, 1e-9, Waveshape::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]));
        let cancel = AtomicBool::new(false);
        let plain = Simulator::new(&ckt).transient(1e-6, 1e-9).unwrap();
        let flagged = Simulator::new(&ckt)
            .with_cancel_flag(&cancel)
            .transient(1e-6, 1e-9)
            .unwrap();
        let a = plain.voltage_by_name("out").unwrap().value_at(5e-7);
        let b = flagged.voltage_by_name("out").unwrap().value_at(5e-7);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "cancel hook must not perturb results"
        );
    }

    #[test]
    fn dc_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.add_node("a");
        let mid = ckt.add_node("mid");
        ckt.add_vsource(a, NodeRef::Ground, Waveshape::Dc(10.0));
        ckt.add_resistor(a, mid, 1000.0);
        ckt.add_resistor(mid, NodeRef::Ground, 1000.0);
        let sim = Simulator::new(&ckt);
        let x = sim.op().unwrap();
        assert!((x[0] - 10.0).abs() < 1e-6);
        assert!((x[1] - 5.0).abs() < 1e-3);
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        // tau = 1 µs; after 1 tau the output reaches 1 - 1/e of the step.
        let r = 1e3;
        let c = 1e-9;
        let ckt = rc_circuit(r, c, Waveshape::Dc(1.0));
        // Start from a discharged capacitor: use PWL 0 -> 1 at t=0+.
        let ckt2 = rc_circuit(r, c, Waveshape::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]));
        drop(ckt);
        let sim = Simulator::new(&ckt2);
        let result = sim.transient(5e-6, 1e-8).unwrap();
        let wave = result.voltage_by_name("out").unwrap();
        let tau = r * c;
        for k in 1..=4 {
            let t = k as f64 * tau;
            let expect = 1.0 - (-(t / tau)).exp();
            let got = wave.value_at(t);
            assert!(
                (got - expect).abs() < 0.01,
                "at {k} tau: got {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn rc_charge_conservation_small_steps_vs_large() {
        let ckt = rc_circuit(1e3, 1e-9, Waveshape::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]));
        let sim = Simulator::new(&ckt);
        let fine = sim.transient(3e-6, 2e-9).unwrap();
        let coarse = sim.transient(3e-6, 5e-8).unwrap();
        let vf = fine.voltage_by_name("out").unwrap().value_at(2e-6);
        let vc = coarse.voltage_by_name("out").unwrap().value_at(2e-6);
        assert!((vf - vc).abs() < 0.02, "fine {vf} vs coarse {vc}");
    }

    #[test]
    fn nmos_inverter_dc_transfer() {
        // CMOS inverter: out high for low input, low for high input.
        use crate::devices::MosParams;
        let build = |vin: f64| {
            let mut ckt = Circuit::new();
            let vdd = ckt.add_node("vdd");
            let inp = ckt.add_node("in");
            let out = ckt.add_node("out");
            ckt.add_vsource(vdd, NodeRef::Ground, Waveshape::Dc(5.0));
            ckt.add_vsource(inp, NodeRef::Ground, Waveshape::Dc(vin));
            ckt.add_mosfet(
                out,
                inp,
                NodeRef::Ground,
                8e-6,
                2e-6,
                MosParams::nmos_default(),
            );
            ckt.add_mosfet(out, inp, vdd, 16e-6, 2e-6, MosParams::pmos_default());
            ckt
        };
        let low_in = build(0.0);
        let x = Simulator::new(&low_in).op().unwrap();
        assert!(x[2] > 4.9, "out should be high, got {}", x[2]);
        let high_in = build(5.0);
        let x = Simulator::new(&high_in).op().unwrap();
        assert!(x[2] < 0.1, "out should be low, got {}", x[2]);
        let mid_in = build(2.5);
        let x = Simulator::new(&mid_in).op().unwrap();
        assert!(x[2] > 0.5 && x[2] < 4.5, "transition region, got {}", x[2]);
    }

    #[test]
    fn nmos_depletion_inverter_levels() {
        use crate::devices::MosParams;
        // nMOS inverter: pull-down 8/2, depletion load 2/8.
        let build = |vin: f64| {
            let mut ckt = Circuit::new();
            let vdd = ckt.add_node("vdd");
            let inp = ckt.add_node("in");
            let out = ckt.add_node("out");
            ckt.add_vsource(vdd, NodeRef::Ground, Waveshape::Dc(5.0));
            ckt.add_vsource(inp, NodeRef::Ground, Waveshape::Dc(vin));
            ckt.add_mosfet(
                out,
                inp,
                NodeRef::Ground,
                8e-6,
                2e-6,
                MosParams::nmos_default(),
            );
            // Load: gate tied to source (out).
            ckt.add_mosfet(vdd, out, out, 2e-6, 8e-6, MosParams::depletion_default());
            ckt
        };
        let x = Simulator::new(&build(0.0)).op().unwrap();
        assert!(x[2] > 4.5, "nMOS high level, got {}", x[2]);
        let x = Simulator::new(&build(5.0)).op().unwrap();
        // Ratioed logic: low level is nonzero but well below threshold.
        assert!(x[2] < 1.0, "nMOS low level, got {}", x[2]);
    }

    #[test]
    fn adaptive_matches_fixed_step_on_rc() {
        let ckt = rc_circuit(1e3, 1e-9, Waveshape::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]));
        let sim = Simulator::new(&ckt);
        let tau = 1e-6;
        let fixed = sim.transient(3.0 * tau, tau / 500.0).unwrap();
        let adaptive = sim
            .transient_adaptive(3.0 * tau, tau / 20.0, tau / 2.0)
            .unwrap();
        let wf = fixed.voltage_by_name("out").unwrap();
        let wa = adaptive.voltage_by_name("out").unwrap();
        for k in 1..=5 {
            let t = k as f64 * tau / 2.0;
            assert!(
                (wf.value_at(t) - wa.value_at(t)).abs() < 0.02,
                "at {t:e}: fixed {} vs adaptive {}",
                wf.value_at(t),
                wa.value_at(t)
            );
        }
        // The output grid is uniform and complete.
        assert_eq!(adaptive.times().len(), 61);
    }

    #[test]
    fn adaptive_handles_nonlinear_inverter_edge() {
        use crate::devices::MosParams;
        let mut ckt = Circuit::new();
        let vdd = ckt.add_node("vdd");
        let inp = ckt.add_node("in");
        let out = ckt.add_node("out");
        ckt.add_vsource(vdd, NodeRef::Ground, Waveshape::Dc(5.0));
        ckt.add_vsource(inp, NodeRef::Ground, Waveshape::ramp(0.0, 5.0, 2e-9, 2e-10));
        ckt.add_mosfet(
            out,
            inp,
            NodeRef::Ground,
            8e-6,
            2e-6,
            MosParams::nmos_default(),
        );
        ckt.add_mosfet(out, inp, vdd, 16e-6, 2e-6, MosParams::pmos_default());
        ckt.add_capacitor(out, NodeRef::Ground, 100e-15);
        let sim = Simulator::new(&ckt);
        let fixed = sim.transient(8e-9, 5e-12).unwrap();
        let adaptive = sim.transient_adaptive(8e-9, 50e-12, 1e-9).unwrap();
        let t50_fixed = fixed
            .voltage_by_name("out")
            .unwrap()
            .crossing(2.5, false, 0.0)
            .unwrap();
        let t50_adaptive = adaptive
            .voltage_by_name("out")
            .unwrap()
            .crossing(2.5, false, 0.0)
            .unwrap();
        assert!(
            (t50_fixed - t50_adaptive).abs() < 50e-12,
            "fixed {t50_fixed:e} vs adaptive {t50_adaptive:e}"
        );
    }

    #[test]
    fn adaptive_rejects_bad_parameters() {
        let ckt = rc_circuit(1e3, 1e-9, Waveshape::Dc(1.0));
        let sim = Simulator::new(&ckt);
        assert!(matches!(
            sim.transient_adaptive(-1.0, 1e-9, 1e-9),
            Err(SimError::BadParameter { .. })
        ));
        assert!(matches!(
            sim.transient_adaptive(1e-6, 1e-9, 1e-11),
            Err(SimError::BadParameter { .. })
        ));
    }

    #[test]
    fn uic_transient_starts_from_given_charge() {
        // A capacitor precharged to 3 V discharging through a resistor:
        // no source, pure initial-condition decay.
        let mut ckt = Circuit::new();
        let out = ckt.add_node("out");
        ckt.add_resistor(out, NodeRef::Ground, 1e3);
        ckt.add_capacitor(out, NodeRef::Ground, 1e-9);
        let sim = Simulator::new(&ckt);
        let tau = 1e3 * 1e-9;
        let result = sim
            .transient_uic(3.0 * tau, tau / 200.0, &[(0, 3.0)])
            .unwrap();
        let wave = result.voltage_by_name("out").unwrap();
        assert!((wave.first() - 3.0).abs() < 0.05, "starts at IC");
        let expect = 3.0 * (-1.0f64).exp();
        let got = wave.value_at(tau);
        assert!((got - expect).abs() < 0.05, "decay: {got} vs {expect}");
    }

    #[test]
    fn uic_rejects_bad_node_index() {
        let mut ckt = Circuit::new();
        let out = ckt.add_node("out");
        ckt.add_capacitor(out, NodeRef::Ground, 1e-12);
        let sim = Simulator::new(&ckt);
        assert!(matches!(
            sim.transient_uic(1e-9, 1e-12, &[(5, 1.0)]),
            Err(SimError::BadNode { index: 5 })
        ));
    }

    #[test]
    fn trapezoidal_beats_backward_euler_at_coarse_steps() {
        // RC step response at one tau with a coarse grid: trapezoidal
        // (2nd order) must land much closer to the analytic value than
        // backward Euler (1st order).
        let r = 1e3;
        let c = 1e-9;
        let tau = r * c;
        let ckt = rc_circuit(r, c, Waveshape::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]));
        let analytic = 1.0 - (-1.0f64).exp();
        let dt = tau / 5.0; // deliberately coarse
        let be = Simulator::with_options(
            &ckt,
            Options {
                integration: Integration::BackwardEuler,
                ..Options::default()
            },
        );
        let tr = Simulator::with_options(
            &ckt,
            Options {
                integration: Integration::Trapezoidal,
                ..Options::default()
            },
        );
        let v_be = be
            .transient(2.0 * tau, dt)
            .unwrap()
            .voltage_by_name("out")
            .unwrap()
            .value_at(tau);
        let v_tr = tr
            .transient(2.0 * tau, dt)
            .unwrap()
            .voltage_by_name("out")
            .unwrap()
            .value_at(tau);
        let err_be = (v_be - analytic).abs();
        let err_tr = (v_tr - analytic).abs();
        assert!(
            err_tr < 0.35 * err_be,
            "trapezoidal {err_tr:.4} vs backward-euler {err_be:.4}"
        );
    }

    #[test]
    fn trapezoidal_converges_to_same_answer_as_be_at_fine_steps() {
        let ckt = rc_circuit(1e3, 1e-9, Waveshape::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]));
        let fine = 1e-8;
        let be = Simulator::new(&ckt)
            .transient(3e-6, fine)
            .unwrap()
            .voltage_by_name("out")
            .unwrap()
            .value_at(2e-6);
        let tr = Simulator::with_options(
            &ckt,
            Options {
                integration: Integration::Trapezoidal,
                ..Options::default()
            },
        )
        .transient(3e-6, fine)
        .unwrap()
        .voltage_by_name("out")
        .unwrap()
        .value_at(2e-6);
        assert!((be - tr).abs() < 5e-3, "be {be} vs trap {tr}");
    }

    #[test]
    fn trapezoidal_handles_nonlinear_inverter() {
        use crate::devices::MosParams;
        let mut ckt = Circuit::new();
        let vdd = ckt.add_node("vdd");
        let inp = ckt.add_node("in");
        let out = ckt.add_node("out");
        ckt.add_vsource(vdd, NodeRef::Ground, Waveshape::Dc(5.0));
        ckt.add_vsource(inp, NodeRef::Ground, Waveshape::ramp(0.0, 5.0, 1e-9, 5e-10));
        ckt.add_mosfet(
            out,
            inp,
            NodeRef::Ground,
            8e-6,
            2e-6,
            MosParams::nmos_default(),
        );
        ckt.add_mosfet(out, inp, vdd, 16e-6, 2e-6, MosParams::pmos_default());
        ckt.add_capacitor(out, NodeRef::Ground, 100e-15);
        let sim = Simulator::with_options(
            &ckt,
            Options {
                integration: Integration::Trapezoidal,
                ..Options::default()
            },
        );
        let result = sim.transient(6e-9, 10e-12).unwrap();
        let out_wave = result.voltage_by_name("out").unwrap();
        assert!(out_wave.first() > 4.9);
        assert!(out_wave.last() < 0.2);
    }

    #[test]
    fn transient_rejects_bad_parameters() {
        let ckt = rc_circuit(1e3, 1e-9, Waveshape::Dc(1.0));
        let sim = Simulator::new(&ckt);
        assert!(matches!(
            sim.transient(-1.0, 1e-9),
            Err(SimError::BadParameter { .. })
        ));
        assert!(matches!(
            sim.transient(1e-6, 0.0),
            Err(SimError::BadParameter { .. })
        ));
        assert!(matches!(
            sim.transient(1e-6, 1.0),
            Err(SimError::BadParameter { .. })
        ));
    }

    #[test]
    fn floating_node_is_singular() {
        let mut ckt = Circuit::new();
        let a = ckt.add_node("a");
        let b = ckt.add_node("b");
        ckt.add_vsource(a, NodeRef::Ground, Waveshape::Dc(1.0));
        // `b` has no DC path at all — with gmin it still solves, so check
        // that gmin keeps it at 0.
        let _ = b;
        let sim = Simulator::new(&ckt);
        let x = sim.op().unwrap();
        assert!((x[1]).abs() < 1e-9);
    }

    #[test]
    fn pulse_drives_transient() {
        let ckt = rc_circuit(
            1e3,
            1e-9,
            Waveshape::Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 2e-6,
                period: f64::INFINITY,
            },
        );
        let sim = Simulator::new(&ckt);
        let result = sim.transient(5e-6, 1e-8).unwrap();
        let out = result.voltage_by_name("out").unwrap();
        assert!(out.value_at(0.9e-6) < 0.01); // before pulse
        assert!(out.value_at(3.0e-6) > 0.8); // charged during pulse
        assert!(out.value_at(5.0e-6) < 0.5); // discharging after
    }

    /// A CMOS inverter mid-transition: nonlinear enough that Newton needs
    /// several iterations, so a starved budget genuinely fails.
    fn inverter_circuit(vin: f64) -> Circuit {
        use crate::devices::MosParams;
        let mut ckt = Circuit::new();
        let vdd = ckt.add_node("vdd");
        let inp = ckt.add_node("in");
        let out = ckt.add_node("out");
        ckt.add_vsource(vdd, NodeRef::Ground, Waveshape::Dc(5.0));
        ckt.add_vsource(inp, NodeRef::Ground, Waveshape::Dc(vin));
        ckt.add_mosfet(
            out,
            inp,
            NodeRef::Ground,
            8e-6,
            2e-6,
            MosParams::nmos_default(),
        );
        ckt.add_mosfet(out, inp, vdd, 16e-6, 2e-6, MosParams::pmos_default());
        ckt
    }

    fn starved_options() -> Options {
        Options {
            max_nr_iterations: 1,
            ..Options::default()
        }
    }

    #[test]
    fn starved_op_fails_without_rescue() {
        let ckt = inverter_circuit(2.5);
        let sim = Simulator::with_options(&ckt, starved_options());
        assert!(sim.op().is_err());
        let err = sim
            .op_recovered(&crate::recovery::RecoveryPolicy::disabled())
            .expect_err("disabled policy must pass the failure through");
        assert!(matches!(err, SimError::NoConvergence { .. }), "{err:?}");
    }

    #[test]
    fn starved_op_rescued_by_default_policy() {
        let ckt = inverter_circuit(2.5);
        let starved = Simulator::with_options(&ckt, starved_options());
        let policy = crate::recovery::RecoveryPolicy::default();
        let (x, log) = starved.op_recovered(&policy).expect("ladder converges");
        assert!(log.needed_rescue());
        assert_eq!(
            log.succeeded_with(),
            Some(crate::recovery::RescueStrategy::GminStepping)
        );
        // The rescued solution matches the unconstrained solve.
        let reference = Simulator::new(&ckt).op().expect("healthy solve");
        for (a, b) in x.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-3, "rescued {a} vs reference {b}");
        }
    }

    #[test]
    fn healthy_op_needs_no_rescue() {
        let ckt = inverter_circuit(0.0);
        let sim = Simulator::new(&ckt);
        let (_, log) = sim
            .op_recovered(&crate::recovery::RecoveryPolicy::default())
            .expect("converges directly");
        assert!(!log.needed_rescue());
        assert_eq!(log.to_string(), "no rescue needed");
    }

    #[test]
    fn impossible_tolerance_exhausts_the_ladder() {
        // abstol = reltol = 0 makes the convergence test unsatisfiable, so
        // every rung fails and the typed exhaustion error lists them all.
        let ckt = inverter_circuit(2.5);
        let sim = Simulator::with_options(
            &ckt,
            Options {
                abstol: 0.0,
                reltol: 0.0,
                max_nr_iterations: 5,
                ..Options::default()
            },
        );
        let err = sim
            .op_recovered(&crate::recovery::RecoveryPolicy::default())
            .expect_err("cannot converge");
        match err {
            SimError::RecoveryExhausted { attempts } => {
                assert_eq!(
                    attempts,
                    vec![
                        crate::recovery::RescueStrategy::GminStepping,
                        crate::recovery::RescueStrategy::SourceStepping,
                    ]
                );
            }
            other => panic!("expected RecoveryExhausted, got {other:?}"),
        }
    }

    #[test]
    fn starved_transient_rescued_matches_healthy_run() {
        // An inverter driven through its switching edge: the starved
        // budget fails every step, the ladder still completes the run and
        // lands on the same waveform as a healthy simulator.
        use crate::devices::MosParams;
        let mut ckt = Circuit::new();
        let vdd = ckt.add_node("vdd");
        let inp = ckt.add_node("in");
        let out = ckt.add_node("out");
        ckt.add_vsource(vdd, NodeRef::Ground, Waveshape::Dc(5.0));
        ckt.add_vsource(inp, NodeRef::Ground, Waveshape::ramp(0.0, 5.0, 1e-9, 5e-10));
        ckt.add_mosfet(
            out,
            inp,
            NodeRef::Ground,
            8e-6,
            2e-6,
            MosParams::nmos_default(),
        );
        ckt.add_mosfet(out, inp, vdd, 16e-6, 2e-6, MosParams::pmos_default());
        ckt.add_capacitor(out, NodeRef::Ground, 100e-15);

        let policy = crate::recovery::RecoveryPolicy::default();
        let starved = Simulator::with_options(&ckt, starved_options());
        assert!(starved.transient(6e-9, 10e-12).is_err());
        let (result, log) = starved
            .transient_recovered(6e-9, 10e-12, &policy)
            .expect("ladder completes the run");
        assert!(log.needed_rescue());
        assert!(log.succeeded_with().is_some());

        let healthy = Simulator::new(&ckt).transient(6e-9, 10e-12).unwrap();
        let w_rescued = result.voltage_by_name("out").unwrap();
        let w_healthy = healthy.voltage_by_name("out").unwrap();
        for k in 1..=5 {
            let t = k as f64 * 1e-9;
            assert!(
                (w_rescued.value_at(t) - w_healthy.value_at(t)).abs() < 0.05,
                "at {t:e}: rescued {} vs healthy {}",
                w_rescued.value_at(t),
                w_healthy.value_at(t)
            );
        }
    }

    #[test]
    fn healthy_transient_recovered_logs_nothing() {
        let ckt = rc_circuit(1e3, 1e-9, Waveshape::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]));
        let sim = Simulator::new(&ckt);
        let (result, log) = sim
            .transient_recovered(3e-6, 1e-8, &crate::recovery::RecoveryPolicy::default())
            .unwrap();
        assert!(!log.needed_rescue());
        let plain = sim.transient(3e-6, 1e-8).unwrap();
        let a = result.voltage_by_name("out").unwrap().value_at(2e-6);
        let b = plain.voltage_by_name("out").unwrap().value_at(2e-6);
        assert!((a - b).abs() < 1e-9, "recovered path must not perturb");
    }

    #[test]
    fn unknown_signal_error() {
        let ckt = rc_circuit(1e3, 1e-9, Waveshape::Dc(1.0));
        let sim = Simulator::new(&ckt);
        let result = sim.transient(1e-6, 1e-8).unwrap();
        assert!(matches!(
            result.voltage_by_name("nope"),
            Err(SimError::UnknownSignal { .. })
        ));
    }

    #[test]
    fn newton_loop_never_copies_the_matrix() {
        // The nonlinear inverter takes several Newton iterations; the old
        // hot loop cloned the full dense matrix on every one of them
        // (`LuFactors::factor(a.clone())`). The counter is thread-local,
        // so parallel tests cannot perturb the delta.
        let ckt = inverter_circuit(2.5);
        let sim = Simulator::new(&ckt);
        let before = crate::matrix::matrix_copy_count();
        let x = sim.op().unwrap();
        assert!(x[2] > 0.5 && x[2] < 4.5, "sanity: mid-transition output");
        let copies = crate::matrix::matrix_copy_count() - before;
        assert_eq!(copies, 0, "Newton loop made {copies} matrix copies");

        // Transient steps must not copy either.
        let before = crate::matrix::matrix_copy_count();
        let ckt2 = rc_circuit(1e3, 1e-9, Waveshape::Pwl(vec![(0.0, 0.0), (1e-12, 1.0)]));
        Simulator::new(&ckt2).transient(1e-6, 1e-8).unwrap();
        let copies = crate::matrix::matrix_copy_count() - before;
        assert_eq!(copies, 0, "transient made {copies} matrix copies");
    }

    #[test]
    fn sparse_solver_matches_dense_on_nonlinear_op_and_transient() {
        // Same circuit solved with both backends explicitly: voltages
        // must agree to far better than the Newton tolerance.
        use crate::devices::MosParams;
        let mut ckt = Circuit::new();
        let vdd = ckt.add_node("vdd");
        let inp = ckt.add_node("in");
        let mid = ckt.add_node("mid");
        let out = ckt.add_node("out");
        ckt.add_vsource(vdd, NodeRef::Ground, Waveshape::Dc(5.0));
        ckt.add_vsource(inp, NodeRef::Ground, Waveshape::ramp(0.0, 5.0, 1e-9, 5e-10));
        for (i, o) in [(inp, mid), (mid, out)] {
            ckt.add_mosfet(o, i, NodeRef::Ground, 8e-6, 2e-6, MosParams::nmos_default());
            ckt.add_mosfet(o, i, vdd, 16e-6, 2e-6, MosParams::pmos_default());
        }
        ckt.add_capacitor(mid, NodeRef::Ground, 50e-15);
        ckt.add_capacitor(out, NodeRef::Ground, 100e-15);

        let dense = Simulator::with_options(
            &ckt,
            Options {
                solver: SolverChoice::Dense,
                ..Options::default()
            },
        );
        let sparse = Simulator::with_options(
            &ckt,
            Options {
                solver: SolverChoice::Sparse,
                ..Options::default()
            },
        );
        let xd = dense.op().unwrap();
        let xs = sparse.op().unwrap();
        for (i, (a, b)) in xd.iter().zip(&xs).enumerate() {
            assert!((a - b).abs() < 1e-9, "op unknown {i}: dense {a} sparse {b}");
        }
        let td = dense.transient(4e-9, 20e-12).unwrap();
        let ts = sparse.transient(4e-9, 20e-12).unwrap();
        for probe in ["mid", "out"] {
            let wd = td.voltage_by_name(probe).unwrap();
            let ws = ts.voltage_by_name(probe).unwrap();
            for k in 1..=8 {
                let t = k as f64 * 0.5e-9;
                assert!(
                    (wd.value_at(t) - ws.value_at(t)).abs() < 1e-6,
                    "{probe} at {t:e}: dense {} sparse {}",
                    wd.value_at(t),
                    ws.value_at(t)
                );
            }
        }
    }
}
