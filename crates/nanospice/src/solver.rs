//! The `LinearSolver` trait: one assembly/factor/solve interface over
//! interchangeable dense and sparse LU backends.
//!
//! The MNA system's sparsity pattern is fixed per (circuit, analysis
//! mode), so the lifecycle is: create one solver per analysis, then per
//! Newton iteration call [`LinearSolver::begin`], stamp with
//! [`LinearSolver::add`], [`LinearSolver::factor`], and
//! [`LinearSolver::solve_in_place`]. Backends exploit the repetition —
//! the dense path reuses its matrix and permutation allocations, the
//! sparse path ([`SparseLu`]) additionally reuses its symbolic
//! analysis (fill pattern, elimination order, pivot sequence) so that
//! iterations after the first are value-only refactorizations.

use crate::error::SimError;
use crate::matrix::{lu_factor_in_place, lu_solve_in_place, Matrix};
use crate::sparse::SparseLu;

/// Unknown count at or below which [`SolverChoice::Auto`] picks the
/// dense backend. Dense LU is O(n³) but cache-friendly with zero
/// symbolic overhead; profiling across the generator circuits puts the
/// crossover in the dozens of unknowns.
pub const DENSE_SPARSE_THRESHOLD: usize = 64;

/// Which linear-solver backend the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SolverChoice {
    /// Dense at or below [`DENSE_SPARSE_THRESHOLD`] unknowns, sparse above.
    #[default]
    Auto,
    /// Always dense LU — the small-circuit fast path and the differential
    /// test oracle.
    Dense,
    /// Always CSC sparse LU with pattern reuse.
    Sparse,
}

/// A direct solver for one fixed-size linear system `A·x = b`, reused
/// across many assemble/factor/solve rounds.
pub trait LinearSolver {
    /// Dimension of the square system.
    fn dim(&self) -> usize;

    /// Starts a fresh assembly: every coefficient returns to zero while
    /// allocations (and, for the sparse backend, the symbolic pattern)
    /// are kept.
    fn begin(&mut self);

    /// Adds `v` to entry `(r, c)` — the MNA stamp primitive.
    ///
    /// # Panics
    /// Panics if `r` or `c` is out of bounds.
    fn add(&mut self, r: usize, c: usize, v: f64);

    /// Factors the assembled matrix.
    ///
    /// # Errors
    /// Returns [`SimError::SingularMatrix`] when some column has no
    /// usable pivot relative to its scale (see
    /// [`REL_PIVOT_MIN`](crate::matrix::REL_PIVOT_MIN)).
    fn factor(&mut self) -> Result<(), SimError>;

    /// Solves with the factors from the last successful [`Self::factor`],
    /// overwriting `b` with the solution.
    ///
    /// # Panics
    /// Panics if `b.len() != self.dim()` or no factorization is current.
    fn solve_in_place(&mut self, b: &mut [f64]);

    /// Short backend name for diagnostics ("dense" / "sparse").
    fn name(&self) -> &'static str;
}

impl std::fmt::Debug for dyn LinearSolver + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LinearSolver({}, n={})", self.name(), self.dim())
    }
}

/// Creates the backend for an `n`-unknown system according to `choice`.
pub fn create_solver(choice: SolverChoice, n: usize) -> Box<dyn LinearSolver> {
    match choice {
        SolverChoice::Dense => Box::new(DenseSolver::new(n)),
        SolverChoice::Sparse => Box::new(SparseLu::new(n)),
        SolverChoice::Auto if n <= DENSE_SPARSE_THRESHOLD => Box::new(DenseSolver::new(n)),
        SolverChoice::Auto => Box::new(SparseLu::new(n)),
    }
}

/// Dense LU behind the [`LinearSolver`] interface: owns the matrix, the
/// permutation, and the substitution scratch, so the whole
/// begin/stamp/factor/solve round trip allocates nothing.
#[derive(Debug)]
pub struct DenseSolver {
    a: Matrix,
    perm: Vec<usize>,
    col_scale: Vec<f64>,
    scratch: Vec<f64>,
    factored: bool,
}

impl DenseSolver {
    /// Creates a dense solver for an `n × n` system.
    pub fn new(n: usize) -> DenseSolver {
        DenseSolver {
            a: Matrix::zeros(n, n),
            perm: Vec::with_capacity(n),
            col_scale: Vec::with_capacity(n),
            scratch: Vec::with_capacity(n),
            factored: false,
        }
    }
}

impl LinearSolver for DenseSolver {
    fn dim(&self) -> usize {
        self.a.rows()
    }

    fn begin(&mut self) {
        self.a.clear();
        self.factored = false;
    }

    fn add(&mut self, r: usize, c: usize, v: f64) {
        self.a.add(r, c, v);
    }

    fn factor(&mut self) -> Result<(), SimError> {
        lu_factor_in_place(&mut self.a, &mut self.perm, &mut self.col_scale)?;
        self.factored = true;
        Ok(())
    }

    fn solve_in_place(&mut self, b: &mut [f64]) {
        assert!(self.factored, "solve_in_place before a successful factor");
        lu_solve_in_place(&self.a, &self.perm, b, &mut self.scratch);
    }

    fn name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{matrix_copy_count, LuFactors};

    #[test]
    fn auto_picks_dense_small_sparse_large() {
        assert_eq!(create_solver(SolverChoice::Auto, 8).name(), "dense");
        assert_eq!(
            create_solver(SolverChoice::Auto, DENSE_SPARSE_THRESHOLD).name(),
            "dense"
        );
        assert_eq!(
            create_solver(SolverChoice::Auto, DENSE_SPARSE_THRESHOLD + 1).name(),
            "sparse"
        );
        assert_eq!(create_solver(SolverChoice::Dense, 1000).name(), "dense");
        assert_eq!(create_solver(SolverChoice::Sparse, 2).name(), "sparse");
    }

    #[test]
    fn dense_round_trip_matches_lufactors_bitwise() {
        // The trait path must produce the identical bits to the historical
        // LuFactors oracle — small-circuit arrivals depend on it.
        let stamps = [
            (0usize, 0usize, 2.0),
            (0, 1, -1.0),
            (1, 0, -1.0),
            (1, 1, 3.0),
            (1, 2, -0.5),
            (2, 1, -0.5),
            (2, 2, 1.25),
        ];
        let b = [1.0, 0.25, -2.0];

        let mut reference = Matrix::zeros(3, 3);
        for &(r, c, v) in &stamps {
            reference.add(r, c, v);
        }
        let oracle = LuFactors::factor(reference).unwrap().solve(&b);

        let mut solver = DenseSolver::new(3);
        for round in 0..3 {
            solver.begin();
            for &(r, c, v) in &stamps {
                solver.add(r, c, v);
            }
            solver.factor().unwrap();
            let mut x = b.to_vec();
            solver.solve_in_place(&mut x);
            for (p, q) in oracle.iter().zip(&x) {
                assert_eq!(p.to_bits(), q.to_bits(), "round {round}");
            }
        }
    }

    #[test]
    fn dense_round_trip_never_copies_the_matrix() {
        let mut solver = DenseSolver::new(4);
        let before = matrix_copy_count();
        for _ in 0..5 {
            solver.begin();
            for i in 0..4 {
                solver.add(i, i, 2.0 + i as f64);
            }
            solver.factor().unwrap();
            let mut x = vec![1.0; 4];
            solver.solve_in_place(&mut x);
        }
        assert_eq!(matrix_copy_count(), before);
    }

    #[test]
    fn dense_reports_singular() {
        let mut solver = DenseSolver::new(2);
        solver.begin();
        solver.add(0, 0, 1.0);
        solver.add(0, 1, 2.0);
        solver.add(1, 0, 2.0);
        solver.add(1, 1, 4.0);
        assert!(matches!(
            solver.factor(),
            Err(SimError::SingularMatrix { .. })
        ));
    }
}
