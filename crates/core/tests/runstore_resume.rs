//! Kill-and-resume and regression-diff property tests for the run store.
//!
//! Mirrors `durable_resume.rs` for run records: a reference record of a
//! real analysis is written, then truncated at every byte offset —
//! simulating a `SIGKILL` landing mid-append — and each wreck is
//! resumed. Every resume must restore the reference file bit-identically.
//! On top of that, golden diff checks: a re-analysis under the same
//! configuration must diff clean, and a 2x model fault injected into the
//! recording must trip the timing threshold with per-node deltas.

use crystal::analyzer::{analyze, AnalyzerOptions};
use crystal::durable::scenario_summary;
use crystal::fingerprint::run_fingerprint;
use crystal::runstore::{self, new_meta, DiffThresholds, DiffVerdict, RunRecord, RunStore};
use crystal::selfcheck::standard_scenarios;
use crystal::tech::Technology;
use crystal::ModelKind;
use mosnet::units::Seconds;
use mosnet::Network;
use std::collections::HashMap;
use std::path::PathBuf;

const CHAIN: &str = "| three inverters\ni a\no y\n\
    n a m gnd 2 8\np a m vdd 2 16\nC m 20\n\
    n m w gnd 2 8\np m w vdd 2 16\nC w 35\n\
    n w y gnd 2 8\np w y vdd 2 16\nC y 100\n";

fn chain() -> Network {
    mosnet::sim_format::parse(CHAIN, "chain").expect("fixture parses")
}

fn temp_db(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "crystal_runstore_resume_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Analyzes the fixture and builds a full run record (arrivals, digests,
/// exit footer), optionally with a recording-layer model fault.
fn record_of(net: &Network, inject: Option<(ModelKind, f64)>) -> RunRecord {
    let tech = Technology::nominal();
    let options = AnalyzerOptions::default();
    let fingerprint = run_fingerprint(net, &tech, ModelKind::Slope, &options);
    let mut record = RunRecord::new(new_meta("batch", fingerprint, "slope", 1));
    for (label, scenario) in standard_scenarios(net, &HashMap::new(), Seconds::ZERO) {
        let result = analyze(net, &tech, ModelKind::Slope, &scenario).expect("analysis succeeds");
        record.push_result(
            net,
            &label,
            &result,
            &scenario_summary(net, &result),
            inject,
        );
    }
    record.exit = Some(runstore::ExitRow {
        status: "ok".to_string(),
        code: 0,
        wall_us: 1234,
    });
    record
}

#[test]
fn torn_tail_resume_is_bit_identical_at_every_offset() {
    let net = chain();
    let record = record_of(&net, None);
    let store = RunStore::open(&temp_db("torn")).expect("store opens");
    let reference_path = store.record(&record).expect("record writes");
    let reference = std::fs::read(&reference_path).expect("reference reads");
    assert!(
        reference.len() > 200,
        "fixture record should be non-trivial, got {} bytes",
        reference.len()
    );

    let wreck = reference_path.with_extension("wreck.run");
    for cut in 0..reference.len() {
        std::fs::write(&wreck, &reference[..cut]).expect("wreck writes");
        store
            .resume(&wreck, &record)
            .unwrap_or_else(|e| panic!("resume at offset {cut} failed: {e}"));
        let resumed = std::fs::read(&wreck).expect("resumed file reads");
        assert_eq!(
            resumed, reference,
            "resume at offset {cut} is not bit-identical"
        );
    }
    let _ = std::fs::remove_dir_all(store.dir());
}

#[test]
fn reanalysis_under_same_config_diffs_clean() {
    let net = chain();
    let a = record_of(&net, None);
    let b = record_of(&net, None);
    let d = runstore::diff(&a, &b);
    assert!(d.digest_mismatches.is_empty(), "{:?}", d.digest_mismatches);
    assert!(d.node_deltas.is_empty(), "{:?}", d.node_deltas);
    assert_eq!(d.max_timing_pct, 0.0);
    assert_eq!(
        d.verdict(&DiffThresholds {
            timing_pct: Some(0.5),
            perf_pct: None,
            digest: true,
        }),
        DiffVerdict::Clean
    );
}

#[test]
fn injected_model_fault_trips_timing_threshold() {
    let net = chain();
    let a = record_of(&net, None);
    let b = record_of(&net, Some((ModelKind::Slope, 2.0)));
    let d = runstore::diff(&a, &b);
    assert!(
        !d.digest_mismatches.is_empty(),
        "a 2x fault must change digests"
    );
    assert!(
        !d.node_deltas.is_empty(),
        "per-node deltas must be reported"
    );
    // Every non-zero arrival exactly doubles, so the worst relative
    // change is exactly +100%.
    assert!(
        (d.max_timing_pct - 100.0).abs() < 1e-9,
        "worst delta {} should be +100%",
        d.max_timing_pct
    );
    for delta in &d.node_deltas {
        assert!(delta.b_ns > delta.a_ns, "{delta:?} should regress");
    }
    assert_eq!(
        d.verdict(&DiffThresholds {
            timing_pct: Some(0.5),
            perf_pct: None,
            digest: false,
        }),
        DiffVerdict::TimingRegression
    );
    // Report-only digests: without a timing threshold the mismatches
    // alone do not trip the gate unless explicitly requested.
    assert_eq!(
        d.verdict(&DiffThresholds {
            timing_pct: None,
            perf_pct: None,
            digest: false,
        }),
        DiffVerdict::Clean
    );
    assert_eq!(
        d.verdict(&DiffThresholds {
            timing_pct: None,
            perf_pct: None,
            digest: true,
        }),
        DiffVerdict::DigestMismatch
    );
}
