//! Walks `examples/netlists/malformed/` and asserts every file is
//! rejected by its parser with a line-and-column diagnostic — and that
//! no parser panics on hostile input.

use std::fs;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/netlists/malformed")
}

#[test]
fn every_malformed_file_is_rejected_with_a_located_diagnostic() {
    let dir = corpus_dir();
    let mut checked = 0usize;
    for entry in fs::read_dir(&dir).expect("malformed corpus directory exists") {
        let path = entry.expect("readable entry").path();
        let ext = match path.extension().and_then(|e| e.to_str()) {
            Some(e) => e.to_string(),
            None => continue,
        };
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let text = fs::read_to_string(&path).expect("readable corpus file");
        let message = match ext.as_str() {
            "sim" => {
                let caught = std::panic::catch_unwind(|| mosnet::sim_format::parse(&text, &name));
                let result = caught.unwrap_or_else(|_| panic!("{name}: parser panicked"));
                let err = result.expect_err(&format!("{name}: parser accepted malformed input"));
                err.to_string()
            }
            "sp" => {
                let caught = std::panic::catch_unwind(|| mosnet::spice_format::parse(&text, &name));
                let result = caught.unwrap_or_else(|_| panic!("{name}: parser panicked"));
                let err = result.expect_err(&format!("{name}: parser accepted malformed input"));
                err.to_string()
            }
            "tech" => {
                let caught = std::panic::catch_unwind(|| crystal::tech_format::parse(&text));
                let result = caught.unwrap_or_else(|_| panic!("{name}: parser panicked"));
                let err = result.expect_err(&format!("{name}: parser accepted malformed input"));
                err.to_string()
            }
            _ => continue, // README.md and friends
        };
        assert!(
            message.contains("line ") && message.contains("column "),
            "{name}: diagnostic lacks line/column: {message}"
        );
        checked += 1;
    }
    assert!(
        checked >= 13,
        "corpus shrank: only {checked} malformed files checked"
    );
}
