//! Compaction crash-consistency and resume-equivalence tests for
//! `crystal::session`.
//!
//! Compaction rewrites a session journal as a checkpoint header plus an
//! empty tail via write-temp/fsync/rename. The crash states a SIGKILL
//! can physically leave behind are therefore:
//!
//! * the **original journal** plus a `.tmp` checkpoint truncated at any
//!   byte offset (the rename never happened) — pre-compaction state;
//! * the **complete checkpoint** at the journal path (the rename
//!   happened; the temp was fsync'd before it, so a renamed file is
//!   never torn) — post-compaction state.
//!
//! Either way a resume must reproduce bit-identical digests; only the
//! replay *work* differs, which is exactly what compaction is for.

use std::path::{Path, PathBuf};

use crystal::analyzer::AnalyzerOptions;
use crystal::durable::JournalFaultPlan;
use crystal::session::SESSION_JOURNAL_EXT;
use crystal::tech::Technology;
use crystal::{Session, SessionConfig, SessionManager};

const INVERTER_CHAIN: &str = "| two inverters\n\
i a\n\
o y\n\
n a m gnd 2 8\n\
p a m vdd 2 16\n\
C m 20\n\
n m y gnd 2 8\n\
p m y vdd 2 16\n\
C y 100\n";

const EDITS: [&str; 3] = ["resize a m gnd 4 8", "cap y 150", "cap m 40"];

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "crystal_compact_{name}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn open_session(dir: &Path, id: &str) -> Session {
    Session::open(
        id,
        INVERTER_CHAIN,
        "chain.sim",
        &Technology::nominal(),
        &SessionConfig::default(),
        AnalyzerOptions::default(),
        Some(&dir.join(format!("{id}.{SESSION_JOURNAL_EXT}"))),
        &JournalFaultPlan::none(),
    )
    .expect("opens")
}

fn threaded(threads: usize) -> AnalyzerOptions {
    AnalyzerOptions {
        threads,
        ..AnalyzerOptions::default()
    }
}

/// `(journal bytes before compaction, bytes after, final digest,
/// scenario rows)` — what [`edited_then_compacted`] hands back.
type CompactedFixture = (Vec<u8>, Vec<u8>, u64, Vec<(String, u64, String)>);

/// Builds a journal with three applied edits and returns the bytes on
/// disk before and after compaction plus the expected results.
fn edited_then_compacted(dir: &Path) -> CompactedFixture {
    let path = dir.join(format!("s1.{SESSION_JOURNAL_EXT}"));
    let mut session = open_session(dir, "s1");
    for edit in EDITS {
        session.apply_script(edit, None).expect("edit applies");
    }
    let digest = session.digest();
    let rows = session.scenario_rows();
    let pre = std::fs::read(&path).expect("journal readable");
    session.compact(&Technology::nominal()).expect("compacts");
    assert_eq!(session.digest(), digest, "compaction never changes state");
    assert_eq!(session.base_seq(), 3);
    assert_eq!(session.edits_since_checkpoint(), 0);
    drop(session);
    let post = std::fs::read(&path).expect("checkpoint readable");
    (pre, post, digest, rows)
}

#[test]
fn compaction_crash_states_all_resume_bit_identically() {
    let dir = temp_dir("crash");
    let (pre, post, digest, rows) = edited_then_compacted(&dir);
    let path = dir.join(format!("s1.{SESSION_JOURNAL_EXT}"));
    let tmp = dir.join(format!("s1.{SESSION_JOURNAL_EXT}.tmp"));
    assert!(
        post.len() < pre.len(),
        "three edits folded into a checkpoint should shrink the journal"
    );

    // Crash family A: the temp checkpoint exists, truncated at every
    // byte offset, and the rename never happened. Recovery must sweep
    // the temp and resume the *pre*-compaction journal: full replay,
    // identical digests.
    let mut cuts: Vec<usize> = (0..post.len()).step_by(23).collect();
    cuts.extend([1, post.len() - 1, post.len()]);
    for cut in cuts {
        std::fs::write(&path, &pre).expect("restore original journal");
        std::fs::write(&tmp, &post[..cut]).expect("write torn temp");
        let manager = SessionManager::new(
            Technology::nominal(),
            Some(dir.clone()),
            4,
            JournalFaultPlan::none(),
        )
        .expect("manager");
        let report = manager.recover(&AnalyzerOptions::default());
        assert_eq!(report.recovered, vec!["s1"], "cut at {cut}: {report:?}");
        assert_eq!(report.edits_replayed, 3, "pre-compaction replay is full");
        assert!(!tmp.exists(), "cut at {cut}: stray temp not swept");
        let session = manager.get("s1").expect("registered");
        let session = session.lock().expect("lock");
        assert_eq!(session.digest(), digest, "cut at {cut}");
        assert_eq!(session.scenario_rows(), rows, "cut at {cut}");
        assert_eq!(session.edits_applied(), 3, "cut at {cut}");
        assert_eq!(session.base_seq(), 0, "pre-compaction state");
    }

    // Crash family B: the rename happened (the checkpoint is complete
    // by construction — it was fsync'd before the rename). Resume is
    // O(edits since checkpoint) = 0 replayed edits, same digests.
    std::fs::write(&path, &post).expect("write checkpoint");
    let resumed = Session::resume(
        &path,
        &Technology::nominal(),
        AnalyzerOptions::default(),
        &JournalFaultPlan::none(),
    )
    .expect("checkpoint resumes");
    assert_eq!(resumed.digest(), digest);
    assert_eq!(resumed.scenario_rows(), rows);
    assert_eq!(resumed.edits_applied(), 3, "seq continues past checkpoint");
    assert_eq!(resumed.base_seq(), 3);
    assert_eq!(resumed.edits_replayed(), 0, "replay cost is O(tail)");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compacted_journal_with_torn_tail_drops_only_the_torn_edit() {
    let dir = temp_dir("tail");
    let path = dir.join(format!("s1.{SESSION_JOURNAL_EXT}"));
    let mut session = open_session(&dir, "s1");
    session.apply_script(EDITS[0], None).expect("edit 1");
    session.compact(&Technology::nominal()).expect("compacts");
    let checkpoint_digest = session.digest();
    session.apply_script(EDITS[1], None).expect("edit 2");
    let full_digest = session.digest();
    drop(session);

    let bytes = std::fs::read(&path).expect("journal readable");
    let header_end = bytes.iter().position(|&b| b == b'\n').expect("header") + 1;

    // A torn tail record after the checkpoint: the unacknowledged edit
    // is dropped, the checkpoint state survives.
    for cut in [header_end + 1, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).expect("write torn journal");
        let resumed = Session::resume(
            &path,
            &Technology::nominal(),
            AnalyzerOptions::default(),
            &JournalFaultPlan::none(),
        )
        .expect("torn tail resumes");
        assert_eq!(resumed.digest(), checkpoint_digest, "cut at {cut}");
        assert_eq!(resumed.edits_replayed(), 0, "cut at {cut}");
        assert_eq!(resumed.base_seq(), 1, "cut at {cut}");
    }

    // The intact journal replays exactly the one post-checkpoint edit.
    std::fs::write(&path, &bytes).expect("restore journal");
    let resumed = Session::resume(
        &path,
        &Technology::nominal(),
        AnalyzerOptions::default(),
        &JournalFaultPlan::none(),
    )
    .expect("resumes");
    assert_eq!(resumed.digest(), full_digest);
    assert_eq!(resumed.edits_replayed(), 1, "O(edits since checkpoint)");
    assert_eq!(resumed.edits_applied(), 2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compacted_resume_is_bit_identical_across_thread_counts() {
    let dir = temp_dir("threads");
    let (pre, post, digest, rows) = edited_then_compacted(&dir);
    let path = dir.join(format!("s1.{SESSION_JOURNAL_EXT}"));

    // The compacted and uncompacted journals must resume to the same
    // digests, DeltaReports, and scenario rows at 1 and 4 threads.
    for threads in [1usize, 4] {
        let mut resumed_from = Vec::new();
        for (label, bytes) in [("uncompacted", &pre), ("compacted", &post)] {
            std::fs::write(&path, bytes).expect("write journal");
            let mut session = Session::resume(
                &path,
                &Technology::nominal(),
                threaded(threads),
                &JournalFaultPlan::none(),
            )
            .unwrap_or_else(|e| panic!("{label} at {threads} threads: {e}"));
            assert_eq!(session.digest(), digest, "{label} at {threads} threads");
            assert_eq!(
                session.scenario_rows(),
                rows,
                "{label} at {threads} threads"
            );
            // The same follow-up edit must produce the same DeltaReport
            // whichever journal the session came back from.
            let delta = session
                .apply_script("cap y 200", None)
                .expect("follow-up edit");
            resumed_from.push((session.digest(), delta.to_string()));
        }
        let [(digest_a, delta_a), (digest_b, delta_b)] = resumed_from.as_slice() else {
            unreachable!("two journals resumed");
        };
        assert_eq!(digest_a, digest_b, "{threads} threads: digests diverged");
        assert_eq!(delta_a, delta_b, "{threads} threads: DeltaReports diverged");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn degraded_sessions_stay_usable_but_ephemeral() {
    let dir = temp_dir("degraded");
    let path = dir.join(format!("s1.{SESSION_JOURNAL_EXT}"));
    // Header write + first edit succeed, then every journal write fails.
    let faults = JournalFaultPlan::none().fail_writes_after(2);
    let mut session = Session::open(
        "s1",
        INVERTER_CHAIN,
        "chain.sim",
        &Technology::nominal(),
        &SessionConfig::default(),
        AnalyzerOptions::default(),
        Some(&path),
        &faults,
    )
    .expect("opens");
    session
        .apply_script(EDITS[0], None)
        .expect("journaled edit");
    let journaled_digest = session.digest();
    assert!(session.degraded().is_none());

    // The failing write degrades the session: the edit *is* applied in
    // memory, the error names the journal, and journaling stops.
    let err = session
        .apply_script(EDITS[1], None)
        .expect_err("journal write fails");
    let message = err.to_string();
    assert!(message.contains("storage failure"), "got: {message}");
    assert!(message.contains("degraded"), "got: {message}");
    assert!(session.degraded().is_some());
    assert_ne!(session.digest(), journaled_digest, "edit applied in memory");

    // Further edits work without touching the dead journal (the fault
    // plan would fail them; degraded mode never calls it).
    let ephemeral = session
        .apply_script(EDITS[2], None)
        .expect("ephemeral edit");
    assert!(ephemeral.netlist_changes > 0);
    // Compaction cannot un-degrade a session.
    assert!(session.compact(&Technology::nominal()).is_err());
    drop(session);

    // The on-disk journal still holds the last *acknowledged-durable*
    // state: resume recovers up to the first edit, bit-identically.
    let resumed = Session::resume(
        &path,
        &Technology::nominal(),
        AnalyzerOptions::default(),
        &JournalFaultPlan::none(),
    )
    .expect("journal is consistent");
    assert_eq!(resumed.digest(), journaled_digest);
    assert_eq!(resumed.edits_applied(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reply_cache_dedupes_and_survives_resume() {
    let dir = temp_dir("replies");
    let path = dir.join(format!("s1.{SESSION_JOURNAL_EXT}"));
    let mut session = open_session(&dir, "s1");
    session
        .apply_script(EDITS[0], Some("req-1"))
        .expect("edit 1");
    let digest1 = session.digest();
    session
        .apply_script(EDITS[1], Some("req-2"))
        .expect("edit 2");
    assert_eq!(session.cached_reply("req-1"), Some((1, digest1)));
    assert_eq!(session.cached_reply("req-2"), Some((2, session.digest())));
    assert_eq!(session.cached_reply("req-9"), None);
    drop(session);

    // The cache is rebuilt from the journaled `req` fields, so a retry
    // that lands after a crash+resume still dedupes.
    let resumed = Session::resume(
        &path,
        &Technology::nominal(),
        AnalyzerOptions::default(),
        &JournalFaultPlan::none(),
    )
    .expect("resumes");
    assert_eq!(resumed.cached_reply("req-1"), Some((1, digest1)));
    assert_eq!(resumed.cached_reply("req-2"), Some((2, resumed.digest())));

    let _ = std::fs::remove_dir_all(&dir);
}

/// A session map drill for the lease layer: idle sessions are evicted,
/// journals survive, and reattach restores bit-identical state.
#[test]
fn leases_evict_idle_sessions_and_reattach_restores_them() {
    use std::time::Duration;

    let dir = temp_dir("lease");
    let manager = SessionManager::new(
        Technology::nominal(),
        Some(dir.clone()),
        4,
        JournalFaultPlan::none(),
    )
    .expect("manager");
    let (id, slot) = manager
        .open(
            Some("s1"),
            INVERTER_CHAIN,
            "chain.sim",
            &SessionConfig::default(),
            AnalyzerOptions::default(),
        )
        .expect("opens");
    let digest = {
        let mut session = slot.lock().expect("lock");
        session.apply_script(EDITS[0], None).expect("edit");
        session.digest()
    };
    drop(slot);

    // A zero TTL evicts immediately; an in-flight session would be
    // skipped (its mutex is held), but ours is idle.
    assert_eq!(manager.evict_idle(Duration::ZERO), vec!["s1"]);
    assert_eq!(manager.session_count(), 0);
    assert!(
        dir.join(format!("{id}.{SESSION_JOURNAL_EXT}")).exists(),
        "eviction keeps the journal"
    );

    // Reattach replays the journal and re-registers the same id.
    let (slot, replayed) = manager
        .reattach("s1", &AnalyzerOptions::default())
        .expect("reattaches");
    assert_eq!(replayed, 1);
    assert_eq!(slot.lock().expect("lock").digest(), digest);
    assert_eq!(manager.session_count(), 1);

    // Unknown ids (no journal) stay errors.
    assert!(manager
        .reattach("nope", &AnalyzerOptions::default())
        .is_err());

    let _ = std::fs::remove_dir_all(&dir);
}
