//! Property tests for the parallel timing engine: every observable
//! output — full results, tripped-budget partial results, and fail-soft
//! batch runs with injected panics — must be bit-identical whether the
//! analysis runs on one thread or many.

use crystal::analyzer::{analyze_with_options, AnalyzerOptions, Edge, Scenario};
use crystal::batch::{run_batch, run_batch_par_with, BatchFailure};
use crystal::budget::AnalysisBudget;
use crystal::memo::StageCache;
use crystal::models::ModelKind;
use crystal::tech::Technology;
use crystal::TimingError;
use mosnet::generators::{carry_chain, Style};
use mosnet::network::NetworkBuilder;
use mosnet::units::Farads;
use mosnet::{Geometry, Network, NodeKind, TransistorKind};
use std::sync::Arc;

/// Thread counts the suite compares against the serial baseline:
/// two workers, a deliberate oversubscription, and `0` (= all hardware
/// threads, whatever this host has).
const THREAD_COUNTS: [usize; 3] = [2, 8, 0];

/// A random pass mesh (SplitMix64-driven, no PRNG dependency): a CMOS
/// inverter anchors the mesh to the rails and `nodes` mesh nodes hang
/// off random earlier nodes through `ctl`-gated n-pass devices —
/// irregular per-node stage counts, the worst case for scheduling
/// determinism.
fn random_pass_mesh(seed: u64, nodes: usize) -> Network {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut b = NetworkBuilder::new("pass-mesh");
    let vdd = b.power();
    let gnd = b.ground();
    let inp = b.node("in", NodeKind::Input);
    let ctl = b.node("ctl", NodeKind::Input);
    let drv = b.node("drv", NodeKind::Internal);
    b.set_capacitance(drv, Farads::from_femto(20.0));
    b.add_transistor(
        TransistorKind::NEnhancement,
        inp,
        drv,
        gnd,
        Geometry::from_microns(8.0, 2.0),
    );
    b.add_transistor(
        TransistorKind::PEnhancement,
        inp,
        drv,
        vdd,
        Geometry::from_microns(16.0, 2.0),
    );
    let mut mesh = vec![drv];
    for i in 0..nodes {
        let kind = if i + 1 == nodes {
            NodeKind::Output
        } else {
            NodeKind::Internal
        };
        let n = b.node(&format!("m{i}"), kind);
        b.set_capacitance(n, Farads::from_femto(20.0 + (next() % 1000) as f64 * 0.1));
        let from = mesh[next() as usize % mesh.len()];
        b.add_transistor(
            TransistorKind::NEnhancement,
            ctl,
            from,
            n,
            Geometry::from_microns(8.0, 2.0),
        );
        mesh.push(n);
    }
    b.build().expect("pass mesh is a valid network")
}

fn mesh_scenario(net: &Network) -> Scenario {
    let inp = net.node_by_name("in").unwrap();
    let ctl = net.node_by_name("ctl").unwrap();
    Scenario::step(inp, Edge::Rising).with_static(ctl, true)
}

#[test]
fn analyzer_is_bit_identical_at_any_thread_count() {
    let tech = Technology::nominal();
    for seed in 0..6u64 {
        let net = random_pass_mesh(seed, 22);
        let scenario = mesh_scenario(&net);
        for model in [ModelKind::Lumped, ModelKind::RcTree, ModelKind::Slope] {
            let serial =
                analyze_with_options(&net, &tech, model, &scenario, AnalyzerOptions::default())
                    .unwrap_or_else(|e| panic!("seed {seed}: serial analysis failed: {e}"));
            for threads in THREAD_COUNTS {
                let par = analyze_with_options(
                    &net,
                    &tech,
                    model,
                    &scenario,
                    AnalyzerOptions {
                        threads,
                        ..AnalyzerOptions::default()
                    },
                )
                .unwrap_or_else(|e| panic!("seed {seed}, threads {threads}: {e}"));
                assert_eq!(
                    par, serial,
                    "seed {seed}, model {model:?}, threads {threads}"
                );
            }
        }
    }
}

#[test]
fn analyzer_with_shared_cache_is_bit_identical_at_any_thread_count() {
    let tech = Technology::nominal();
    let net = random_pass_mesh(11, 22);
    let scenario = mesh_scenario(&net);
    let serial = analyze_with_options(
        &net,
        &tech,
        ModelKind::Slope,
        &scenario,
        AnalyzerOptions::default(),
    )
    .expect("serial analysis succeeds");
    // One cache shared across every parallel run: warm hits must not
    // perturb the arrivals either.
    let cache = Arc::new(StageCache::new());
    for threads in THREAD_COUNTS {
        for _ in 0..2 {
            let par = analyze_with_options(
                &net,
                &tech,
                ModelKind::Slope,
                &scenario,
                AnalyzerOptions {
                    threads,
                    cache: Some(Arc::clone(&cache)),
                    ..AnalyzerOptions::default()
                },
            )
            .expect("parallel analysis succeeds");
            assert_eq!(par, serial, "threads {threads}");
        }
    }
    assert!(cache.stats().hits > 0, "second passes hit the cache");
}

#[test]
fn tripped_stage_budget_is_bit_identical_at_any_thread_count() {
    let tech = Technology::nominal();
    for seed in 0..4u64 {
        let net = random_pass_mesh(seed, 22);
        let scenario = mesh_scenario(&net);
        for cap in [1, 3, 7, 20] {
            let budget = AnalysisBudget {
                max_stage_evals: Some(cap),
                ..AnalysisBudget::unlimited()
            };
            let options = |threads| AnalyzerOptions {
                threads,
                budget,
                ..AnalyzerOptions::default()
            };
            let serial = analyze_with_options(&net, &tech, ModelKind::Slope, &scenario, options(1));
            let serial_partial = match &serial {
                Err(TimingError::BudgetExhausted { partial }) => partial,
                other => panic!("seed {seed}, cap {cap}: expected a tripped budget, got {other:?}"),
            };
            for threads in THREAD_COUNTS {
                let par = analyze_with_options(
                    &net,
                    &tech,
                    ModelKind::Slope,
                    &scenario,
                    options(threads),
                );
                match &par {
                    Err(TimingError::BudgetExhausted { partial }) => {
                        assert_eq!(
                            partial.result, serial_partial.result,
                            "seed {seed}, cap {cap}, threads {threads}: partial arrivals differ"
                        );
                        assert_eq!(partial.exceeded, serial_partial.exceeded);
                        assert_eq!(partial.rounds_completed, serial_partial.rounds_completed);
                    }
                    other => panic!(
                        "seed {seed}, cap {cap}, threads {threads}: expected a tripped \
                         budget, got {other:?}"
                    ),
                }
            }
        }
    }
}

#[test]
fn batch_with_injected_panic_is_bit_identical_at_any_thread_count() {
    let items: Vec<(String, usize)> = (0..24).map(|i| (format!("item{i}"), i)).collect();
    let f = |&i: &usize| -> Result<usize, String> {
        match i {
            7 => panic!("injected panic in item {i}"),
            13 => Err(format!("injected error in item {i}")),
            _ => Ok(i * 3),
        }
    };
    let serial = run_batch_par_with(&items, f, false, 1);
    assert!(!serial.all_ok());
    assert!(matches!(
        serial.results[7].1,
        Err(BatchFailure::Panicked { .. })
    ));
    for threads in THREAD_COUNTS {
        let par = run_batch_par_with(&items, f, false, threads);
        assert_eq!(par.aborted_early, serial.aborted_early);
        assert_eq!(par.results, serial.results, "threads {threads}");
    }
}

#[test]
fn scenario_batch_with_tripped_budgets_is_bit_identical_at_any_thread_count() {
    // A carry chain batch in which half the scenarios run unbudgeted and
    // the analyzer trips the stage cap on the rest — the fail-soft
    // parallel batch must reproduce the serial mix exactly.
    let tech = Technology::nominal();
    let net = carry_chain(Style::Cmos, 8, Farads::from_femto(100.0)).expect("chain generates");
    let cin = net.node_by_name("cin").unwrap();
    let statics: Vec<_> = net
        .inputs()
        .into_iter()
        .filter(|&n| n != cin)
        .map(|n| (n, net.node(n).name().starts_with('p')))
        .collect();
    let mut scenarios = Vec::new();
    for edge in [Edge::Rising, Edge::Falling] {
        let mut scenario = Scenario::step(cin, edge);
        for &(n, v) in &statics {
            scenario = scenario.with_static(n, v);
        }
        scenarios.push((format!("cin {edge:?}"), scenario));
    }
    let run_at = |threads: usize, cap: Option<usize>| {
        run_batch(
            &net,
            &tech,
            ModelKind::Slope,
            &scenarios,
            AnalyzerOptions {
                threads,
                budget: AnalysisBudget {
                    max_stage_evals: cap,
                    ..AnalysisBudget::unlimited()
                },
                ..AnalyzerOptions::default()
            },
            false,
        )
    };
    for cap in [None, Some(2)] {
        let serial = run_at(1, cap);
        if cap.is_some() {
            assert!(!serial.all_ok(), "cap {cap:?} should trip");
        }
        for threads in THREAD_COUNTS {
            let par = run_at(threads, cap);
            assert_eq!(par.aborted_early, serial.aborted_early);
            assert_eq!(
                par.results, serial.results,
                "cap {cap:?}, threads {threads}"
            );
        }
    }
}
