//! Operational-robustness drills for `crystal::server`: storage-fault
//! degradation, idempotent `req_id` retries, session leases with
//! transparent reattach, and journal compaction bounding replay work —
//! each observed through the wire protocol and the `stats`/`health`
//! ops, exactly as an operator would see them. Servers use a local
//! `ShutdownFlag` (never `install_signal_handlers`).

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crystal::durable::JournalFaultPlan;
use crystal::fingerprint::{escape_json, parse_json_object};
use crystal::{serve, ServerHandle, ServerOptions};

const INVERTER_CHAIN: &str = "| two inverters\n\
i a\n\
o y\n\
n a m gnd 2 8\n\
p a m vdd 2 16\n\
C m 20\n\
n m y gnd 2 8\n\
p m y vdd 2 16\n\
C y 100\n";

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect to test server");
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn request(&mut self, line: &str) -> HashMap<String, String> {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        assert!(!response.is_empty(), "server closed the connection");
        parse_json_object(response.trim_end())
            .unwrap_or_else(|| panic!("response is not flat JSON: {response}"))
    }
}

fn open_request(session: &str) -> String {
    format!(
        "{{\"op\":\"open\",\"session\":\"{session}\",\"name\":\"chain.sim\",\"netlist\":\"{}\"}}",
        escape_json(INVERTER_CHAIN)
    )
}

fn edit_request(session: &str, script: &str) -> String {
    format!(
        "{{\"op\":\"edit\",\"session\":\"{session}\",\"script\":\"{}\"}}",
        escape_json(script)
    )
}

fn status(response: &HashMap<String, String>) -> &str {
    response.get("status").map_or("<missing>", String::as_str)
}

fn num(response: &HashMap<String, String>, key: &str) -> u64 {
    response
        .get(key)
        .unwrap_or_else(|| panic!("missing `{key}` in {response:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("`{key}` is not a number in {response:?}"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "crystal_robust_{name}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn journaled_options(dir: &Path) -> ServerOptions {
    ServerOptions {
        journal_dir: Some(dir.to_path_buf()),
        ..ServerOptions::default()
    }
}

/// A journal write fault turns into `storage_error` on the wire, the
/// session shows up degraded in `health`, and the daemon keeps serving
/// the sibling session — durability loss is contained, not fatal.
#[test]
fn storage_fault_degrades_one_session_while_others_serve() {
    let dir = temp_dir("degrade");
    // Two session headers write fine; the third journal write (the
    // first edit) fails once, then I/O heals — but the degraded
    // session must stay ephemeral even after the fault clears.
    let options = ServerOptions {
        journal_faults: JournalFaultPlan::none().fail_writes_after(2).fail_count(1),
        ..journaled_options(&dir)
    };
    let handle = serve(options).expect("server starts");
    let mut client = Client::connect(&handle);
    assert_eq!(status(&client.request(&open_request("victim"))), "ok");
    assert_eq!(status(&client.request(&open_request("bystander"))), "ok");

    let failed = client.request(&edit_request("victim", "cap y 150"));
    assert_eq!(status(&failed), "storage_error", "got {failed:?}");
    assert_eq!(failed.get("retryable").map(String::as_str), Some("false"));
    let error = failed.get("error").expect("error field");
    assert!(
        error.contains("degraded"),
        "error lacks state hint: {error}"
    );

    // The daemon is healthy; the victim is named in `health`.
    let health = client.request("{\"op\":\"health\"}");
    assert_eq!(status(&health), "ok");
    assert_eq!(num(&health, "degraded"), 1);
    assert_eq!(
        health.get("degraded.0").map(String::as_str),
        Some("victim"),
        "health: {health:?}"
    );

    // The sibling session still journals and serves.
    assert_eq!(
        status(&client.request(&edit_request("bystander", "cap y 150"))),
        "ok"
    );
    // The victim keeps answering too — ephemeral, but usable.
    assert_eq!(
        status(&client.request(&edit_request("victim", "cap y 175"))),
        "ok"
    );

    let stats = client.request("{\"op\":\"stats\"}");
    assert_eq!(num(&stats, "degraded_sessions"), 1);
    assert_eq!(num(&stats, "degraded"), 1);

    handle.stop();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A duplicate `req_id` (a client retry whose original response was
/// lost) answers from the reply cache: same seq, same digest, marked
/// `dedup`, and the edit is not applied twice.
#[test]
fn duplicate_req_id_answers_from_the_reply_cache() {
    let dir = temp_dir("dedup");
    let handle = serve(journaled_options(&dir)).expect("server starts");
    let mut client = Client::connect(&handle);
    assert_eq!(status(&client.request(&open_request("s1"))), "ok");

    let edit = format!(
        "{{\"op\":\"edit\",\"session\":\"s1\",\"req_id\":\"q1-1\",\"script\":\"{}\"}}",
        escape_json("cap y 150")
    );
    let first = client.request(&edit);
    assert_eq!(status(&first), "ok");
    assert_eq!(num(&first, "seq"), 1);
    let digest = first.get("digest").expect("digest").clone();
    assert_eq!(first.get("dedup"), None);

    // Retransmission: identical request, identical answer, no re-apply.
    let second = client.request(&edit);
    assert_eq!(status(&second), "ok", "got {second:?}");
    assert_eq!(num(&second, "seq"), 1, "edit applied twice: {second:?}");
    assert_eq!(second.get("digest"), Some(&digest));
    assert_eq!(second.get("dedup").map(String::as_str), Some("true"));

    // A retried `open` of a live session with the same content also
    // dedups instead of failing on the duplicate id.
    let reopened = client.request(&open_request("s1"));
    assert_eq!(status(&reopened), "ok", "got {reopened:?}");
    assert_eq!(reopened.get("dedup").map(String::as_str), Some("true"));

    let stats = client.request("{\"op\":\"stats\"}");
    assert_eq!(num(&stats, "dedup_hits"), 2);
    // The next real edit lands at seq 2: exactly one apply happened.
    let third = client.request(&edit_request("s1", "cap y 175"));
    assert_eq!(num(&third, "seq"), 2);

    handle.stop();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Idle sessions are lease-evicted (journal kept) and transparently
/// reattached by the next request that names them, bit-identically.
#[test]
fn lease_eviction_keeps_the_journal_and_reattach_restores_state() {
    let dir = temp_dir("lease");
    let options = ServerOptions {
        session_ttl: Some(Duration::from_millis(50)),
        ..journaled_options(&dir)
    };
    let handle = serve(options).expect("server starts");
    let mut client = Client::connect(&handle);
    assert_eq!(status(&client.request(&open_request("s1"))), "ok");
    let edited = client.request(&edit_request("s1", "cap y 150"));
    assert_eq!(status(&edited), "ok");
    let digest = edited.get("digest").expect("digest").clone();

    // Wait out the lease; the sweeper runs every min(250ms, ttl).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = client.request("{\"op\":\"stats\"}");
        if num(&stats, "sessions") == 0 {
            assert!(num(&stats, "leases_expired") >= 1, "stats: {stats:?}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "session never lease-evicted: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        dir.join("s1.session").exists(),
        "eviction must keep the journal"
    );

    // The next request reattaches transparently: same digest, and the
    // replayed edit shows up in the observability counters.
    let report = client.request("{\"op\":\"report\",\"session\":\"s1\"}");
    assert_eq!(status(&report), "ok", "got {report:?}");
    assert_eq!(report.get("digest"), Some(&digest), "state diverged");
    let stats = client.request("{\"op\":\"stats\"}");
    assert!(num(&stats, "recovered") >= 1, "stats: {stats:?}");
    assert!(num(&stats, "edits_replayed") >= 1, "stats: {stats:?}");

    handle.stop();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Compaction bounds replay: a daemon restarted over a compacted
/// journal replays O(edits since checkpoint) — observed as `stats
/// edits_replayed` — while an uncompacted control replays the full
/// history. Both resume to the same digest.
#[test]
fn compaction_bounds_restart_replay_work() {
    const EDITS: [&str; 4] = ["cap y 150", "cap y 175", "cap m 40", "cap y 200"];
    let mut digests: Vec<(String, u64)> = Vec::new();
    for compact_after in [None, Some(2)] {
        let dir = temp_dir(if compact_after.is_some() {
            "compacted"
        } else {
            "control"
        });
        let options = ServerOptions {
            compact_after,
            ..journaled_options(&dir)
        };
        let handle = serve(options).expect("server starts");
        let mut client = Client::connect(&handle);
        assert_eq!(status(&client.request(&open_request("s1"))), "ok");
        let mut digest = String::new();
        for edit in EDITS {
            let response = client.request(&edit_request("s1", edit));
            assert_eq!(status(&response), "ok", "got {response:?}");
            digest = response.get("digest").expect("digest").clone();
        }
        let stats = client.request("{\"op\":\"stats\"}");
        let compactions = num(&stats, "compactions");
        if compact_after.is_some() {
            assert!(compactions >= 1, "auto-compaction never ran: {stats:?}");
        } else {
            assert_eq!(compactions, 0);
        }
        drop(client);
        handle.stop();
        handle.join();

        // Restart over the same journal directory with `resume`.
        let restarted = serve(ServerOptions {
            resume: true,
            ..journaled_options(&dir)
        })
        .expect("daemon restarts");
        let mut client = Client::connect(&restarted);
        let report = client.request("{\"op\":\"report\",\"session\":\"s1\"}");
        assert_eq!(status(&report), "ok", "got {report:?}");
        assert_eq!(report.get("digest").map(String::as_str), Some(&*digest));
        let stats = client.request("{\"op\":\"stats\"}");
        digests.push((digest, num(&stats, "edits_replayed")));
        restarted.stop();
        restarted.join();
        let _ = std::fs::remove_dir_all(&dir);
    }

    let [(control_digest, control_replayed), (compacted_digest, compacted_replayed)] =
        digests.as_slice()
    else {
        unreachable!("two runs recorded");
    };
    assert_eq!(
        control_digest, compacted_digest,
        "compaction changed observable results"
    );
    assert_eq!(
        *control_replayed, 4,
        "uncompacted control must replay the full history"
    );
    assert_eq!(
        *compacted_replayed, 0,
        "auto-compaction at every 2nd edit leaves an empty tail"
    );

    // The explicit `compact` op is also exposed (chaos/ops tooling).
    let dir = temp_dir("explicit");
    let handle = serve(journaled_options(&dir)).expect("server starts");
    let mut client = Client::connect(&handle);
    assert_eq!(status(&client.request(&open_request("s1"))), "ok");
    assert_eq!(
        status(&client.request(&edit_request("s1", "cap y 150"))),
        "ok"
    );
    let compacted = client.request("{\"op\":\"compact\",\"session\":\"s1\"}");
    assert_eq!(status(&compacted), "ok", "got {compacted:?}");
    assert_eq!(num(&compacted, "base_seq"), 1);
    let stats = client.request("{\"op\":\"stats\"}");
    assert_eq!(num(&stats, "compactions"), 1);
    handle.stop();
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
