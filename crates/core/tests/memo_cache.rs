//! End-to-end properties of the stage-evaluation memo cache: cached
//! analyses reproduce fresh ones bit-for-bit, technology edits
//! invalidate by content, and the hit/miss/eviction counters account
//! for every lookup.

use crystal::analyzer::{analyze_with_options, AnalyzerOptions, Edge, Scenario};
use crystal::memo::StageCache;
use crystal::models::ModelKind;
use crystal::tech::{Direction, DriveParams, Technology};
use mosnet::generators::{carry_chain, inverter_chain, Style};
use mosnet::units::{Farads, Ohms, Seconds};
use mosnet::{Network, TransistorKind};
use std::sync::Arc;

fn chain() -> Network {
    inverter_chain(Style::Cmos, 8, 2.0, Farads::from_femto(100.0)).expect("chain generates")
}

fn scenario(net: &Network) -> Scenario {
    let inp = net.node_by_name("in").unwrap();
    Scenario::step(inp, Edge::Rising).with_input_transition(Seconds::from_nanos(1.0))
}

fn with_cache(cache: &Arc<StageCache>) -> AnalyzerOptions {
    AnalyzerOptions {
        cache: Some(Arc::clone(cache)),
        ..AnalyzerOptions::default()
    }
}

#[test]
fn cached_analysis_matches_fresh_bit_for_bit() {
    let tech = Technology::nominal();
    let net = chain();
    let scenario = scenario(&net);
    for model in [ModelKind::Lumped, ModelKind::RcTree, ModelKind::Slope] {
        let fresh = analyze_with_options(&net, &tech, model, &scenario, AnalyzerOptions::default())
            .expect("fresh analysis succeeds");
        let cache = Arc::new(StageCache::new());
        let cold = analyze_with_options(&net, &tech, model, &scenario, with_cache(&cache))
            .expect("cold cached analysis succeeds");
        let warm = analyze_with_options(&net, &tech, model, &scenario, with_cache(&cache))
            .expect("warm cached analysis succeeds");
        assert_eq!(cold, fresh, "{model:?}: cold run must match uncached");
        assert_eq!(warm, fresh, "{model:?}: warm run must match uncached");
        assert!(
            cache.stats().hits > 0,
            "{model:?}: the warm run should hit the cache"
        );
    }
}

#[test]
fn per_run_counters_account_for_every_lookup() {
    let tech = Technology::nominal();
    let net = chain();
    let scenario = scenario(&net);
    let cache = Arc::new(StageCache::new());
    let cold = analyze_with_options(&net, &tech, ModelKind::Slope, &scenario, with_cache(&cache))
        .expect("cold run succeeds");
    let warm = analyze_with_options(&net, &tech, ModelKind::Slope, &scenario, with_cache(&cache))
        .expect("warm run succeeds");
    let cold_stats = cold.cache_stats().expect("cached runs carry stats");
    let warm_stats = warm.cache_stats().expect("cached runs carry stats");
    assert!(cold_stats.misses > 0, "a cold cache must miss");
    // Identical work: the warm run performs the same lookups and every
    // one of them now hits.
    assert_eq!(warm_stats.misses, 0, "{warm_stats:?}");
    assert_eq!(warm_stats.hits, cold_stats.hits + cold_stats.misses);
    // Every miss of a successful run inserted an entry; nothing was
    // evicted at default capacity.
    assert_eq!(cold_stats.evictions, 0);
    assert_eq!(cache.len() as u64, cold_stats.misses);
    // The cache's cumulative counters equal the sum of the per-run deltas.
    let total = cache.stats();
    assert_eq!(total.hits, cold_stats.hits + warm_stats.hits);
    assert_eq!(total.misses, cold_stats.misses + warm_stats.misses);
}

#[test]
fn technology_edits_invalidate_by_content() {
    let nominal = Technology::nominal();
    let net = chain();
    let scenario = scenario(&net);
    // A technology with doubled n-pulldown resistance: same name, new
    // drive tables.
    let mut slow = Technology::nominal();
    let params = slow
        .drive(TransistorKind::NEnhancement, Direction::PullDown)
        .clone();
    slow.set_drive(
        TransistorKind::NEnhancement,
        Direction::PullDown,
        DriveParams {
            r_square: Ohms(params.r_square.0 * 2.0),
            ..params
        },
    );

    let cache = Arc::new(StageCache::new());
    let with_nominal = analyze_with_options(
        &net,
        &nominal,
        ModelKind::Slope,
        &scenario,
        with_cache(&cache),
    )
    .expect("nominal run succeeds");
    let with_slow =
        analyze_with_options(&net, &slow, ModelKind::Slope, &scenario, with_cache(&cache))
            .expect("edited-tech run succeeds");
    // The edited-technology run must not reuse nominal entries: its
    // results equal a fresh uncached analysis under the edited tech...
    let fresh_slow = analyze_with_options(
        &net,
        &slow,
        ModelKind::Slope,
        &scenario,
        AnalyzerOptions::default(),
    )
    .expect("fresh edited-tech run succeeds");
    assert_eq!(with_slow, fresh_slow, "stale hits would skew arrivals");
    assert_ne!(
        with_slow, with_nominal,
        "doubling the pulldown resistance must change the timing"
    );
    // ...and its lookups all missed (a different content stamp keys a
    // disjoint part of the cache).
    let slow_stats = with_slow.cache_stats().expect("cached runs carry stats");
    let nominal_stats = with_nominal.cache_stats().expect("cached runs carry stats");
    assert_eq!(slow_stats.hits, nominal_stats.hits, "only intra-run reuse");
    assert!(slow_stats.misses > 0);
    // Returning to the nominal technology hits the original entries.
    let back = analyze_with_options(
        &net,
        &nominal,
        ModelKind::Slope,
        &scenario,
        with_cache(&cache),
    )
    .expect("second nominal run succeeds");
    assert_eq!(back, with_nominal);
    assert_eq!(back.cache_stats().expect("stats").misses, 0);
}

#[test]
fn tiny_capacity_evicts_but_stays_correct() {
    let tech = Technology::nominal();
    let net = carry_chain(Style::Cmos, 12, Farads::from_femto(100.0)).expect("chain generates");
    let cin = net.node_by_name("cin").unwrap();
    let mut scenario = Scenario::step(cin, Edge::Rising);
    for input in net.inputs() {
        if input != cin {
            scenario = scenario.with_static(input, net.node(input).name().starts_with('p'));
        }
    }
    let fresh = analyze_with_options(
        &net,
        &tech,
        ModelKind::Slope,
        &scenario,
        AnalyzerOptions::default(),
    )
    .expect("fresh analysis succeeds");
    // A cache far too small for the run: correctness must survive
    // constant eviction, and the counters must record it.
    let cache = Arc::new(StageCache::with_capacity(4));
    for _ in 0..2 {
        let result =
            analyze_with_options(&net, &tech, ModelKind::Slope, &scenario, with_cache(&cache))
                .expect("capacity-starved run succeeds");
        assert_eq!(result, fresh);
    }
    let stats = cache.stats();
    assert!(stats.evictions > 0, "{stats:?}");
    assert!(cache.len() <= cache.capacity());
    // Inserts = survivors + evictions; only misses insert.
    assert_eq!(cache.len() as u64 + stats.evictions, stats.misses);
}
