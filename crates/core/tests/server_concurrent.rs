//! Concurrent-session determinism: N client threads drive N distinct
//! sessions over one shared `StageCache`, and every result is
//! bit-identical to a one-shot serial analysis of the same netlist and
//! edit sequence with no cache at all. Caching and concurrency are
//! performance knobs — never result knobs.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use crystal::analyzer::AnalyzerOptions;
use crystal::fingerprint::{escape_json, hex64, parse_json_object};
use crystal::session::{Session, SessionConfig};
use crystal::tech::Technology;
use crystal::{serve, ServerOptions, StageCache};

const INVERTER_CHAIN: &str = "| two inverters\n\
i a\n\
o y\n\
n a m gnd 2 8\n\
p a m vdd 2 16\n\
C m 20\n\
n m y gnd 2 8\n\
p m y vdd 2 16\n\
C y 100\n";

const EDITS: [&str; 3] = ["cap y 150", "cap m 40", "cap y 220"];

const WORKERS: usize = 4;

fn request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &str,
) -> HashMap<String, String> {
    writer.write_all(line.as_bytes()).expect("send");
    writer.write_all(b"\n").expect("send newline");
    writer.flush().expect("flush");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    parse_json_object(response.trim_end())
        .unwrap_or_else(|| panic!("response is not flat JSON: {response}"))
}

/// `(session digest, [per-scenario label/digest pairs])` for one worker.
type WorkerResult = (String, Vec<(String, String)>);

fn drive_session(addr: std::net::SocketAddr, id: &str) -> WorkerResult {
    let mut writer = TcpStream::connect_timeout(&addr, Duration::from_secs(5)).expect("connect");
    writer.set_nodelay(true).ok();
    let mut reader = BufReader::new(writer.try_clone().expect("clone"));
    let open = format!(
        "{{\"op\":\"open\",\"session\":\"{id}\",\"name\":\"chain.sim\",\"netlist\":\"{}\"}}",
        escape_json(INVERTER_CHAIN)
    );
    let response = request(&mut reader, &mut writer, &open);
    assert_eq!(
        response.get("status").map(String::as_str),
        Some("ok"),
        "{id}: open failed: {response:?}"
    );
    for edit in EDITS {
        let line = format!("{{\"op\":\"edit\",\"session\":\"{id}\",\"script\":\"{edit}\"}}");
        let response = request(&mut reader, &mut writer, &line);
        assert_eq!(
            response.get("status").map(String::as_str),
            Some("ok"),
            "{id}: edit `{edit}` failed: {response:?}"
        );
    }
    let line = format!("{{\"op\":\"report\",\"session\":\"{id}\"}}");
    let response = request(&mut reader, &mut writer, &line);
    assert_eq!(
        response.get("status").map(String::as_str),
        Some("ok"),
        "{id}: report failed: {response:?}"
    );
    let digest = response.get("digest").expect("digest").clone();
    let scenarios: usize = response
        .get("scenarios")
        .expect("scenario count")
        .parse()
        .expect("integer scenario count");
    let mut rows = Vec::new();
    for index in 0..scenarios {
        rows.push((
            response
                .get(&format!("scenario.{index}.label"))
                .expect("label")
                .clone(),
            response
                .get(&format!("scenario.{index}.digest"))
                .expect("digest")
                .clone(),
        ));
    }
    (digest, rows)
}

#[test]
fn concurrent_cached_sessions_match_a_serial_uncached_run_bit_for_bit() {
    let cache = Arc::new(StageCache::new());
    let options = ServerOptions {
        max_sessions: WORKERS,
        max_inflight: WORKERS,
        cache: Some(cache.clone()),
        threads: 2,
        ..ServerOptions::default()
    };
    let handle = serve(options).expect("server starts");
    let addr = handle.addr();

    let workers: Vec<_> = (0..WORKERS)
        .map(|index| std::thread::spawn(move || drive_session(addr, &format!("worker{index}"))))
        .collect();
    let results: Vec<WorkerResult> = workers
        .into_iter()
        .map(|w| w.join().expect("worker thread completes"))
        .collect();

    // The serial reference: the same session semantics, no server, no
    // journal, no cache, single-threaded.
    let tech = Technology::nominal();
    let mut reference = Session::open(
        "reference",
        INVERTER_CHAIN,
        "chain.sim",
        &tech,
        &SessionConfig::default(),
        AnalyzerOptions::default(),
        None,
        &crystal::durable::JournalFaultPlan::none(),
    )
    .expect("serial reference opens");
    for edit in EDITS {
        reference
            .apply_script(edit, None)
            .expect("serial edit applies");
    }
    let expected_digest = hex64(reference.digest());
    let expected_rows: Vec<(String, String)> = reference
        .scenario_rows()
        .into_iter()
        .map(|(label, digest, _summary)| (label, hex64(digest)))
        .collect();

    for (index, (digest, rows)) in results.iter().enumerate() {
        assert_eq!(
            *digest, expected_digest,
            "worker{index}: session digest diverged from the serial run"
        );
        assert_eq!(
            *rows, expected_rows,
            "worker{index}: scenario digests diverged from the serial run"
        );
    }

    handle.stop();
    let stats = handle.join();
    assert_eq!(stats.sessions_opened, WORKERS as u64);
    assert_eq!(stats.panics, 0);
    assert_eq!(
        stats.shed, 0,
        "cap sized to the worker count; nothing sheds"
    );
    // The shared cache was actually exercised across sessions.
    let cache_stats = cache.stats();
    assert!(
        cache_stats.hits + cache_stats.misses > 0,
        "shared cache saw no traffic"
    );
}
