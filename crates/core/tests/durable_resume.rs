//! Kill-and-resume property test for the durable batch engine.
//!
//! A reference batch runs to completion under a journal. The journal is
//! then truncated at many byte offsets — simulating a `SIGKILL` landing
//! mid-append — and each wreck is resumed. Every resume must reproduce
//! the reference records bit-identically (label, outcome, digest,
//! summary), at one worker thread and at several.

use crystal::analyzer::AnalyzerOptions;
use crystal::selfcheck::standard_scenarios;
use crystal::tech::Technology;
use crystal::{run_durable, DurableOptions, ModelKind, Outcome};
use mosnet::units::Seconds;
use mosnet::Network;
use std::collections::HashMap;
use std::path::PathBuf;

const CHAIN: &str = "| three inverters\ni a\no y\n\
    n a m gnd 2 8\np a m vdd 2 16\nC m 20\n\
    n m w gnd 2 8\np m w vdd 2 16\nC w 35\n\
    n w y gnd 2 8\np w y vdd 2 16\nC y 100\n";

fn chain() -> Network {
    mosnet::sim_format::parse(CHAIN, "chain").expect("fixture parses")
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "crystal_durable_resume_{tag}_{}.journal",
        std::process::id()
    ))
}

fn run(net: &Network, journal: PathBuf, resume: bool, threads: usize) -> crystal::DurableRun {
    let tech = Technology::nominal();
    let scenarios = standard_scenarios(net, &HashMap::new(), Seconds::ZERO);
    assert_eq!(scenarios.len(), 2, "one input, two edges");
    run_durable(
        net,
        &tech,
        ModelKind::Slope,
        &scenarios,
        AnalyzerOptions::default(),
        &DurableOptions {
            journal,
            resume,
            threads,
            ..DurableOptions::default()
        },
    )
    .expect("durable run succeeds")
}

fn record_keys(run: &crystal::DurableRun) -> Vec<(String, Outcome, Option<u64>, String)> {
    run.records
        .iter()
        .map(|r| (r.label.clone(), r.outcome, r.digest, r.summary.clone()))
        .collect()
}

#[test]
fn every_truncation_point_resumes_bit_identically() {
    let net = chain();
    let reference_path = temp_journal("reference");
    let reference = run(&net, reference_path.clone(), false, 1);
    assert!(reference.all_ok());
    let expected = record_keys(&reference);
    let bytes = std::fs::read(&reference_path).expect("journal exists");
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .expect("journal has a header line")
        + 1;

    // Cut everywhere after the header: mid-record, at record boundaries,
    // and one byte short of complete — every wreck a crash could leave.
    let mut cuts: Vec<usize> = (header_end..bytes.len()).step_by(23).collect();
    cuts.extend([header_end, bytes.len() - 1, bytes.len()]);
    for (i, cut) in cuts.into_iter().enumerate() {
        for threads in [1usize, 4] {
            let path = temp_journal(&format!("cut{i}_t{threads}"));
            std::fs::write(&path, &bytes[..cut]).expect("writes wreck");
            let resumed = run(&net, path.clone(), true, threads);
            assert_eq!(
                record_keys(&resumed),
                expected,
                "cut at byte {cut}, {threads} threads"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
    let _ = std::fs::remove_file(&reference_path);
}

#[test]
fn complete_journal_resumes_without_recomputing() {
    let net = chain();
    let path = temp_journal("complete");
    let reference = run(&net, path.clone(), false, 1);
    let resumed = run(&net, path.clone(), true, 4);
    assert_eq!(resumed.resumed, reference.records.len());
    assert!(resumed.records.iter().all(|r| r.resumed));
    assert_eq!(record_keys(&resumed), record_keys(&reference));
    let _ = std::fs::remove_file(&path);
}
