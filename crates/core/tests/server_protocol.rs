//! In-process protocol tests for `crystal::server`: the malformed
//! corpus through the upload path, the wire status taxonomy, admission
//! control (session cap and in-flight cap), panic isolation, and
//! graceful drain. Servers here use a *local* `ShutdownFlag` — never
//! `install_signal_handlers` — so tests cannot poison each other
//! through the process-global flag.

use std::collections::HashMap;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

use crystal::fingerprint::{escape_json, parse_json_object};
use crystal::{serve, ServerHandle, ServerOptions};

const INVERTER_CHAIN: &str = "| two inverters\n\
i a\n\
o y\n\
n a m gnd 2 8\n\
p a m vdd 2 16\n\
C m 20\n\
n m y gnd 2 8\n\
p m y vdd 2 16\n\
C y 100\n";

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/netlists/malformed")
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(handle: &ServerHandle) -> Client {
        let stream = TcpStream::connect(handle.addr()).expect("connect to test server");
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> HashMap<String, String> {
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        assert!(
            !response.is_empty(),
            "server closed the connection instead of responding"
        );
        parse_json_object(response.trim_end())
            .unwrap_or_else(|| panic!("response is not flat JSON: {response}"))
    }

    fn request(&mut self, line: &str) -> HashMap<String, String> {
        self.send(line);
        self.recv()
    }
}

fn open_request(session: &str, name: &str, netlist: &str) -> String {
    format!(
        "{{\"op\":\"open\",\"session\":\"{session}\",\"name\":\"{}\",\"netlist\":\"{}\"}}",
        escape_json(name),
        escape_json(netlist)
    )
}

fn status(response: &HashMap<String, String>) -> &str {
    response.get("status").map_or("<missing>", String::as_str)
}

#[test]
fn malformed_corpus_uploads_all_return_located_parse_errors() {
    let handle = serve(ServerOptions::default()).expect("server starts");
    let mut client = Client::connect(&handle);
    let mut checked = 0usize;
    for entry in fs::read_dir(corpus_dir()).expect("malformed corpus directory exists") {
        let path = entry.expect("readable entry").path();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        // The upload path is .sim-only; hostile .sp/.tech text must
        // still come back as a located parse error, not a hang/panic.
        match path.extension().and_then(|e| e.to_str()) {
            Some("sim" | "sp" | "tech") => {}
            _ => continue,
        }
        let text = fs::read_to_string(&path).expect("readable corpus file");
        let response = client.request(&open_request("bad", &name, &text));
        assert_eq!(
            status(&response),
            "parse_error",
            "{name}: expected parse_error, got {response:?}"
        );
        let error = response.get("error").expect("error field");
        assert!(
            error.contains("line ") && error.contains("column "),
            "{name}: diagnostic lacks line/column: {error}"
        );
        assert_eq!(response.get("retryable").map(String::as_str), Some("false"));
        // The daemon must keep serving after each hostile upload.
        assert_eq!(status(&client.request("{\"op\":\"ping\"}")), "ok");
        checked += 1;
    }
    assert!(checked >= 13, "corpus shrank: only {checked} files checked");
    // No session leaked from any rejected upload.
    let stats = client.request("{\"op\":\"stats\"}");
    assert_eq!(stats.get("sessions").map(String::as_str), Some("0"));
    assert_eq!(stats.get("sessions_opened").map(String::as_str), Some("0"));
    handle.stop();
    handle.join();
}

#[test]
fn malformed_wire_frames_answer_errors_without_killing_the_daemon() {
    let handle = serve(ServerOptions::default()).expect("server starts");

    // Invalid UTF-8 bytes in a frame: decoded lossily, rejected as
    // not-JSON, and the connection keeps serving.
    let mut client = Client::connect(&handle);
    client
        .writer
        .write_all(b"\xff\xfe{\"op\":\"ping\"}\x80\n")
        .expect("send invalid utf-8");
    client.writer.flush().expect("flush");
    let response = client.recv();
    assert_eq!(status(&response), "parse_error", "got {response:?}");
    assert_eq!(response.get("retryable").map(String::as_str), Some("false"));
    assert_eq!(status(&client.request("{\"op\":\"ping\"}")), "ok");

    // Unterminated JSON: the newline ends the frame mid-object.
    let response = client.request("{\"op\":\"ping\"");
    assert_eq!(status(&response), "parse_error", "got {response:?}");
    assert_eq!(status(&client.request("{\"op\":\"ping\"}")), "ok");

    // Binary garbage before a valid frame: the garbage line errors, the
    // valid frame after it still answers.
    client
        .writer
        .write_all(b"\x00\x01\x02\xde\xad\xbe\xef\n{\"op\":\"ping\"}\n")
        .expect("send garbage then ping");
    client.writer.flush().expect("flush");
    let response = client.recv();
    assert_eq!(status(&response), "parse_error", "got {response:?}");
    let response = client.recv();
    assert_eq!(status(&response), "ok", "got {response:?}");

    // Oversized frame (no newline until past the cap): answered with a
    // located parse_error, then the connection is cut to stop the flood.
    let mut hostile = Client::connect(&handle);
    let chunk = vec![b'a'; 64 * 1024];
    let mut sent = 0usize;
    while sent <= crystal::server::MAX_REQUEST_BYTES {
        if hostile.writer.write_all(&chunk).is_err() {
            break; // The server may already have cut us off mid-flood.
        }
        sent += chunk.len();
    }
    let _ = hostile.writer.flush();
    let mut response = String::new();
    if hostile.reader.read_line(&mut response).is_ok() && !response.is_empty() {
        let response = parse_json_object(response.trim_end()).expect("flat JSON");
        assert_eq!(status(&response), "parse_error", "got {response:?}");
        assert!(
            response
                .get("error")
                .is_some_and(|e| e.contains("size limit")),
            "got {response:?}"
        );
    }

    // The daemon survived all of it with no leaked sessions.
    let mut fresh = Client::connect(&handle);
    let stats = fresh.request("{\"op\":\"stats\"}");
    assert_eq!(status(&stats), "ok");
    assert_eq!(stats.get("sessions").map(String::as_str), Some("0"));
    assert_eq!(stats.get("sessions_opened").map(String::as_str), Some("0"));
    let parse_errors: u64 = stats
        .get("parse_errors")
        .and_then(|n| n.parse().ok())
        .unwrap_or(0);
    assert!(parse_errors >= 3, "got {stats:?}");

    handle.stop();
    handle.join();
}

#[test]
fn wire_taxonomy_distinguishes_retryable_from_fatal() {
    let options = ServerOptions {
        max_sessions: 1,
        ..ServerOptions::default()
    };
    let handle = serve(options).expect("server starts");
    let mut client = Client::connect(&handle);

    // Not JSON at all → parse_error, fatal.
    let response = client.request("this is not json");
    assert_eq!(status(&response), "parse_error");
    assert_eq!(response.get("retryable").map(String::as_str), Some("false"));

    // Unknown op and missing fields → error, fatal.
    assert_eq!(status(&client.request("{\"op\":\"frobnicate\"}")), "error");
    assert_eq!(status(&client.request("{\"op\":\"open\"}")), "error");
    assert_eq!(
        status(&client.request("{\"op\":\"edit\",\"session\":\"nope\",\"script\":\"cap y 1\"}")),
        "error"
    );

    // A starved budget → budget, fatal (retrying cannot help).
    let mut open = open_request("b", "chain.sim", INVERTER_CHAIN);
    open.truncate(open.len() - 1);
    open.push_str(",\"max_stage_evals\":\"1\"}");
    let response = client.request(&open);
    assert_eq!(status(&response), "budget", "got {response:?}");
    assert_eq!(response.get("retryable").map(String::as_str), Some("false"));

    // deadline_ms=0 pre-cancels: deterministic timeout, retryable.
    let mut open = open_request("t", "chain.sim", INVERTER_CHAIN);
    open.truncate(open.len() - 1);
    open.push_str(",\"deadline_ms\":\"0\"}");
    let response = client.request(&open);
    assert_eq!(status(&response), "timeout", "got {response:?}");
    assert_eq!(response.get("retryable").map(String::as_str), Some("true"));

    // Neither failed open occupied the single session slot.
    let response = client.request(&open_request("s1", "chain.sim", INVERTER_CHAIN));
    assert_eq!(status(&response), "ok", "got {response:?}");

    // Session cap exceeded → overloaded, retryable (a slot may free up).
    let response = client.request(&open_request("s2", "chain.sim", INVERTER_CHAIN));
    assert_eq!(status(&response), "overloaded", "got {response:?}");
    assert_eq!(response.get("retryable").map(String::as_str), Some("true"));

    // Closing the session frees the slot: the retry then succeeds.
    assert_eq!(
        status(&client.request("{\"op\":\"close\",\"session\":\"s1\"}")),
        "ok"
    );
    let response = client.request(&open_request("s2", "chain.sim", INVERTER_CHAIN));
    assert_eq!(status(&response), "ok", "got {response:?}");

    // Correlation ids are echoed back verbatim.
    let response = client.request("{\"op\":\"ping\",\"id\":\"req-42\"}");
    assert_eq!(response.get("id").map(String::as_str), Some("req-42"));

    handle.stop();
    let stats = handle.join();
    assert!(stats.cancelled >= 1, "timeout should count as cancelled");
}

#[test]
fn inflight_cap_sheds_load_instead_of_queueing() {
    let options = ServerOptions {
        max_inflight: 1,
        chaos_ops: true,
        ..ServerOptions::default()
    };
    let handle = serve(options).expect("server starts");

    let mut slow = Client::connect(&handle);
    slow.send("{\"op\":\"sleep\",\"ms\":\"600\"}");
    std::thread::sleep(Duration::from_millis(150));

    // The slot is held by the sleeper: work is shed, never queued.
    let mut fast = Client::connect(&handle);
    let response = fast.request(&open_request("s1", "chain.sim", INVERTER_CHAIN));
    assert_eq!(status(&response), "overloaded", "got {response:?}");
    assert_eq!(response.get("retryable").map(String::as_str), Some("true"));

    // Ungated ops keep responding under full load.
    assert_eq!(status(&fast.request("{\"op\":\"ping\"}")), "ok");

    // Once the sleeper finishes, the same request is admitted.
    let response = slow.recv();
    assert_eq!(status(&response), "ok", "got {response:?}");
    let response = fast.request(&open_request("s1", "chain.sim", INVERTER_CHAIN));
    assert_eq!(status(&response), "ok", "got {response:?}");

    handle.stop();
    let stats = handle.join();
    assert!(stats.shed >= 1, "expected at least one shed request");
}

#[test]
fn a_panicking_request_poisons_only_its_session() {
    let options = ServerOptions {
        chaos_ops: true,
        ..ServerOptions::default()
    };
    let handle = serve(options).expect("server starts");
    let mut client = Client::connect(&handle);
    assert_eq!(
        status(&client.request(&open_request("victim", "chain.sim", INVERTER_CHAIN))),
        "ok"
    );
    assert_eq!(
        status(&client.request(&open_request("bystander", "chain.sim", INVERTER_CHAIN))),
        "ok"
    );

    let response = client.request("{\"op\":\"crash\",\"session\":\"victim\"}");
    assert_eq!(status(&response), "poisoned", "got {response:?}");
    assert_eq!(response.get("retryable").map(String::as_str), Some("false"));

    // The victim refuses further work; the bystander and the daemon
    // itself are untouched.
    let response = client.request("{\"op\":\"report\",\"session\":\"victim\"}");
    assert_eq!(status(&response), "poisoned", "got {response:?}");
    let response = client.request("{\"op\":\"report\",\"session\":\"bystander\"}");
    assert_eq!(status(&response), "ok", "got {response:?}");
    assert_eq!(status(&client.request("{\"op\":\"ping\"}")), "ok");

    handle.stop();
    let stats = handle.join();
    assert_eq!(stats.panics, 1);
}

#[test]
fn drain_finishes_inflight_work_and_interrupts_the_rest() {
    let options = ServerOptions {
        chaos_ops: true,
        ..ServerOptions::default()
    };
    let handle = serve(options).expect("server starts");
    let mut client = Client::connect(&handle);

    // Three buffered requests: the sleep is in flight when the drain
    // starts, the open arrives during it, and ping is ungated. The
    // drain contract: in-flight work finishes, later gated work is
    // interrupted (retryable), ungated ops still answer.
    let open = open_request("late", "chain.sim", INVERTER_CHAIN);
    let script = format!("{{\"op\":\"sleep\",\"ms\":\"400\"}}\n{open}\n{{\"op\":\"ping\"}}\n");
    client.writer.write_all(script.as_bytes()).expect("send");
    client.writer.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(100));
    handle.stop();

    let response = client.recv();
    assert_eq!(status(&response), "ok", "sleep should finish: {response:?}");
    assert_eq!(response.get("slept_ms").map(String::as_str), Some("400"));
    let response = client.recv();
    assert_eq!(status(&response), "interrupted", "got {response:?}");
    assert_eq!(response.get("retryable").map(String::as_str), Some("true"));
    let response = client.recv();
    assert_eq!(status(&response), "ok", "ping is ungated: {response:?}");

    // join() returning proves the daemon exits instead of hanging, and
    // the dropped listener then refuses new connections.
    let addr = handle.addr();
    let stats = handle.join();
    assert!(stats.interrupted >= 1);
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err(),
        "drained server still accepts connections"
    );
}

#[test]
fn history_and_diff_require_a_run_database() {
    let handle = serve(ServerOptions::default()).expect("server starts");
    let mut client = Client::connect(&handle);
    let response = client.request("{\"op\":\"history\"}");
    assert_eq!(status(&response), "error", "got {response:?}");
    assert!(
        response
            .get("error")
            .is_some_and(|e| e.contains("--run-db")),
        "got {response:?}"
    );
    let response = client.request("{\"op\":\"diff\",\"a\":\"x\",\"b\":\"y\"}");
    assert_eq!(status(&response), "error", "got {response:?}");
    handle.stop();
    handle.join();
}

#[test]
fn history_lists_runs_and_diff_gates_on_thresholds() {
    use crystal::runstore::{self, RunStore};

    // Seed a run database with a clean pair and an injected 2x-fault
    // record, exactly what `crystal-cli batch --run-db` writes.
    let db = std::env::temp_dir().join(format!("crystal_server_rundb_{}", std::process::id()));
    let _ = fs::remove_dir_all(&db);
    let net = mosnet::sim_format::parse(INVERTER_CHAIN, "chain").expect("fixture parses");
    let tech = crystal::tech::Technology::nominal();
    let store = RunStore::open(&db).expect("store opens");
    let mut ids = Vec::new();
    for inject in [None, None, Some((crystal::ModelKind::Slope, 2.0))] {
        let mut record = runstore::RunRecord::new(runstore::new_meta("batch", 0, "slope", 1));
        for (label, scenario) in crystal::selfcheck::standard_scenarios(
            &net,
            &HashMap::new(),
            mosnet::units::Seconds::ZERO,
        ) {
            let result = crystal::analyze(&net, &tech, crystal::ModelKind::Slope, &scenario)
                .expect("analysis succeeds");
            record.push_result(
                &net,
                &label,
                &result,
                &crystal::durable::scenario_summary(&net, &result),
                inject,
            );
        }
        record.exit = Some(runstore::ExitRow {
            status: "ok".to_string(),
            code: 0,
            wall_us: 1,
        });
        store.record(&record).expect("record writes");
        ids.push(record.meta.id.clone());
    }

    let options = ServerOptions {
        run_db: Some(db.clone()),
        ..ServerOptions::default()
    };
    let handle = serve(options).expect("server starts");
    let mut client = Client::connect(&handle);

    let response = client.request("{\"op\":\"history\"}");
    assert_eq!(status(&response), "ok", "got {response:?}");
    assert_eq!(response.get("runs").map(String::as_str), Some("3"));
    for index in 0..3 {
        assert_eq!(
            response
                .get(&format!("run.{index}.command"))
                .map(String::as_str),
            Some("batch"),
            "got {response:?}"
        );
        assert_eq!(
            response
                .get(&format!("run.{index}.complete"))
                .map(String::as_str),
            Some("true"),
            "got {response:?}"
        );
    }

    // Identical runs diff clean even under a tight timing threshold.
    let response = client.request(&format!(
        "{{\"op\":\"diff\",\"a\":\"{}\",\"b\":\"{}\",\"fail_on_timing_pct\":\"0.5\"}}",
        ids[0], ids[1]
    ));
    assert_eq!(status(&response), "ok", "got {response:?}");
    assert_eq!(response.get("verdict").map(String::as_str), Some("clean"));
    assert_eq!(
        response.get("digest_mismatches").map(String::as_str),
        Some("0")
    );

    // The injected run trips the timing gate: divergence on the wire.
    let response = client.request(&format!(
        "{{\"op\":\"diff\",\"a\":\"{}\",\"b\":\"{}\",\"fail_on_timing_pct\":\"0.5\"}}",
        ids[0], ids[2]
    ));
    assert_eq!(status(&response), "divergence", "got {response:?}");
    assert_eq!(
        response.get("verdict").map(String::as_str),
        Some("timing_regression")
    );
    assert!(
        response
            .get("digest_mismatches")
            .is_some_and(|n| n.parse::<u64>().unwrap_or(0) > 0),
        "got {response:?}"
    );

    // Without thresholds the same pair reports but does not gate.
    let response = client.request(&format!(
        "{{\"op\":\"diff\",\"a\":\"{}\",\"b\":\"{}\"}}",
        ids[0], ids[2]
    ));
    assert_eq!(status(&response), "ok", "got {response:?}");

    // Unknown specs answer with a plain error, not a hang or crash.
    let response = client.request("{\"op\":\"diff\",\"a\":\"run-nope\",\"b\":\"run-nada\"}");
    assert_eq!(status(&response), "error", "got {response:?}");

    handle.stop();
    handle.join();
    let _ = fs::remove_dir_all(&db);
}
