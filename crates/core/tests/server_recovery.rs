//! Crash-safety tests against the real `crystal-cli serve` binary:
//! SIGKILL mid-session then restart with `--resume` replays every
//! journaled session bit-identically, and SIGTERM drains — the
//! in-flight request finishes and the process exits cleanly.

use std::collections::HashMap;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use crystal::fingerprint::{escape_json, parse_json_object};

const BIN: &str = env!("CARGO_BIN_EXE_crystal-cli");

const INVERTER_CHAIN: &str = "| two inverters\n\
i a\n\
o y\n\
n a m gnd 2 8\n\
p a m vdd 2 16\n\
C m 20\n\
n m y gnd 2 8\n\
p m y vdd 2 16\n\
C y 100\n";

fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("crystal-server-{test}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Spawns `crystal-cli serve` and blocks until it prints its address.
fn spawn_server(journal_dir: &std::path::Path, extra: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(BIN)
        .arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--journal-dir")
        .arg(journal_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout);
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        assert!(Instant::now() < deadline, "serve never printed its address");
        let mut line = String::new();
        let n = lines.read_line(&mut line).expect("serve stdout");
        assert!(n > 0, "serve exited before printing its address");
        if let Some(addr) = line.trim().strip_prefix("crystal-cli: listening on ") {
            break addr.parse().expect("socket address");
        }
    };
    // Keep draining stdout so the daemon never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while lines.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    (child, addr)
}

fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let stream = loop {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
            Ok(stream) => break stream,
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot connect to daemon: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    stream.set_nodelay(true).ok();
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (reader, stream)
}

fn request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &str,
) -> HashMap<String, String> {
    writer.write_all(line.as_bytes()).expect("send");
    writer.write_all(b"\n").expect("send newline");
    writer.flush().expect("flush");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    assert!(!response.is_empty(), "daemon closed the connection");
    parse_json_object(response.trim_end())
        .unwrap_or_else(|| panic!("response is not flat JSON: {response}"))
}

fn ok(response: &HashMap<String, String>) -> &HashMap<String, String> {
    assert_eq!(
        response.get("status").map(String::as_str),
        Some("ok"),
        "expected ok: {response:?}"
    );
    response
}

fn send_signal(child: &Child, signal: i32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    let rc = unsafe { kill(child.id() as i32, signal) };
    assert_eq!(rc, 0, "kill({}, {signal}) failed", child.id());
}

const SIGTERM: i32 = 15;
const SIGKILL: i32 = 9;

#[test]
fn sigkill_then_resume_replays_sessions_bit_identically() {
    let dir = scratch_dir("sigkill-resume");
    let (mut child, addr) = spawn_server(&dir, &[]);
    let (mut reader, mut writer) = connect(addr);

    let open = format!(
        "{{\"op\":\"open\",\"session\":\"s1\",\"name\":\"chain.sim\",\"netlist\":\"{}\"}}",
        escape_json(INVERTER_CHAIN)
    );
    ok(&request(&mut reader, &mut writer, &open));
    for edit in ["cap y 150", "cap m 40"] {
        let line = format!("{{\"op\":\"edit\",\"session\":\"s1\",\"script\":\"{edit}\"}}");
        ok(&request(&mut reader, &mut writer, &line));
    }
    let before = request(
        &mut reader,
        &mut writer,
        "{\"op\":\"report\",\"session\":\"s1\"}",
    );
    ok(&before);

    // The journal fsync happens before each response, so everything the
    // client saw acknowledged must survive a SIGKILL.
    send_signal(&child, SIGKILL);
    child.wait().expect("killed daemon reaped");

    let (mut child, addr) = spawn_server(&dir, &["--resume"]);
    let (mut reader, mut writer) = connect(addr);
    let after = request(
        &mut reader,
        &mut writer,
        "{\"op\":\"report\",\"session\":\"s1\"}",
    );
    ok(&after);
    for key in ["digest", "edits", "scenarios"] {
        assert_eq!(
            before.get(key),
            after.get(key),
            "`{key}` changed across SIGKILL + --resume"
        );
    }
    for (key, value) in &before {
        if key.starts_with("scenario.") {
            assert_eq!(
                after.get(key),
                Some(value),
                "`{key}` changed across SIGKILL + --resume"
            );
        }
    }
    let stats = ok(&request(&mut reader, &mut writer, "{\"op\":\"stats\"}")).clone();
    assert_eq!(stats.get("recovered").map(String::as_str), Some("1"));
    assert_eq!(stats.get("recovery_failed").map(String::as_str), Some("0"));

    send_signal(&child, SIGTERM);
    let status = child.wait().expect("daemon reaped");
    assert!(status.success(), "drained daemon should exit 0: {status:?}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_mid_request_finishes_the_request_then_exits_cleanly() {
    let dir = scratch_dir("sigterm-drain");
    let (mut child, addr) = spawn_server(&dir, &["--chaos-ops"]);
    let (mut reader, mut writer) = connect(addr);

    writer
        .write_all(b"{\"op\":\"sleep\",\"ms\":\"500\"}\n")
        .expect("send sleep");
    writer.flush().expect("flush");
    std::thread::sleep(Duration::from_millis(150));
    send_signal(&child, SIGTERM);

    // Drain contract: the in-flight request still completes and is
    // answered before the connection closes.
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    let response = parse_json_object(response.trim_end()).expect("flat JSON response");
    assert_eq!(response.get("status").map(String::as_str), Some("ok"));
    assert_eq!(response.get("slept_ms").map(String::as_str), Some("500"));

    let status = child.wait().expect("daemon reaped");
    assert!(status.success(), "drained daemon should exit 0: {status:?}");
    // And the listener is gone: no new connections after drain.
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err());
    let _ = fs::remove_dir_all(&dir);
}
