//! Asserts the CLI's stable exit-code taxonomy against the real binary.
//!
//! Scripts and CI depend on these numbers; a change here is a breaking
//! interface change:
//!
//! | code | meaning |
//! | ---- | ------- |
//! | 0 | success |
//! | 1 | generic failure |
//! | 2 | parse error |
//! | 3 | analysis budget exhausted |
//! | 4 | self-check divergence |
//! | 5 | scenario timeout |
//! | 6 | scenario poisoned (retry ladder exhausted) |
//! | 7 | I/O failure |
//! | 8 | interrupted by SIGINT/SIGTERM |

use std::path::PathBuf;
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_crystal-cli");

const INVERTER_CHAIN: &str = "| two inverters\ni a\no y\n\
    n a m gnd 2 8\np a m vdd 2 16\nC m 20\n\
    n m y gnd 2 8\np m y vdd 2 16\nC y 100\n";

fn fixture(tag: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "crystal_exit_codes_{tag}_{}.sim",
        std::process::id()
    ));
    std::fs::write(&path, contents).expect("fixture writes");
    path
}

fn temp_journal(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "crystal_exit_codes_{tag}_{}.journal",
        std::process::id()
    ))
}

fn exit_code(args: &[&str]) -> i32 {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("binary runs")
        .status
        .code()
        .expect("binary exits with a code")
}

#[test]
fn success_is_zero() {
    let path = fixture("ok", INVERTER_CHAIN);
    assert_eq!(exit_code(&["batch", path.to_str().unwrap()]), 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_command_is_one() {
    let path = fixture("generic", INVERTER_CHAIN);
    assert_eq!(exit_code(&["frobnicate", path.to_str().unwrap()]), 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn parse_error_is_two() {
    let path = fixture("parse", "n a\n");
    assert_eq!(exit_code(&["batch", path.to_str().unwrap()]), 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn budget_exhaustion_is_three() {
    let path = fixture("budget", INVERTER_CHAIN);
    assert_eq!(
        exit_code(&["batch", path.to_str().unwrap(), "--max-stages", "0"]),
        3
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_divergence_is_four() {
    let path = fixture("diverge", INVERTER_CHAIN);
    let journal = temp_journal("diverge");
    let journal_s = journal.to_str().unwrap().to_string();
    assert_eq!(
        exit_code(&["batch", path.to_str().unwrap(), "--journal", &journal_s]),
        0
    );
    // Flip one hex digit of the first journaled digest: the resumed
    // record no longer matches a fresh analysis.
    let mut text = std::fs::read_to_string(&journal).expect("journal exists");
    let marker = "\"digest\":\"";
    let at = text.find(marker).expect("journal has a digest") + marker.len();
    let flipped = if &text[at..at + 1] == "0" { "f" } else { "0" };
    text.replace_range(at..at + 1, flipped);
    std::fs::write(&journal, text).expect("tampers journal");
    assert_eq!(
        exit_code(&[
            "batch",
            path.to_str().unwrap(),
            "--journal",
            &journal_s,
            "--resume",
            "--selfcheck-resume",
        ]),
        4
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn scenario_timeout_is_five() {
    let path = fixture("timeout", INVERTER_CHAIN);
    let journal = temp_journal("timeout");
    assert_eq!(
        exit_code(&[
            "batch",
            path.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--scenario-timeout",
            "0",
            "--max-retries",
            "0",
        ]),
        5
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn poisoned_quarantine_is_six() {
    let path = fixture("poison", INVERTER_CHAIN);
    let journal = temp_journal("poison");
    assert_eq!(
        exit_code(&[
            "batch",
            path.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--scenario-timeout",
            "0",
            "--max-retries",
            "1",
            "--retry-backoff-ms",
            "1",
        ]),
        6
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn io_failure_is_seven() {
    assert_eq!(
        exit_code(&["batch", "/nonexistent/crystal_exit_codes.sim"]),
        7
    );
}

#[cfg(unix)]
#[test]
fn sigterm_drains_and_exits_eight() {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    const SIGTERM: i32 = 15;

    let path = fixture("sigterm", INVERTER_CHAIN);
    let journal = temp_journal("sigterm");
    // A zero deadline times out every attempt, and the backoff ladder
    // (100+200+400+800+1600 ms) keeps the first scenario busy for
    // seconds — plenty of runway to land a signal mid-run. The second
    // scenario is then skipped by the drain.
    let mut child = Command::new(BIN)
        .args([
            "batch",
            path.to_str().unwrap(),
            "--journal",
            journal.to_str().unwrap(),
            "--scenario-timeout",
            "0",
            "--max-retries",
            "5",
            "--retry-backoff-ms",
            "100",
        ])
        .spawn()
        .expect("binary spawns");
    std::thread::sleep(std::time::Duration::from_millis(300));
    let rc = unsafe { kill(child.id() as i32, SIGTERM) };
    assert_eq!(rc, 0, "signal delivered");
    let status = child.wait().expect("child exits");
    assert_eq!(status.code(), Some(8), "graceful drain exits 8");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&journal);
}
