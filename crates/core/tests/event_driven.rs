//! Property tests for event-driven (dirty-set) propagation: the
//! dirty-set engine must reproduce the reference full-Jacobi engine bit
//! for bit at every thread count, while charging strictly fewer stage
//! evaluations on multi-round circuits, and tripped budgets must land on
//! the identical partial result whether the run is cold or warm, serial
//! or parallel.

use crystal::analyzer::{analyze_with_options, AnalyzerOptions, Edge, PropagationMode, Scenario};
use crystal::budget::AnalysisBudget;
use crystal::memo::StageCache;
use crystal::models::ModelKind;
use crystal::obs::{Phase, TraceSink};
use crystal::tech::Technology;
use crystal::TimingError;
use mosnet::generators::{inverter_chain, Style};
use mosnet::network::NetworkBuilder;
use mosnet::units::Farads;
use mosnet::{Geometry, Network, NodeKind, TransistorKind};
use std::sync::Arc;

/// Same irregular random mesh the determinism suite uses.
fn random_pass_mesh(seed: u64, nodes: usize) -> Network {
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut b = NetworkBuilder::new("pass-mesh");
    let vdd = b.power();
    let gnd = b.ground();
    let inp = b.node("in", NodeKind::Input);
    let ctl = b.node("ctl", NodeKind::Input);
    let drv = b.node("drv", NodeKind::Internal);
    b.set_capacitance(drv, Farads::from_femto(20.0));
    b.add_transistor(
        TransistorKind::NEnhancement,
        inp,
        drv,
        gnd,
        Geometry::from_microns(8.0, 2.0),
    );
    b.add_transistor(
        TransistorKind::PEnhancement,
        inp,
        drv,
        vdd,
        Geometry::from_microns(16.0, 2.0),
    );
    let mut mesh = vec![drv];
    for i in 0..nodes {
        let kind = if i + 1 == nodes {
            NodeKind::Output
        } else {
            NodeKind::Internal
        };
        let n = b.node(&format!("m{i}"), kind);
        b.set_capacitance(n, Farads::from_femto(20.0 + (next() % 1000) as f64 * 0.1));
        let from = mesh[next() as usize % mesh.len()];
        b.add_transistor(
            TransistorKind::NEnhancement,
            ctl,
            from,
            n,
            Geometry::from_microns(8.0, 2.0),
        );
        mesh.push(n);
    }
    b.build().expect("pass mesh is a valid network")
}

fn mesh_scenario(net: &Network) -> Scenario {
    let inp = net.node_by_name("in").unwrap();
    let ctl = net.node_by_name("ctl").unwrap();
    Scenario::step(inp, Edge::Rising).with_static(ctl, true)
}

fn options(propagation: PropagationMode, threads: usize) -> AnalyzerOptions {
    AnalyzerOptions {
        propagation,
        threads,
        ..AnalyzerOptions::default()
    }
}

#[test]
fn dirty_set_matches_full_jacobi_bit_for_bit() {
    let tech = Technology::nominal();
    for seed in 0..6u64 {
        let net = random_pass_mesh(seed, 22);
        let scenario = mesh_scenario(&net);
        for model in [ModelKind::Lumped, ModelKind::RcTree, ModelKind::Slope] {
            let reference = analyze_with_options(
                &net,
                &tech,
                model,
                &scenario,
                options(PropagationMode::FullJacobi, 1),
            )
            .unwrap_or_else(|e| panic!("seed {seed}: full-Jacobi analysis failed: {e}"));
            for threads in [1, 2, 4] {
                let dirty = analyze_with_options(
                    &net,
                    &tech,
                    model,
                    &scenario,
                    options(PropagationMode::DirtySet, threads),
                )
                .unwrap_or_else(|e| panic!("seed {seed}, threads {threads}: {e}"));
                assert_eq!(
                    dirty, reference,
                    "seed {seed}, model {model:?}, threads {threads}"
                );
            }
        }
    }
}

#[test]
fn dirty_set_charges_strictly_fewer_evals_over_the_same_rounds() {
    // A 24-stage inverter chain needs ~25 propagation rounds; full
    // Jacobi re-evaluates all ~24 work items every round, the dirty set
    // only the wavefront. Rounds must agree exactly — the saving comes
    // from skipped re-evaluations, never from converging differently.
    let tech = Technology::nominal();
    let net =
        inverter_chain(Style::Cmos, 24, 2.0, Farads::from_femto(100.0)).expect("chain generates");
    let input = net.node_by_name("in").unwrap();
    let scenario = Scenario::step(input, Edge::Rising);

    let charged_and_rounds = |propagation: PropagationMode| {
        let sink = Arc::new(TraceSink::new());
        let opts = AnalyzerOptions {
            propagation,
            trace: Some(Arc::clone(&sink)),
            ..AnalyzerOptions::default()
        };
        let result = analyze_with_options(&net, &tech, ModelKind::Slope, &scenario, opts)
            .expect("analysis succeeds");
        let metrics = sink.metrics();
        let charged = metrics.counter(Phase::Evaluation, "stage_evals_charged");
        let rounds = metrics
            .phases
            .iter()
            .find(|m| m.phase == Phase::Propagation)
            .map_or(0, |m| m.spans);
        (result, charged, rounds)
    };

    let (full_result, full_charged, full_rounds) = charged_and_rounds(PropagationMode::FullJacobi);
    let (dirty_result, dirty_charged, dirty_rounds) = charged_and_rounds(PropagationMode::DirtySet);

    assert_eq!(dirty_result, full_result);
    assert_eq!(dirty_rounds, full_rounds, "round counts must agree");
    assert!(full_rounds > 2, "the chain must be a multi-round circuit");
    assert!(
        dirty_charged < full_charged,
        "dirty set charged {dirty_charged} evals, full Jacobi {full_charged}"
    );
    // The wavefront on a chain is O(1) wide: the saving is massive, not
    // marginal. Full Jacobi is quadratic in rounds here.
    assert!(
        dirty_charged * 5 <= full_charged,
        "expected at least 5x fewer charged evals: {dirty_charged} vs {full_charged}"
    );
}

#[test]
fn tripped_budget_is_identical_cold_or_warm_serial_or_parallel() {
    // The stage cap trips in a later round on the chain, so the serial
    // pre-charge order is what decides which evaluations land under the
    // cap. Cold vs warm cache and serial vs parallel must all produce
    // the identical partial result.
    let tech = Technology::nominal();
    let net =
        inverter_chain(Style::Cmos, 24, 2.0, Farads::from_femto(100.0)).expect("chain generates");
    let input = net.node_by_name("in").unwrap();
    let scenario = Scenario::step(input, Edge::Rising);

    for cap in [5, 17, 40] {
        let budget = AnalysisBudget {
            max_stage_evals: Some(cap),
            ..AnalysisBudget::unlimited()
        };
        let run = |threads: usize, cache: Option<Arc<StageCache>>| {
            let opts = AnalyzerOptions {
                threads,
                budget,
                cache,
                ..AnalyzerOptions::default()
            };
            match analyze_with_options(&net, &tech, ModelKind::Slope, &scenario, opts) {
                Err(TimingError::BudgetExhausted { partial }) => partial,
                other => panic!("cap {cap}: expected a tripped budget, got {other:?}"),
            }
        };
        let reference = run(1, None);
        let warm = Arc::new(StageCache::new());
        // Prime the cache with a full unbudgeted run.
        analyze_with_options(
            &net,
            &tech,
            ModelKind::Slope,
            &scenario,
            AnalyzerOptions {
                cache: Some(Arc::clone(&warm)),
                ..AnalyzerOptions::default()
            },
        )
        .expect("priming run succeeds");
        assert!(warm.stats().misses > 0);
        for threads in [1, 2, 4] {
            for cache in [None, Some(Arc::clone(&warm))] {
                let label = if cache.is_some() { "warm" } else { "cold" };
                let partial = run(threads, cache);
                assert_eq!(
                    partial.result, reference.result,
                    "cap {cap}, threads {threads}, {label}: partial arrivals differ"
                );
                assert_eq!(partial.exceeded, reference.exceeded);
                assert_eq!(partial.rounds_completed, reference.rounds_completed);
            }
        }
    }
}
