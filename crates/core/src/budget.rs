//! Hard work budgets for the analyzer.
//!
//! Crystal's promise is that switch-level analysis stays cheap; a
//! pathological pass-transistor mesh must not be able to silently turn
//! it expensive. An [`AnalysisBudget`] caps the stage evaluations, the
//! extracted paths per node, and the wall-clock time of one analysis.
//! When a cap is hit the analyzer stops immediately and returns
//! [`TimingError::BudgetExhausted`](crate::error::TimingError::BudgetExhausted)
//! carrying a [`PartialTiming`] — every arrival computed so far plus
//! which cap fired — instead of an all-or-nothing abort.
//!
//! Partial results are a *prefix* of the unbudgeted analysis: arrivals
//! are only ever added or refined during propagation, never removed, so
//! every node present in the partial result also switches in the full
//! result.

use crate::analyzer::TimingResult;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cooperative-cancellation flag.
///
/// Cloning yields a handle to the **same** flag; once [`CancelToken::cancel`]
/// is called every holder observes it. The analyzer polls the token at the
/// same points it polls the wall-clock deadline, so a cancelled analysis
/// stops with [`BudgetExceeded::Cancelled`] and a usable
/// [`PartialTiming`] prefix — exactly the budget-exhaustion contract.
/// The durable batch layer's watchdog uses this to impose per-scenario
/// deadlines from *outside* the analysis.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// A borrowed view of the underlying flag, for APIs (like the
    /// nanospice reference simulator) that poll a plain [`AtomicBool`].
    pub fn as_atomic(&self) -> &AtomicBool {
        &self.flag
    }
}

/// Caps on the work one analysis may perform. `None` means unlimited;
/// the default budget is fully unlimited, matching historical behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AnalysisBudget {
    /// Maximum stage (model) evaluations across all propagation rounds.
    pub max_stage_evals: Option<usize>,
    /// Maximum extracted driving paths tolerated for any single node.
    pub max_paths_per_node: Option<usize>,
    /// Wall-clock deadline for the whole analysis.
    pub deadline: Option<Duration>,
}

impl AnalysisBudget {
    /// No caps at all (the default).
    pub fn unlimited() -> AnalysisBudget {
        AnalysisBudget::default()
    }

    /// `true` when no cap is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_stage_evals.is_none()
            && self.max_paths_per_node.is_none()
            && self.deadline.is_none()
    }
}

/// Which budget cap fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BudgetExceeded {
    /// The stage-evaluation cap was reached.
    StageEvals {
        /// The configured cap.
        limit: usize,
    },
    /// One node's extracted path count exceeded the cap.
    PathsPerNode {
        /// The configured cap.
        limit: usize,
        /// Paths actually extracted for the offending node.
        found: usize,
    },
    /// The wall-clock deadline passed.
    Deadline {
        /// The configured deadline.
        limit: Duration,
    },
    /// An external [`CancelToken`] was fired (watchdog timeout or
    /// shutdown) and the analysis stopped cooperatively.
    Cancelled,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetExceeded::StageEvals { limit } => {
                write!(f, "stage-evaluation cap of {limit} reached")
            }
            BudgetExceeded::PathsPerNode { limit, found } => {
                write!(
                    f,
                    "a node has {found} driving paths, over the cap of {limit}"
                )
            }
            BudgetExceeded::Deadline { limit } => {
                write!(f, "wall-clock deadline of {limit:?} passed")
            }
            BudgetExceeded::Cancelled => {
                write!(f, "analysis cancelled by an external request")
            }
        }
    }
}

/// A budget-limited analysis outcome: everything computed before the cap
/// fired.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialTiming {
    /// Arrivals computed so far; a prefix (node-subset) of the result an
    /// unbudgeted run would produce.
    pub result: TimingResult,
    /// The cap that stopped the analysis.
    pub exceeded: BudgetExceeded,
    /// Completed propagation rounds before the stop.
    pub rounds_completed: usize,
}

/// Run-scoped enforcement state: the budget plus the start instant and
/// the evaluation counter. The counter is atomic, so one tracker can be
/// shared by reference across the analyzer's worker threads; every
/// charge is observed exactly once no matter which thread makes it.
#[derive(Debug)]
pub(crate) struct BudgetTracker {
    budget: AnalysisBudget,
    started: Instant,
    stage_evals: AtomicUsize,
    cancel: Option<CancelToken>,
}

impl BudgetTracker {
    pub(crate) fn new(budget: AnalysisBudget, cancel: Option<CancelToken>) -> BudgetTracker {
        BudgetTracker {
            budget,
            started: Instant::now(),
            stage_evals: AtomicUsize::new(0),
            cancel,
        }
    }

    /// Errors once the wall-clock deadline has passed or the external
    /// cancel token (if any) has fired. Cancellation is checked first so
    /// a watchdog-initiated stop is reported as such even when the
    /// in-analysis deadline would also have expired.
    pub(crate) fn check_deadline(&self) -> Result<(), BudgetExceeded> {
        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(BudgetExceeded::Cancelled);
            }
        }
        match self.budget.deadline {
            Some(limit) if self.started.elapsed() >= limit => {
                Err(BudgetExceeded::Deadline { limit })
            }
            _ => Ok(()),
        }
    }

    /// Charges `n` stage evaluations, erroring when the cap is crossed.
    /// Shared-reference so concurrent workers can charge the same
    /// tracker; the saturating fetch-add makes every unit of work count
    /// exactly once even under contention.
    pub(crate) fn charge_stage_evals(&self, n: usize) -> Result<(), BudgetExceeded> {
        let total = self
            .stage_evals
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_add(n))
            })
            .expect("fetch_update closure never returns None")
            .saturating_add(n);
        match self.budget.max_stage_evals {
            Some(limit) if total > limit => Err(BudgetExceeded::StageEvals { limit }),
            _ => Ok(()),
        }
    }

    /// Errors when one node's path count exceeds the per-node cap.
    pub(crate) fn check_paths(&self, found: usize) -> Result<(), BudgetExceeded> {
        match self.budget.max_paths_per_node {
            Some(limit) if found > limit => Err(BudgetExceeded::PathsPerNode { limit, found }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    impl BudgetTracker {
        /// Test shorthand: a tracker with no external cancel token.
        fn new_t(budget: AnalysisBudget) -> BudgetTracker {
            BudgetTracker::new(budget, None)
        }
    }

    #[test]
    fn default_budget_is_unlimited() {
        assert!(AnalysisBudget::default().is_unlimited());
        assert!(AnalysisBudget::unlimited().is_unlimited());
        let capped = AnalysisBudget {
            max_stage_evals: Some(10),
            ..AnalysisBudget::default()
        };
        assert!(!capped.is_unlimited());
    }

    #[test]
    fn tracker_charges_stage_evals() {
        let t = BudgetTracker::new_t(AnalysisBudget {
            max_stage_evals: Some(5),
            ..AnalysisBudget::default()
        });
        assert!(t.charge_stage_evals(3).is_ok());
        assert!(t.charge_stage_evals(2).is_ok()); // exactly at the cap
        assert_eq!(
            t.charge_stage_evals(1),
            Err(BudgetExceeded::StageEvals { limit: 5 })
        );
    }

    #[test]
    fn concurrent_charges_count_each_unit_exactly_once() {
        let t = BudgetTracker::new_t(AnalysisBudget {
            max_stage_evals: Some(1000),
            ..AnalysisBudget::default()
        });
        let rejected: usize = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        (0..300)
                            .filter(|_| t.charge_stage_evals(1).is_err())
                            .count()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        // 1200 single-unit charges against a cap of 1000: exactly 200
        // must be rejected, regardless of interleaving.
        assert_eq!(rejected, 200);
    }

    #[test]
    fn tracker_checks_paths_per_node() {
        let t = BudgetTracker::new_t(AnalysisBudget {
            max_paths_per_node: Some(4),
            ..AnalysisBudget::default()
        });
        assert!(t.check_paths(4).is_ok());
        assert_eq!(
            t.check_paths(5),
            Err(BudgetExceeded::PathsPerNode { limit: 4, found: 5 })
        );
    }

    #[test]
    fn tracker_enforces_deadline() {
        let t = BudgetTracker::new_t(AnalysisBudget {
            deadline: Some(Duration::ZERO),
            ..AnalysisBudget::default()
        });
        assert!(matches!(
            t.check_deadline(),
            Err(BudgetExceeded::Deadline { .. })
        ));
        let unlimited = BudgetTracker::new(AnalysisBudget::default(), None);
        assert!(unlimited.check_deadline().is_ok());
    }

    #[test]
    fn exceeded_displays_name_the_cap() {
        assert!(BudgetExceeded::StageEvals { limit: 9 }
            .to_string()
            .contains("9"));
        assert!(BudgetExceeded::PathsPerNode { limit: 2, found: 7 }
            .to_string()
            .contains("7"));
        assert!(BudgetExceeded::Deadline {
            limit: Duration::from_millis(50)
        }
        .to_string()
        .contains("deadline"));
        assert!(BudgetExceeded::Cancelled.to_string().contains("cancelled"));
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        assert!(token.as_atomic().load(Ordering::Acquire));
    }

    #[test]
    fn tracker_reports_cancellation_before_deadline() {
        let token = CancelToken::new();
        let t = BudgetTracker::new(
            AnalysisBudget {
                deadline: Some(Duration::ZERO),
                ..AnalysisBudget::default()
            },
            Some(token.clone()),
        );
        // Deadline already expired, but an explicit cancel wins the race
        // so the caller can tell a watchdog stop from a budget stop.
        token.cancel();
        assert_eq!(t.check_deadline(), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn uncancelled_token_does_not_trip_tracker() {
        let t = BudgetTracker::new(AnalysisBudget::default(), Some(CancelToken::new()));
        assert!(t.check_deadline().is_ok());
    }
}
