//! Fail-soft batch execution of timing scenarios.
//!
//! A batch run (the CLI's `batch` command, regression sweeps) must not
//! lose nineteen good results because the twentieth scenario fails — or
//! worse, panics inside a model. [`run_batch_with`] isolates every
//! scenario behind [`std::panic::catch_unwind`], records each outcome,
//! and keeps going (unless `fail_fast` is set). The resulting
//! [`BatchRun`] separates successes from failures and renders a
//! structured summary for exit reporting.

use crate::analyzer::{analyze_with_options, AnalyzerOptions, Scenario, TimingResult};
use crate::error::TimingError;
use crate::models::ModelKind;
use crate::obs::Phase;
use crate::pool::ThreadPool;
use crate::tech::Technology;
use mosnet::Network;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Why one batch item produced no result.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BatchFailure<E> {
    /// The scenario returned an ordinary error.
    Error(E),
    /// The scenario panicked; the panic was caught and the batch
    /// continued.
    Panicked {
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl<E: fmt::Display> fmt::Display for BatchFailure<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchFailure::Error(e) => write!(f, "{e}"),
            BatchFailure::Panicked { message } => write!(f, "panicked: {message}"),
        }
    }
}

/// The outcome of one batch: per-item results in input order.
#[derive(Debug)]
pub struct BatchRun<T, E> {
    /// `(label, outcome)` for every item that was attempted.
    pub results: Vec<(String, Result<T, BatchFailure<E>>)>,
    /// `true` when `fail_fast` stopped the batch before the last item.
    pub aborted_early: bool,
}

impl<T, E> BatchRun<T, E> {
    /// `true` when every attempted item succeeded and none were skipped.
    pub fn all_ok(&self) -> bool {
        !self.aborted_early && self.results.iter().all(|(_, r)| r.is_ok())
    }

    /// The failed items.
    pub fn failures(&self) -> impl Iterator<Item = (&str, &BatchFailure<E>)> {
        self.results
            .iter()
            .filter_map(|(label, r)| r.as_ref().err().map(|e| (label.as_str(), e)))
    }
}

impl<T, E: fmt::Display> BatchRun<T, E> {
    /// A structured multi-line failure summary: a count line followed by
    /// one line per failure. Empty when everything succeeded.
    pub fn failure_summary(&self) -> String {
        let failed = self.failures().count();
        if failed == 0 && !self.aborted_early {
            return String::new();
        }
        let mut out = format!(
            "{failed} of {} attempted scenarios failed{}\n",
            self.results.len(),
            if self.aborted_early {
                " (batch aborted early by --fail-fast)"
            } else {
                ""
            }
        );
        for (label, failure) in self.failures() {
            out.push_str(&format!("  {label}: {failure}\n"));
        }
        out
    }
}

/// Runs `f` over every labelled item, catching panics so one bad item
/// cannot take down the batch. With `fail_fast`, stops after the first
/// failure (marking the run aborted when items remain).
pub fn run_batch_with<S, T, E, F>(
    items: &[(String, S)],
    mut f: F,
    fail_fast: bool,
) -> BatchRun<T, E>
where
    F: FnMut(&S) -> Result<T, E>,
{
    let mut results = Vec::with_capacity(items.len());
    let mut aborted_early = false;
    for (i, (label, item)) in items.iter().enumerate() {
        let outcome = match catch_unwind(AssertUnwindSafe(|| f(item))) {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(BatchFailure::Error(e)),
            Err(payload) => Err(BatchFailure::Panicked {
                message: panic_message(payload.as_ref()),
            }),
        };
        let failed = outcome.is_err();
        results.push((label.clone(), outcome));
        if failed && fail_fast {
            aborted_early = i + 1 < items.len();
            break;
        }
    }
    BatchRun {
        results,
        aborted_early,
    }
}

/// Parallel [`run_batch_with`]: fans the items across `threads` workers
/// (`0` = every hardware thread, `1` = the serial path) while keeping
/// the serial contract intact — per-item `catch_unwind` isolation,
/// results in input order, and with `fail_fast` an output that stops at
/// the first failure *in input order* (a later-indexed item failing
/// first on another worker never masks it).
///
/// With `fail_fast`, items are dispatched in bounded chunks; items in
/// the chunk containing the first failure may have executed even though
/// their results are discarded, but the observable [`BatchRun`] is
/// identical to the serial one whenever at most one item fails — and
/// always truncates at the input-order-first failure.
pub fn run_batch_par_with<S, T, E, F>(
    items: &[(String, S)],
    f: F,
    fail_fast: bool,
    threads: usize,
) -> BatchRun<T, E>
where
    S: Sync,
    T: Send,
    E: Send,
    F: Fn(&S) -> Result<T, E> + Sync,
{
    let pool = ThreadPool::new(threads);
    if pool.workers() <= 1 || items.len() <= 1 {
        return run_batch_with(items, |s| f(s), fail_fast);
    }
    // Catching inside the worker closure (rather than letting the pool
    // re-raise) preserves the fail-soft contract: one panicking scenario
    // becomes a recorded failure, not a batch abort.
    let one = |item: &(String, S)| -> Result<T, BatchFailure<E>> {
        match catch_unwind(AssertUnwindSafe(|| f(&item.1))) {
            Ok(Ok(v)) => Ok(v),
            Ok(Err(e)) => Err(BatchFailure::Error(e)),
            Err(payload) => Err(BatchFailure::Panicked {
                message: panic_message(payload.as_ref()),
            }),
        }
    };
    if !fail_fast {
        let outcomes = pool.map(items, |_, item| one(item));
        return BatchRun {
            results: items
                .iter()
                .zip(outcomes)
                .map(|((label, _), outcome)| (label.clone(), outcome))
                .collect(),
            aborted_early: false,
        };
    }
    // Fail-fast: dispatch bounded chunks and truncate at the first
    // failure in input order.
    let chunk_size = pool.workers() * 2;
    let mut results = Vec::with_capacity(items.len());
    'chunks: for chunk in items.chunks(chunk_size) {
        let outcomes = pool.map(chunk, |_, item| one(item));
        for ((label, _), outcome) in chunk.iter().zip(outcomes) {
            let failed = outcome.is_err();
            results.push((label.clone(), outcome));
            if failed {
                break 'chunks;
            }
        }
    }
    let aborted_early = results.len() < items.len();
    BatchRun {
        results,
        aborted_early,
    }
}

/// Transistor count at which [`run_batch`] switches its parallelism
/// grain from scenario-level to intra-analysis. Below it, whole
/// scenarios are the unit of work (coarse jobs, zero per-round fan-out
/// overhead — always the win for the small seed circuits); at or above
/// it, one circuit's extraction/evaluation fan-out dominates a scenario,
/// so scenarios run one at a time with the workers inside the analysis.
/// Either grain produces bit-identical arrivals; only wall time differs.
pub const INTRA_ANALYSIS_TRANSISTORS: usize = 512;

/// Analyzes every labelled scenario against one network, fail-soft.
///
/// `options.threads` sets the worker budget; the grain is picked
/// automatically from the circuit size (see
/// [`INTRA_ANALYSIS_TRANSISTORS`]): small circuits parallelize across
/// *scenarios* with each analysis serial inside, large circuits run
/// scenarios serially with the workers parallelizing each analysis —
/// never both at once, so the machine is not oversubscribed. A shared
/// `options.cache` pools stage evaluations across all scenarios of the
/// batch.
pub fn run_batch(
    net: &Network,
    tech: &Technology,
    model: ModelKind,
    scenarios: &[(String, Scenario)],
    options: AnalyzerOptions,
    fail_fast: bool,
) -> BatchRun<TimingResult, TimingError> {
    let threads = options.threads;
    let trace = options.trace.clone();
    let intra = net.transistor_count() >= INTRA_ANALYSIS_TRANSISTORS;
    let (outer_threads, inner_threads) = if intra { (1, threads) } else { (threads, 1) };
    let per_scenario = AnalyzerOptions {
        threads: inner_threads,
        ..options
    };
    let run = run_batch_par_with(
        scenarios,
        |scenario| {
            // One Batch-phase span per scenario; the analyzer's own
            // phase spans nest inside it chronologically.
            let _span = trace.as_deref().map(|t| t.span(Phase::Batch, "scenario"));
            analyze_with_options(net, tech, model, scenario, per_scenario.clone())
        },
        fail_fast,
        outer_threads,
    );
    if let Some(t) = trace.as_deref() {
        t.count(
            Phase::Batch,
            "scenarios_attempted",
            run.results.len() as u64,
        );
        t.count(
            Phase::Batch,
            "scenarios_failed",
            run.failures().count() as u64,
        );
    }
    run
}

/// Renders a caught panic payload as text (shared with [`crate::durable`],
/// whose retry ladder records panic messages in journal entries).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Edge;
    use mosnet::generators::{inverter, Style};
    use mosnet::units::Farads;

    fn items(n: usize) -> Vec<(String, usize)> {
        (0..n).map(|i| (format!("item{i}"), i)).collect()
    }

    #[test]
    fn batch_continues_past_errors_and_panics() {
        let run = run_batch_with(
            &items(5),
            |&i| match i {
                1 => Err("ordinary failure".to_string()),
                3 => panic!("injected panic {i}"),
                _ => Ok(i * 10),
            },
            false,
        );
        assert_eq!(run.results.len(), 5, "every item was attempted");
        assert!(!run.all_ok());
        assert!(!run.aborted_early);
        let failures: Vec<_> = run.failures().collect();
        assert_eq!(failures.len(), 2);
        assert_eq!(failures[0].0, "item1");
        assert!(
            matches!(failures[1].1, BatchFailure::Panicked { message } if message.contains("injected panic 3"))
        );
        // The summary names both.
        let summary = run.failure_summary();
        assert!(summary.contains("2 of 5"), "{summary}");
        assert!(summary.contains("item3: panicked"), "{summary}");
    }

    #[test]
    fn fail_fast_stops_at_the_first_failure() {
        let mut attempted = Vec::new();
        let run = run_batch_with(
            &items(4),
            |&i| {
                attempted.push(i);
                if i == 1 {
                    Err("boom".to_string())
                } else {
                    Ok(i)
                }
            },
            true,
        );
        assert_eq!(attempted, vec![0, 1], "items after the failure are skipped");
        assert_eq!(run.results.len(), 2);
        assert!(run.aborted_early);
        assert!(run
            .failure_summary()
            .contains("aborted early by --fail-fast"));
    }

    #[test]
    fn clean_batch_has_empty_summary() {
        let run = run_batch_with(&items(3), |&i| Ok::<_, String>(i), false);
        assert!(run.all_ok());
        assert_eq!(run.failure_summary(), "");
    }

    #[test]
    fn parallel_batch_matches_serial_output() {
        let f = |&i: &usize| match i {
            2 => Err(format!("error {i}")),
            5 => panic!("panic {i}"),
            _ => Ok(i * 7),
        };
        let serial = run_batch_with(&items(12), f, false);
        for threads in [2, 3, 8] {
            let par = run_batch_par_with(&items(12), f, false, threads);
            assert_eq!(par.aborted_early, serial.aborted_early);
            assert_eq!(par.results.len(), serial.results.len());
            for ((la, ra), (lb, rb)) in par.results.iter().zip(&serial.results) {
                assert_eq!(la, lb);
                assert_eq!(ra, rb, "threads={threads}, item {la}");
            }
        }
    }

    #[test]
    fn parallel_fail_fast_stops_at_first_input_order_failure() {
        let f = |&i: &usize| {
            if i == 3 {
                Err("boom".to_string())
            } else {
                Ok(i)
            }
        };
        let serial = run_batch_with(&items(20), f, true);
        for threads in [2, 4] {
            let par = run_batch_par_with(&items(20), f, true, threads);
            assert_eq!(par.results.len(), serial.results.len(), "threads={threads}");
            assert!(par.aborted_early);
            assert_eq!(par.results.last().unwrap().0, "item3");
            for ((la, ra), (lb, rb)) in par.results.iter().zip(&serial.results) {
                assert_eq!(la, lb);
                assert_eq!(ra, rb);
            }
        }
    }

    #[test]
    fn parallel_fail_fast_panic_in_later_chunk_truncates_in_input_order() {
        // threads=2 → dispatch chunks of 4: the panic at index 6 sits in
        // the *second* chunk, and the error at index 9 in the third chunk
        // must never surface — truncation is input-order-first even when
        // the failure is a panic rather than an ordinary error.
        let f = |&i: &usize| match i {
            6 => panic!("late panic {i}"),
            9 => Err("later failure".to_string()),
            _ => Ok(i),
        };
        let run = run_batch_par_with(&items(16), f, true, 2);
        assert!(!run.all_ok(), "a panicking scenario fails the batch");
        assert!(run.aborted_early);
        assert_eq!(run.results.len(), 7, "truncates right after the panic");
        let (last_label, last_outcome) = run.results.last().unwrap();
        assert_eq!(last_label, "item6");
        assert!(matches!(
            last_outcome,
            Err(BatchFailure::Panicked { message }) if message.contains("late panic 6")
        ));
        assert!(run.results[..6].iter().all(|(_, r)| r.is_ok()));
        let summary = run.failure_summary();
        assert!(summary.contains("1 of 7"), "{summary}");
        assert!(summary.contains("aborted early"), "{summary}");
        assert!(summary.contains("item6: panicked"), "{summary}");
    }

    #[test]
    fn timing_batch_analyzes_scenarios() {
        let net = inverter(Style::Cmos, Farads::from_femto(100.0));
        let inp = net.node_by_name("in").unwrap();
        let out = net.node_by_name("out").unwrap();
        let scenarios = vec![
            ("in rise".to_string(), Scenario::step(inp, Edge::Rising)),
            ("in fall".to_string(), Scenario::step(inp, Edge::Falling)),
        ];
        let run = run_batch(
            &net,
            &Technology::nominal(),
            ModelKind::Slope,
            &scenarios,
            AnalyzerOptions::default(),
            false,
        );
        assert!(run.all_ok());
        for (_, result) in &run.results {
            let result = result.as_ref().unwrap();
            assert!(result.arrival(out).is_some());
        }
    }
}
