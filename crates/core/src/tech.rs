//! Technology description: the abstract electrical parameters the delay
//! models consume.
//!
//! The heart of the slope model lives here: per device-kind,
//! per-drive-direction **slope tables**, each mapping the ratio
//!
//! ```text
//! r = input transition time / intrinsic stage drive time
//! ```
//!
//! to a multiplier on the stage's effective resistance (and a second table
//! for the output transition time). The paper fits these tables from SPICE
//! runs; the `calibrate` crate reproduces that fit against `nanospice`.
//! [`Technology::nominal`] provides uncalibrated hand values so the models
//! are usable without running a calibration.

use crate::error::TimingError;
use mosnet::units::{Ohms, Volts};
use mosnet::TransistorKind;
use std::fmt;

/// Which way a stage moves its target node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Charging the target toward VDD.
    PullUp,
    /// Discharging the target toward ground.
    PullDown,
}

impl Direction {
    /// Both directions, for sweeping tables.
    pub const ALL: [Direction; 2] = [Direction::PullUp, Direction::PullDown];

    /// Dense index for per-direction tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Direction::PullUp => 0,
            Direction::PullDown => 1,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::PullUp => "pull-up",
            Direction::PullDown => "pull-down",
        })
    }
}

/// A monotone piecewise-linear table over the slope ratio, clamped at both
/// ends.
#[derive(Debug, Clone, PartialEq)]
pub struct SlopeTable {
    points: Vec<(f64, f64)>,
}

impl SlopeTable {
    /// Creates a table from `(ratio, value)` breakpoints.
    ///
    /// # Errors
    /// Returns [`TimingError::BadParameter`] if fewer than one point is
    /// given, ratios are not strictly increasing, or any value is
    /// non-finite or non-positive.
    pub fn new(points: Vec<(f64, f64)>) -> Result<SlopeTable, TimingError> {
        if points.is_empty() {
            return Err(TimingError::BadParameter {
                message: "slope table needs at least one point".into(),
            });
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(TimingError::BadParameter {
                    message: format!(
                        "slope table ratios must be strictly increasing ({} then {})",
                        w[0].0, w[1].0
                    ),
                });
            }
        }
        if points
            .iter()
            .any(|&(r, v)| !r.is_finite() || !v.is_finite() || v <= 0.0 || r < 0.0)
        {
            return Err(TimingError::BadParameter {
                message: "slope table entries must be finite, ratios >= 0, values > 0".into(),
            });
        }
        Ok(SlopeTable { points })
    }

    /// A constant table (no slope dependence).
    pub fn constant(value: f64) -> SlopeTable {
        SlopeTable {
            points: vec![(0.0, value)],
        }
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Evaluates the table at `ratio` (linear interpolation, clamped).
    pub fn eval(&self, ratio: f64) -> f64 {
        let pts = &self.points;
        if ratio <= pts[0].0 {
            return pts[0].1;
        }
        if ratio >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        for w in pts.windows(2) {
            let ((r0, v0), (r1, v1)) = (w[0], w[1]);
            if ratio <= r1 {
                return v0 + (v1 - v0) * (ratio - r0) / (r1 - r0);
            }
        }
        pts[pts.len() - 1].1
    }

    /// `true` when every successive value is no smaller than the previous
    /// (the physically expected shape for effective-resistance tables).
    pub fn is_monotone_nondecreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1)
    }
}

/// Drive parameters for one (device kind, direction) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveParams {
    /// Static effective resistance per square (Ω); a device contributes
    /// `r_square × L/W`. Calibrated such that `R × C_load` equals the
    /// measured 50% step-input delay of a single stage.
    pub r_square: Ohms,
    /// Effective-resistance multiplier vs slope ratio (`1.0` at ratio 0).
    pub reff: SlopeTable,
    /// Output 10–90% transition time as a multiple of the stage's Elmore
    /// delay, vs slope ratio.
    pub tout: SlopeTable,
}

/// The full technology: supply, capacitance model, and one
/// [`DriveParams`] per (kind, direction).
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    /// Human-readable name.
    pub name: String,
    /// Supply voltage.
    pub vdd: Volts,
    /// Gate capacitance per area (F/m²).
    pub cox_per_area: f64,
    /// Diffusion capacitance per channel width (F/m).
    pub cj_per_width: f64,
    drives: Vec<DriveParams>, // indexed kind.index() * 2 + direction.index()
}

impl Technology {
    /// Assembles a technology from six [`DriveParams`] supplied through the
    /// setter; starts with every pair set to `nominal`'s values.
    pub fn new(name: impl Into<String>, vdd: Volts) -> Technology {
        let mut t = Technology::nominal();
        t.name = name.into();
        t.vdd = vdd;
        t
    }

    /// Uncalibrated nominal parameters for a 4 µm-class, 5 V process.
    /// Sensible shapes but hand-estimated magnitudes; run the `calibrate`
    /// crate for fitted values.
    pub fn nominal() -> Technology {
        let gentle = SlopeTable::new(vec![
            (0.0, 1.0),
            (1.0, 1.1),
            (2.0, 1.3),
            (4.0, 1.7),
            (8.0, 2.4),
            (16.0, 3.8),
        ])
        .expect("static table is valid");
        let tout = SlopeTable::new(vec![(0.0, 2.2), (4.0, 2.6), (16.0, 3.2)])
            .expect("static table is valid");
        let mk = |r: f64| DriveParams {
            r_square: Ohms(r),
            reff: gentle.clone(),
            tout: tout.clone(),
        };
        // Order: [kind][direction] flattened, kind in TransistorKind::ALL
        // order, direction in Direction::ALL order (PullUp, PullDown).
        let drives = vec![
            mk(25_000.0), // n-enh pull-up (pass transistor, threshold drop)
            mk(7_000.0),  // n-enh pull-down (the strong case)
            mk(18_000.0), // p-enh pull-up
            mk(45_000.0), // p-enh pull-down (weak)
            mk(20_000.0), // depletion pull-up (nMOS load)
            mk(20_000.0), // depletion pull-down
        ];
        Technology {
            name: "nominal-4um".to_string(),
            vdd: Volts(5.0),
            cox_per_area: 7e-4,
            cj_per_width: 1e-9,
            drives,
        }
    }

    /// The drive parameters for a (kind, direction) pair.
    pub fn drive(&self, kind: TransistorKind, direction: Direction) -> &DriveParams {
        &self.drives[kind.index() * 2 + direction.index()]
    }

    /// Replaces the drive parameters for a (kind, direction) pair.
    pub fn set_drive(&mut self, kind: TransistorKind, direction: Direction, params: DriveParams) {
        self.drives[kind.index() * 2 + direction.index()] = params;
    }

    /// Static effective resistance of a device with the given geometry
    /// driving in `direction`.
    pub fn resistance(
        &self,
        kind: TransistorKind,
        direction: Direction,
        geometry: mosnet::Geometry,
    ) -> Ohms {
        self.drive(kind, direction).r_square * geometry.squares()
    }

    /// Total capacitance hanging on `node` in `net`: explicit node
    /// capacitance plus gate capacitance of the transistors it gates and
    /// diffusion capacitance of the channels touching it.
    ///
    /// This is the same accounting the `nanospice` elaboration uses, so
    /// the delay models and the reference simulator agree on loading.
    pub fn node_capacitance(
        &self,
        net: &mosnet::Network,
        node: mosnet::NodeId,
    ) -> mosnet::units::Farads {
        let mut c = net.node(node).capacitance().value();
        for &tid in net.gated_by(node) {
            c += self.cox_per_area * net.transistor(tid).geometry().gate_area();
        }
        for &tid in net.channel_neighbors(node) {
            let t = net.transistor(tid);
            // Self-loops touch with both terminals but are indexed once.
            let touches = (t.source() == node) as u32 + (t.drain() == node) as u32;
            c += self.cj_per_width * t.geometry().width.value() * touches as f64;
        }
        mosnet::units::Farads(c)
    }
}

impl Default for Technology {
    fn default() -> Technology {
        Technology::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosnet::Geometry;

    #[test]
    fn slope_table_interpolates_and_clamps() {
        let t = SlopeTable::new(vec![(0.0, 1.0), (2.0, 2.0), (4.0, 4.0)]).unwrap();
        assert_eq!(t.eval(-1.0), 1.0);
        assert_eq!(t.eval(0.0), 1.0);
        assert!((t.eval(1.0) - 1.5).abs() < 1e-12);
        assert!((t.eval(3.0) - 3.0).abs() < 1e-12);
        assert_eq!(t.eval(100.0), 4.0);
        assert!(t.is_monotone_nondecreasing());
    }

    #[test]
    fn slope_table_rejects_bad_points() {
        assert!(SlopeTable::new(vec![]).is_err());
        assert!(SlopeTable::new(vec![(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(SlopeTable::new(vec![(0.0, -1.0)]).is_err());
        assert!(SlopeTable::new(vec![(0.0, f64::NAN)]).is_err());
    }

    #[test]
    fn constant_table() {
        let t = SlopeTable::constant(2.2);
        assert_eq!(t.eval(0.0), 2.2);
        assert_eq!(t.eval(50.0), 2.2);
    }

    #[test]
    fn nominal_orders_strengths_sensibly() {
        let t = Technology::nominal();
        let n_down = t.drive(TransistorKind::NEnhancement, Direction::PullDown);
        let n_up = t.drive(TransistorKind::NEnhancement, Direction::PullUp);
        let p_up = t.drive(TransistorKind::PEnhancement, Direction::PullUp);
        let p_down = t.drive(TransistorKind::PEnhancement, Direction::PullDown);
        // n pulls down harder than it passes high; p mirrors that.
        assert!(n_down.r_square < n_up.r_square);
        assert!(p_up.r_square < p_down.r_square);
    }

    #[test]
    fn resistance_scales_with_squares() {
        let t = Technology::nominal();
        let unit = t.resistance(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            Geometry::from_microns(2.0, 2.0),
        );
        let wide = t.resistance(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            Geometry::from_microns(8.0, 2.0),
        );
        assert!((unit.value() / wide.value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn node_capacitance_accounts_gate_and_diffusion() {
        use mosnet::network::NetworkBuilder;
        use mosnet::node::NodeKind;
        use mosnet::units::Farads;
        let mut b = NetworkBuilder::new("c");
        b.power();
        let gnd = b.ground();
        let a = b.node("a", NodeKind::Input);
        let y = b.node("y", NodeKind::Output);
        b.set_capacitance(y, Farads::from_femto(10.0));
        b.add_transistor(
            TransistorKind::NEnhancement,
            a,
            y,
            gnd,
            Geometry::from_microns(8.0, 2.0),
        );
        let net = b.build().unwrap();
        let t = Technology::nominal();
        // y: 10 fF explicit + 8 µm × 1 fF/µm diffusion = 18 fF.
        let cy = t.node_capacitance(&net, y);
        assert!((cy.femto() - 18.0).abs() < 1e-9, "got {}", cy.femto());
        // a: gate cap = 0.7 fF/µm² × 16 µm² = 11.2 fF.
        let ca = t.node_capacitance(&net, a);
        assert!((ca.femto() - 11.2).abs() < 1e-9, "got {}", ca.femto());
    }

    #[test]
    fn set_drive_roundtrips() {
        let mut t = Technology::nominal();
        let custom = DriveParams {
            r_square: Ohms(12345.0),
            reff: SlopeTable::constant(1.0),
            tout: SlopeTable::constant(2.0),
        };
        t.set_drive(TransistorKind::Depletion, Direction::PullUp, custom.clone());
        assert_eq!(
            t.drive(TransistorKind::Depletion, Direction::PullUp),
            &custom
        );
    }
}
