//! The one-line edit grammar shared by `crystal-cli watch --edits` and
//! the server's `edit` request.
//!
//! One edit per line, `|` starts a comment, blank lines are skipped:
//!
//! ```text
//! resize GATE SOURCE DRAIN W_UM L_UM  | re-size the matching device(s)
//! cap NODE FEMTOFARADS                | set a node's explicit capacitance
//! add n|p|d GATE SOURCE DRAIN W_UM L_UM
//! remove GATE SOURCE DRAIN
//! ```
//!
//! The same text is journaled verbatim by [`crate::session`] so a
//! recovered session replays exactly the edits the client sent: the
//! grammar is the durable representation, not just the CLI surface.

use mosnet::diff::{Edit, TransistorDesc};
use mosnet::units::Farads;
use mosnet::{Geometry, TransistorKind};

/// Parses an edit script: one [`Edit`] per non-blank line.
///
/// Errors are prefixed with the 1-based line number inside the script
/// (`"edit script line 3: …"`), which the CLI and the server both
/// surface verbatim.
pub fn parse_edit_script(text: &str) -> Result<Vec<Edit>, String> {
    let mut edits = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('|').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("edit script line {}: {msg}", idx + 1);
        let parts: Vec<&str> = line.split_whitespace().collect();
        let micron = |s: &str, what: &str| -> Result<f64, String> {
            let v: f64 = s
                .parse()
                .map_err(|_| err(format!("cannot parse {what} `{s}`")))?;
            if !(v > 0.0 && v.is_finite()) {
                return Err(err(format!("{what} must be positive, got `{s}`")));
            }
            Ok(v)
        };
        let edit = match parts.as_slice() {
            ["resize", gate, source, drain, w, l] => Edit::Resize {
                gate: gate.to_string(),
                source: source.to_string(),
                drain: drain.to_string(),
                geometry: Geometry::from_microns(micron(w, "width")?, micron(l, "length")?),
            },
            ["cap", node, femto] => {
                let v: f64 = femto
                    .parse()
                    .map_err(|_| err(format!("cannot parse capacitance `{femto}`")))?;
                if !(v >= 0.0 && v.is_finite()) {
                    return Err(err(format!(
                        "capacitance must be non-negative, got `{femto}`"
                    )));
                }
                Edit::SetCapacitance {
                    node: node.to_string(),
                    capacitance: Farads::from_femto(v),
                }
            }
            ["add", kind, gate, source, drain, w, l] => {
                let kind = match *kind {
                    "n" => TransistorKind::NEnhancement,
                    "p" => TransistorKind::PEnhancement,
                    "d" => TransistorKind::Depletion,
                    other => return Err(err(format!("unknown device kind `{other}`"))),
                };
                Edit::Add(TransistorDesc {
                    kind,
                    gate: gate.to_string(),
                    source: source.to_string(),
                    drain: drain.to_string(),
                    geometry: Geometry::from_microns(micron(w, "width")?, micron(l, "length")?),
                })
            }
            ["remove", gate, source, drain] => Edit::Remove {
                gate: gate.to_string(),
                source: source.to_string(),
                drain: drain.to_string(),
            },
            _ => {
                return Err(err(format!(
                    "expected `resize`, `cap`, `add` or `remove`, got `{line}`"
                )))
            }
        };
        edits.push(edit);
    }
    Ok(edits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_edit_kind() {
        let edits = parse_edit_script(
            "| header comment\n\
             resize a m gnd 4 2\n\
             cap y 120   | bump the load\n\
             add p a y vdd 8 2\n\
             \n\
             remove a m gnd\n",
        )
        .expect("parses");
        assert_eq!(edits.len(), 4);
        assert!(matches!(edits[0], Edit::Resize { .. }));
        assert!(matches!(edits[1], Edit::SetCapacitance { .. }));
        assert!(matches!(edits[2], Edit::Add(_)));
        assert!(matches!(edits[3], Edit::Remove { .. }));
    }

    #[test]
    fn errors_carry_the_line_number() {
        let err = parse_edit_script("cap y 10\nbogus line here\n").expect_err("rejects");
        assert!(err.contains("line 2"), "{err}");
        let err = parse_edit_script("resize a m gnd -4 2").expect_err("rejects");
        assert!(err.contains("width must be positive"), "{err}");
        let err = parse_edit_script("add q a y vdd 8 2").expect_err("rejects");
        assert!(err.contains("unknown device kind"), "{err}");
    }
}
