//! Sharded memoization of stage-delay evaluations.
//!
//! Repeated sweeps and batch runs evaluate the *same* stage — same RC
//! topology, same model, same input slope — thousands of times: every
//! scenario of a batch re-extracts near-identical stages, and every
//! propagation round re-evaluates stages whose triggers did not move.
//! A [`StageCache`] memoizes `(stage, model, slope, technology) →
//! delay`, turning those re-evaluations into a hash lookup.
//!
//! ## Keying
//!
//! A cache key ([`StageKey`]) combines:
//!
//! * a 128-bit **stage fingerprint** ([`stage_fingerprint`]): the RC
//!   tree's shape (parent indices), exact resistance/capacitance bit
//!   patterns, the drive direction, and the target's tree index. Node
//!   *labels* are deliberately excluded — two stages with identical
//!   electrical topology share an entry even when they drive different
//!   network nodes;
//! * a 64-bit **technology stamp** ([`tech_stamp`]): a content hash over
//!   every field the models consult (supply, capacitance coefficients,
//!   and all per-kind/per-direction drive tables). Editing the
//!   technology — e.g. [`Technology::set_drive`] after a calibration
//!   pass — changes the stamp, so stale entries can never be returned;
//!   they simply stop being referenced and age out by eviction;
//! * the **slope bucket** ([`SlopeBucketing`]): how the input transition
//!   time is mapped into the key. The default, [`SlopeBucketing::Exact`],
//!   uses the exact bit pattern (with `-0.0` canonicalized to `+0.0`),
//!   so a cache hit returns *bit-identical* results to a fresh
//!   evaluation. [`SlopeBucketing::Quantized`] trades a bounded rounding
//!   error (two slopes sharing a bucket differ by strictly less than the
//!   configured width) for a higher hit rate across nearby slopes — the
//!   width is an explicit [`StageCache`] configuration, not a hidden
//!   constant;
//! * the model kind, trigger device kind, and whether model fallback is
//!   enabled.
//!
//! ## Concurrency
//!
//! The map is split into [`SHARDS`] independently locked shards selected
//! by key hash, so parallel analyzer workers rarely contend. Hit, miss,
//! and eviction counters are atomics updated while the shard lock is
//! held; note that under concurrency two workers can miss on the same
//! key simultaneously and both insert — counters are exact event counts,
//! not a deduplicated key census, and may differ run to run. Cached
//! *values* never differ: an entry is only ever written with the result
//! its key deterministically produces.
//!
//! ## Counter guarantees
//!
//! [`StageCache::stats`] takes a seqlock-consistent snapshot: it never
//! mixes counter values from before and after a concurrent
//! [`StageCache::clear`], so `hits + misses` always equals the number of
//! completed lookups of one epoch and a derived hit rate can never
//! exceed 100%. `clear` resets the counters to zero *atomically* with
//! dropping the entries (all shards locked) and bumps a **generation**
//! recorded in every [`CacheStats`]; [`CacheStats::delta_since`] uses it
//! to detect a clear between two snapshots and reports the current
//! epoch's counts instead of silently saturating a negative difference
//! to zero (which would mask counter regressions).

use crate::fingerprint::{Fnv64, FNV_OFFSET, FNV_PRIME};
use crate::models::{ModelKind, StageDelay};
use crate::stage::Stage;
use crate::tech::{Direction, Technology};
use mosnet::units::Seconds;
use mosnet::TransistorKind;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards.
pub const SHARDS: usize = 16;

/// Default total entry capacity of a [`StageCache`].
pub const DEFAULT_CAPACITY: usize = 65_536;

/// A dual-stream FNV-1a hasher producing 128 bits: the second stream
/// uses a different offset basis and folds the byte position in, so the
/// two halves decorrelate.
struct Fnv128 {
    a: u64,
    b: u64,
    n: u64,
}

impl Fnv128 {
    fn new() -> Fnv128 {
        Fnv128 {
            a: FNV_OFFSET,
            b: FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15,
            n: 0,
        }
    }

    fn write_u8(&mut self, byte: u8) {
        self.a = (self.a ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ u64::from(byte) ^ self.n).wrapping_mul(FNV_PRIME);
        self.n = self.n.wrapping_add(1);
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    fn finish(&self) -> u128 {
        (u128::from(self.a) << 64) | u128::from(self.b)
    }
}

/// Fingerprints everything a delay model consumes from a [`Stage`]: the
/// RC tree's shape and element values, the drive direction, and the
/// target index. Node labels and the trigger path are excluded — they
/// identify *which* network nodes are involved, not the electrical
/// problem being solved — so electrically identical stages collide (and
/// share a cache entry) by design.
pub fn stage_fingerprint(stage: &Stage) -> u128 {
    let mut h = Fnv128::new();
    h.write_u8(match stage.direction {
        Direction::PullUp => 0,
        Direction::PullDown => 1,
    });
    h.write_usize(stage.target_index);
    h.write_usize(stage.tree.len());
    for i in 0..stage.tree.len() {
        match stage.tree.parent(i) {
            // The +1 offset keeps "no parent" distinct from "parent 0".
            Some(p) => h.write_usize(p + 1),
            None => h.write_usize(0),
        }
        h.write_f64(stage.tree.edge_resistance(i).value());
        h.write_f64(stage.tree.capacitance(i).value());
    }
    h.finish()
}

/// Content-hashes every [`Technology`] field the delay models consult.
/// Any change to the technology — a recalibrated drive table, a new
/// supply voltage — yields a different stamp and thereby invalidates all
/// cached evaluations made under the old tables.
pub fn tech_stamp(tech: &Technology) -> u64 {
    let mut h = Fnv64::new();
    for byte in tech.name.as_bytes() {
        h.write_u8(*byte);
    }
    h.write_u8(0xff); // terminator so name/field boundaries can't alias
    h.write_f64(tech.vdd.value());
    h.write_f64(tech.cox_per_area);
    h.write_f64(tech.cj_per_width);
    for kind in TransistorKind::ALL {
        for direction in Direction::ALL {
            let drive = tech.drive(kind, direction);
            h.write_f64(drive.r_square.value());
            for table in [&drive.reff, &drive.tout] {
                h.write_u64(table.points().len() as u64);
                for &(r, v) in table.points() {
                    h.write_f64(r);
                    h.write_f64(v);
                }
            }
        }
    }
    h.finish()
}

/// How input transition times are mapped to cache buckets.
///
/// The bucket width is part of the [`StageCache`] configuration so the
/// accuracy/hit-rate trade is explicit and auditable: the self-check
/// harness compares cached results against exact-slope re-evaluations,
/// and only a documented, bounded rounding error is acceptable.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SlopeBucketing {
    /// The exact bit pattern of the transition time (the default). A hit
    /// returns a result bit-identical to a fresh evaluation. `-0.0` is
    /// canonicalized to `+0.0` so the two encodings of a zero-width
    /// (step) input share one entry instead of duplicating it, and all
    /// NaN payloads collapse to one canonical quiet-NaN key.
    #[default]
    Exact,
    /// Transition times are rounded to the nearest multiple of `width`
    /// (half-away-from-zero). Bucket edges sit at `(k ± ½)·width`, so
    /// two slopes that straddle an edge land in *different* buckets and
    /// can never alias one entry, while any two slopes sharing a bucket
    /// differ by strictly less than `width` — the documented maximum
    /// slope rounding error of a quantized hit. A non-positive or
    /// non-finite width degenerates to [`SlopeBucketing::Exact`].
    Quantized {
        /// The bucket width (maximum slope aliasing distance).
        width: Seconds,
    },
}

/// The single bit pattern every NaN slope is keyed under (the standard
/// quiet NaN). Without this, the 2^52 distinct NaN payloads would each
/// mint their own cache entry for one and the same (meaningless) slope,
/// and a poisoned evaluation could never be deduplicated.
const CANONICAL_NAN_BITS: u64 = 0x7ff8_0000_0000_0000;

/// Canonical bit pattern of a slope value for keying: `-0.0` maps to
/// `+0.0` (the same physical slope) and every NaN payload maps to one
/// quiet-NaN pattern. Infinities keep their sign — they are distinct
/// (if equally impossible) values.
fn canonical_slope_bits(v: f64) -> u64 {
    if v.is_nan() {
        CANONICAL_NAN_BITS
    } else {
        // `+ 0.0` turns a negative zero into positive zero (IEEE 754
        // round-to-nearest) and leaves every other value untouched.
        (v + 0.0).to_bits()
    }
}

impl SlopeBucketing {
    /// Maps an input transition time to its cache bucket.
    ///
    /// Non-finite slopes are canonicalized before hashing in **both**
    /// modes: `-0.0` aliases `+0.0` and every NaN payload shares one
    /// bucket, so physically identical (or identically meaningless)
    /// slopes can never mint spurious extra cache entries.
    pub fn bucket(self, input_transition: Seconds) -> u64 {
        let v = input_transition.value();
        match self {
            SlopeBucketing::Exact => canonical_slope_bits(v),
            SlopeBucketing::Quantized { width } => {
                let w = width.value();
                if !(w > 0.0 && w.is_finite() && v.is_finite()) {
                    // Zero/negative/non-finite width (or a non-finite
                    // slope): fall back to exact keying rather than
                    // collapsing everything into one bucket.
                    return canonical_slope_bits(v);
                }
                // round() is half-away-from-zero, and the f64→i64 cast
                // saturates, so extreme slopes stay in extreme buckets
                // instead of wrapping onto small ones. Negative
                // transitions (physically impossible, but defensively
                // handled) bucket symmetrically and never alias a
                // positive slope more than `width` away.
                (v / w).round() as i64 as u64
            }
        }
    }

    /// The maximum difference between two transition times that may share
    /// a bucket (zero for exact bucketing).
    pub fn max_aliasing(self) -> Seconds {
        match self {
            SlopeBucketing::Exact => Seconds::ZERO,
            SlopeBucketing::Quantized { width } => {
                if width.value() > 0.0 && width.value().is_finite() {
                    width
                } else {
                    Seconds::ZERO
                }
            }
        }
    }
}

/// Maps an input transition time to its exact-bit cache bucket (the
/// default [`SlopeBucketing::Exact`] behavior).
pub fn slope_bucket(input_transition: Seconds) -> u64 {
    SlopeBucketing::Exact.bucket(input_transition)
}

/// The complete lookup key for one stage evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StageKey {
    fingerprint: u128,
    tech: u64,
    slope: u64,
    model: u8,
    trigger: u8,
    fallback: bool,
}

impl StageKey {
    /// Builds the key for evaluating `stage_fingerprint` under the given
    /// model, trigger, and technology stamp, with **exact** slope
    /// bucketing. Keys destined for a [`StageCache`] should be built
    /// with [`StageCache::key`] instead so the cache's configured
    /// [`SlopeBucketing`] applies.
    pub fn new(
        fingerprint: u128,
        tech_stamp: u64,
        input_transition: Seconds,
        model: ModelKind,
        trigger_kind: TransistorKind,
        fallback: bool,
    ) -> StageKey {
        StageKey {
            fingerprint,
            tech: tech_stamp,
            slope: slope_bucket(input_transition),
            model: model_tag(model),
            trigger: trigger_kind.index() as u8,
            fallback,
        }
    }

    fn shard(&self) -> usize {
        // Mix every field so distinct keys spread across shards even when
        // fingerprints collide in their low bits.
        let mut x = (self.fingerprint as u64)
            ^ (self.fingerprint >> 64) as u64
            ^ self.tech.rotate_left(17)
            ^ self.slope.rotate_left(31)
            ^ u64::from(self.model) << 8
            ^ u64::from(self.trigger) << 16
            ^ u64::from(self.fallback) << 24;
        // SplitMix64 finalizer.
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (x ^ (x >> 31)) as usize % SHARDS
    }
}

fn model_tag(model: ModelKind) -> u8 {
    match model {
        ModelKind::Lumped => 0,
        ModelKind::RcTree => 1,
        ModelKind::Slope => 2,
    }
}

/// A memoized evaluation: the delay plus the model that actually
/// produced it (which differs from the requested model when fallback
/// degraded the stage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedEval {
    /// The memoized stage delay.
    pub delay: StageDelay,
    /// The model that produced `delay`.
    pub used_model: ModelKind,
}

/// A snapshot of the cache's hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced to stay under the capacity cap.
    pub evictions: u64,
    /// Counter epoch: how many times [`StageCache::clear`] had run when
    /// this snapshot was taken. Two snapshots with different generations
    /// straddle a clear and their counters are not directly comparable —
    /// [`CacheStats::delta_since`] uses this to avoid masking resets.
    pub generation: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (zero when nothing was looked
    /// up). Snapshots are seqlock-consistent, so this can never exceed
    /// `1.0`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas accumulated since `earlier` was snapshot.
    ///
    /// When the cache was [cleared](StageCache::clear) between the two
    /// snapshots (the generations differ), `earlier`'s counts describe a
    /// dead epoch: the delta returned is everything accumulated in the
    /// *current* epoch rather than a silently saturated near-zero — a
    /// per-field `saturating_sub` across a reset would under-report and
    /// mask counter regressions.
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        if self.generation != earlier.generation {
            return *self;
        }
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            generation: self.generation,
        }
    }
}

/// The sharded stage-evaluation cache. Cheap to share: wrap it in an
/// [`std::sync::Arc`] and hand clones to every analysis that should pool
/// its evaluations (the CLI does this across a whole batch).
#[derive(Debug)]
pub struct StageCache {
    shards: Vec<Mutex<HashMap<StageKey, CachedEval>>>,
    per_shard_capacity: usize,
    bucketing: SlopeBucketing,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Seqlock word guarding counter consistency across [`StageCache::clear`]:
    /// even = stable, odd = a clear is mid-flight. `generation / 2` is
    /// the number of completed clears (the epoch in [`CacheStats`]).
    generation: AtomicU64,
}

impl StageCache {
    /// A cache with the [`DEFAULT_CAPACITY`] and exact slope keying.
    pub fn new() -> StageCache {
        StageCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// A cache holding at most `capacity` entries in total (rounded up
    /// to a multiple of [`SHARDS`], minimum one entry per shard), with
    /// exact slope keying.
    pub fn with_capacity(capacity: usize) -> StageCache {
        StageCache::with_config(capacity, SlopeBucketing::Exact)
    }

    /// A cache with explicit capacity *and* slope-bucketing policy.
    pub fn with_config(capacity: usize, bucketing: SlopeBucketing) -> StageCache {
        StageCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard_capacity: capacity.div_ceil(SHARDS).max(1),
            bucketing,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// The slope-bucketing policy keys of this cache are built with.
    pub fn bucketing(&self) -> SlopeBucketing {
        self.bucketing
    }

    /// Builds the lookup key for one stage evaluation under this cache's
    /// slope-bucketing policy. Always use this (rather than
    /// [`StageKey::new`], which is fixed to exact bucketing) when the key
    /// will be looked up in this cache, so quantized configurations
    /// actually coalesce nearby slopes.
    pub fn key(
        &self,
        fingerprint: u128,
        tech_stamp: u64,
        input_transition: Seconds,
        model: ModelKind,
        trigger_kind: TransistorKind,
        fallback: bool,
    ) -> StageKey {
        StageKey {
            fingerprint,
            tech: tech_stamp,
            slope: self.bucketing.bucket(input_transition),
            model: model_tag(model),
            trigger: trigger_kind.index() as u8,
            fallback,
        }
    }

    /// Looks `key` up, counting a hit or a miss.
    pub fn lookup(&self, key: &StageKey) -> Option<CachedEval> {
        let shard = self.shards[key.shard()].lock().expect("cache shard lock");
        let found = shard.get(key).copied();
        // The counter bump happens under the shard lock: `clear()` holds
        // every shard lock while resetting, so no increment can land
        // between a reset and the generation bump that publishes it.
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        drop(shard);
        found
    }

    /// Inserts an evaluation, displacing an arbitrary resident entry of
    /// the same shard when the shard is full (counted as an eviction).
    /// Returns `true` when an entry was evicted, so callers keeping
    /// per-analysis accounting (the analyzer's [`CacheStats`] delta) can
    /// attribute the eviction without re-reading the shared counters.
    pub fn insert(&self, key: StageKey, value: CachedEval) -> bool {
        let mut shard = self.shards[key.shard()].lock().expect("cache shard lock");
        let mut evicted = false;
        if shard.len() >= self.per_shard_capacity && !shard.contains_key(&key) {
            if let Some(&victim) = shard.keys().next() {
                shard.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                evicted = true;
            }
        }
        shard.insert(key, value);
        evicted
    }

    /// Current resident entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock").len())
            .sum()
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * SHARDS
    }

    /// A seqlock-consistent snapshot of the current epoch's
    /// hit/miss/eviction counters: the three counts are guaranteed to
    /// come from one epoch (never mixing values from before and after a
    /// concurrent [`StageCache::clear`]), so `hits + misses` matches the
    /// completed lookups of that epoch and derived hit rates cannot
    /// exceed 100%.
    pub fn stats(&self) -> CacheStats {
        loop {
            let g1 = self.generation.load(Ordering::Acquire);
            if g1 % 2 == 1 {
                // A clear is mid-flight; wait for it to publish.
                std::hint::spin_loop();
                continue;
            }
            let stats = CacheStats {
                hits: self.hits.load(Ordering::Relaxed),
                misses: self.misses.load(Ordering::Relaxed),
                evictions: self.evictions.load(Ordering::Relaxed),
                generation: g1 / 2,
            };
            if self.generation.load(Ordering::Acquire) == g1 {
                return stats;
            }
        }
    }

    /// Drops every resident entry and resets the counters to zero in one
    /// atomic step (all shard locks held for the duration), bumping the
    /// counter generation so snapshots from before the clear can never
    /// be mistaken for the new epoch's counts.
    pub fn clear(&self) {
        // Locking every shard first quiesces all lookups/inserts — their
        // counter bumps happen under the shard lock — making the counter
        // reset atomic with respect to cache traffic.
        let mut guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock"))
            .collect();
        self.generation.fetch_add(1, Ordering::AcqRel); // odd: in progress
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        for shard in &mut guards {
            shard.clear();
        }
        self.generation.fetch_add(1, Ordering::AcqRel); // even: published
    }
}

impl Default for StageCache {
    fn default() -> StageCache {
        StageCache::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::stages_to;
    use mosnet::generators::{inverter, Style};
    use mosnet::units::Farads;
    use mosnet::TransistorId;

    const ALL_ON: fn(TransistorId) -> bool = |_| true;

    fn inverter_stage() -> Stage {
        let net = inverter(Style::Cmos, Farads::from_femto(100.0));
        let tech = Technology::nominal();
        let out = net.node_by_name("out").unwrap();
        stages_to(&net, &tech, &ALL_ON, out, Direction::PullDown)
            .pop()
            .expect("inverter has a pull-down stage")
    }

    fn sample_value() -> CachedEval {
        CachedEval {
            delay: StageDelay {
                delay: Seconds::from_nanos(1.0),
                output_transition: Seconds::from_nanos(2.0),
                bounds: None,
            },
            used_model: ModelKind::Slope,
        }
    }

    fn key_n(i: u64) -> StageKey {
        StageKey::new(
            u128::from(i) * 0x1_0000_0001,
            42,
            Seconds::ZERO,
            ModelKind::Slope,
            TransistorKind::NEnhancement,
            true,
        )
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let stage = inverter_stage();
        assert_eq!(stage_fingerprint(&stage), stage_fingerprint(&stage));
        let mut other = stage.clone();
        other
            .tree
            .add_capacitance(other.target_index, Farads(1e-15));
        assert_ne!(stage_fingerprint(&stage), stage_fingerprint(&other));
        let mut flipped = stage.clone();
        flipped.direction = Direction::PullUp;
        assert_ne!(stage_fingerprint(&stage), stage_fingerprint(&flipped));
    }

    #[test]
    fn fingerprint_ignores_labels() {
        use crate::rctree::RcTree;
        use mosnet::units::Ohms;
        use mosnet::NodeId;
        let build = |label: Option<NodeId>| {
            let mut tree = RcTree::new();
            let t = tree.add_child(tree.root(), Ohms(100.0), Farads(1e-14), label);
            Stage {
                target: NodeId::from_index(0),
                direction: Direction::PullDown,
                tree,
                target_index: t,
                path: Vec::new(),
                path_gates: Vec::new(),
            }
        };
        let a = build(Some(NodeId::from_index(3)));
        let b = build(Some(NodeId::from_index(9)));
        assert_eq!(stage_fingerprint(&a), stage_fingerprint(&b));
    }

    #[test]
    fn tech_stamp_changes_with_drive_tables() {
        use crate::tech::{DriveParams, SlopeTable};
        use mosnet::units::Ohms;
        let nominal = Technology::nominal();
        let s0 = tech_stamp(&nominal);
        assert_eq!(s0, tech_stamp(&Technology::nominal()), "stamp is stable");
        let mut edited = Technology::nominal();
        edited.set_drive(
            TransistorKind::NEnhancement,
            Direction::PullDown,
            DriveParams {
                r_square: Ohms(9_999.0),
                reff: SlopeTable::constant(1.0),
                tout: SlopeTable::constant(2.0),
            },
        );
        assert_ne!(s0, tech_stamp(&edited));
        let mut renamed = Technology::nominal();
        renamed.name = "other".to_string();
        assert_ne!(s0, tech_stamp(&renamed));
    }

    #[test]
    fn lookup_and_insert_count_correctly() {
        let cache = StageCache::new();
        let key = key_n(1);
        assert!(cache.lookup(&key).is_none());
        cache.insert(key, sample_value());
        assert_eq!(cache.lookup(&key), Some(sample_value()));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn different_keys_do_not_collide() {
        let cache = StageCache::new();
        let base = (
            7u128,
            42u64,
            Seconds::ZERO,
            ModelKind::Slope,
            TransistorKind::NEnhancement,
            true,
        );
        let keys = [
            StageKey::new(base.0, base.1, base.2, base.3, base.4, base.5),
            StageKey::new(8, base.1, base.2, base.3, base.4, base.5),
            StageKey::new(base.0, 43, base.2, base.3, base.4, base.5),
            StageKey::new(
                base.0,
                base.1,
                Seconds::from_nanos(1.0),
                base.3,
                base.4,
                base.5,
            ),
            StageKey::new(base.0, base.1, base.2, ModelKind::Lumped, base.4, base.5),
            StageKey::new(
                base.0,
                base.1,
                base.2,
                base.3,
                TransistorKind::PEnhancement,
                base.5,
            ),
            StageKey::new(base.0, base.1, base.2, base.3, base.4, false),
        ];
        cache.insert(keys[0], sample_value());
        for key in &keys[1..] {
            assert!(cache.lookup(key).is_none(), "{key:?} aliased the base key");
        }
    }

    #[test]
    fn exact_bucketing_canonicalizes_negative_zero() {
        // -0.0 and +0.0 encode the same physical slope; they must share
        // one bucket (and therefore one cache entry) instead of
        // duplicating the evaluation under two keys.
        assert_eq!(
            SlopeBucketing::Exact.bucket(Seconds(-0.0)),
            SlopeBucketing::Exact.bucket(Seconds(0.0)),
        );
        // Any genuinely different bit pattern still gets its own bucket.
        assert_ne!(
            SlopeBucketing::Exact.bucket(Seconds(1.0e-9)),
            SlopeBucketing::Exact.bucket(Seconds(1.0000000000000002e-9)),
        );
    }

    #[test]
    fn quantized_bucket_edges_never_alias() {
        // Bucket edges sit at (k + 1/2)·width: two slopes straddling an
        // edge — however close together — land in different buckets, so
        // they can never share a cache entry.
        let width = Seconds::from_nanos(1.0);
        let b = SlopeBucketing::Quantized { width };
        let edge: f64 = 0.5e-9;
        let below = f64::from_bits(edge.to_bits() - 1);
        assert_ne!(b.bucket(Seconds(below)), b.bucket(Seconds(edge)));
        // … and the same at a higher edge (between buckets 2 and 3).
        let edge: f64 = 2.5e-9;
        let below = f64::from_bits(edge.to_bits() - 1);
        assert_ne!(b.bucket(Seconds(below)), b.bucket(Seconds(edge)));
    }

    #[test]
    fn quantized_same_bucket_slopes_differ_less_than_width() {
        // The documented rounding error: two slopes sharing a bucket
        // differ by strictly less than the configured width.
        let width = Seconds::from_nanos(1.0);
        let b = SlopeBucketing::Quantized { width };
        let samples: Vec<f64> = (0..4000).map(|i| i as f64 * 0.77e-11).collect();
        let mut by_bucket: HashMap<u64, (f64, f64)> = HashMap::new();
        for &s in &samples {
            let entry = by_bucket.entry(b.bucket(Seconds(s))).or_insert((s, s));
            entry.0 = entry.0.min(s);
            entry.1 = entry.1.max(s);
        }
        for (bucket, (lo, hi)) in by_bucket {
            assert!(
                hi - lo < width.value(),
                "bucket {bucket}: spread {} exceeds width {}",
                hi - lo,
                width.value()
            );
        }
        assert_eq!(b.max_aliasing(), width);
    }

    #[test]
    fn zero_width_quantization_degenerates_to_exact() {
        for width in [Seconds::ZERO, Seconds(-1.0e-9), Seconds(f64::NAN)] {
            let b = SlopeBucketing::Quantized { width };
            for t in [0.0, 1.3e-9, 7.7e-10] {
                assert_eq!(
                    b.bucket(Seconds(t)),
                    SlopeBucketing::Exact.bucket(Seconds(t)),
                    "width {width:?}, slope {t}"
                );
            }
            assert_eq!(b.max_aliasing(), Seconds::ZERO);
        }
    }

    #[test]
    fn negative_transitions_never_alias_positive_ones() {
        // Negative transition times are physically impossible but must
        // not silently collide with real slopes if one ever leaks in.
        let quantized = SlopeBucketing::Quantized {
            width: Seconds::from_nanos(1.0),
        };
        for b in [SlopeBucketing::Exact, quantized] {
            for t in [0.6e-9, 1.4e-9, 3.0e-9] {
                assert_ne!(
                    b.bucket(Seconds(-t)),
                    b.bucket(Seconds(t)),
                    "{b:?}: -{t} aliased +{t}"
                );
            }
        }
        // The two encodings of zero are the one exception: same slope,
        // same bucket.
        assert_eq!(
            quantized.bucket(Seconds(-0.0)),
            quantized.bucket(Seconds(0.0))
        );
    }

    #[test]
    fn cache_key_honors_configured_bucketing() {
        let width = Seconds::from_nanos(1.0);
        let cache = StageCache::with_config(1024, SlopeBucketing::Quantized { width });
        assert_eq!(cache.bucketing(), SlopeBucketing::Quantized { width });
        let key_at = |t: Seconds| {
            cache.key(
                7,
                42,
                t,
                ModelKind::Slope,
                TransistorKind::NEnhancement,
                true,
            )
        };
        // Two nearby slopes in one bucket share an entry…
        cache.insert(key_at(Seconds(1.1e-9)), sample_value());
        assert!(cache.lookup(&key_at(Seconds(1.3e-9))).is_some());
        // …while slopes straddling a bucket edge do not.
        assert!(cache.lookup(&key_at(Seconds(1.6e-9))).is_none());
        // An exact-config cache keeps every distinct slope separate.
        let exact = StageCache::new();
        let exact_key = |t: Seconds| {
            exact.key(
                7,
                42,
                t,
                ModelKind::Slope,
                TransistorKind::NEnhancement,
                true,
            )
        };
        exact.insert(exact_key(Seconds(1.1e-9)), sample_value());
        assert!(exact.lookup(&exact_key(Seconds(1.3e-9))).is_none());
    }

    #[test]
    fn shard_selection_spreads_slope_only_variation() {
        // 10k keys identical in every field except the slope bits — the
        // exact pattern a transition sweep produces. No shard may take
        // more than twice its fair share, or parallel workers would
        // serialize on one mutex (and, at capacity, evictions would
        // concentrate there).
        let fingerprint = 0xdead_beef_cafe_f00d_u128;
        let mut counts = [0usize; SHARDS];
        for i in 0..10_000 {
            // Realistic slope values: 0..10 ns in 1 ps steps.
            let slope = Seconds(i as f64 * 1.0e-12);
            let key = StageKey::new(
                fingerprint,
                42,
                slope,
                ModelKind::Slope,
                TransistorKind::NEnhancement,
                true,
            );
            counts[key.shard()] += 1;
        }
        let fair = 10_000 / SHARDS;
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count <= 2 * fair,
                "shard {shard} took {count} of 10000 keys (fair share {fair})"
            );
        }
    }

    #[test]
    fn shard_selection_spreads_fingerprint_variation() {
        // The same distribution bound for keys differing only in their
        // stage fingerprint (a batch over many distinct stages).
        let mut counts = [0usize; SHARDS];
        for i in 0..10_000u64 {
            let key = StageKey::new(
                u128::from(i) << 3 | 0x5,
                42,
                Seconds::ZERO,
                ModelKind::Slope,
                TransistorKind::NEnhancement,
                true,
            );
            counts[key.shard()] += 1;
        }
        let fair = 10_000 / SHARDS;
        for (shard, &count) in counts.iter().enumerate() {
            assert!(
                count <= 2 * fair,
                "shard {shard} took {count} of 10000 keys (fair share {fair})"
            );
        }
    }

    #[test]
    fn capacity_forces_evictions() {
        let cache = StageCache::with_capacity(SHARDS); // one entry per shard
        assert_eq!(cache.capacity(), SHARDS);
        for i in 0..200 {
            cache.insert(key_n(i), sample_value());
        }
        assert!(cache.len() <= cache.capacity());
        let stats = cache.stats();
        assert!(
            stats.evictions > 0,
            "200 inserts into {SHARDS} slots must evict"
        );
        // Every insert beyond a full shard evicts exactly one entry.
        assert_eq!(200 - cache.len() as u64, stats.evictions);
    }

    #[test]
    fn reinserting_same_key_does_not_evict() {
        let cache = StageCache::with_capacity(SHARDS);
        let key = key_n(5);
        cache.insert(key, sample_value());
        cache.insert(key, sample_value());
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn delta_since_subtracts_snapshots() {
        let cache = StageCache::new();
        let key = key_n(9);
        let _ = cache.lookup(&key); // miss
        let before = cache.stats();
        cache.insert(key, sample_value());
        let _ = cache.lookup(&key); // hit
        let delta = cache.stats().delta_since(&before);
        assert_eq!(
            delta,
            CacheStats {
                hits: 1,
                misses: 0,
                evictions: 0,
                generation: 0,
            }
        );
    }

    #[test]
    fn clear_resets_counters_atomically_with_a_generation_bump() {
        let cache = StageCache::new();
        let key = key_n(2);
        cache.insert(key, sample_value());
        let _ = cache.lookup(&key); // hit
        let before = cache.stats();
        assert_eq!((before.hits, before.generation), (1, 0));
        cache.clear();
        assert!(cache.is_empty());
        // Counters restart from zero in a new epoch.
        let after = cache.stats();
        assert_eq!(
            (after.hits, after.misses, after.evictions, after.generation),
            (0, 0, 0, 1)
        );
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn delta_across_a_clear_reports_the_new_epoch_instead_of_masking() {
        // A pre-clear snapshot must not turn the post-clear counts into
        // a silent near-zero delta: saturating_sub would report 0 misses
        // here and hide the regression.
        let cache = StageCache::new();
        for i in 0..5 {
            let _ = cache.lookup(&key_n(i)); // 5 misses, epoch 0
        }
        let earlier = cache.stats();
        assert_eq!(earlier.misses, 5);
        cache.clear();
        let _ = cache.lookup(&key_n(100)); // 1 miss, epoch 1
        let _ = cache.lookup(&key_n(101)); // 1 miss, epoch 1
        let delta = cache.stats().delta_since(&earlier);
        assert_eq!(delta.misses, 2, "post-clear activity must be visible");
        assert_eq!(delta.generation, 1);
        // Hit rates derived from any snapshot stay within [0, 1].
        assert!(delta.hit_rate() <= 1.0);
    }

    #[test]
    fn negative_zero_slope_aliases_positive_zero_in_stage_keys() {
        // -0.0 and +0.0 are the same physical (step) slope: the full
        // StageKey — not just the bucket — must be identical, so the two
        // encodings share one cache entry instead of duplicating the
        // evaluation and reporting a spurious miss.
        let at = |t: Seconds| {
            StageKey::new(
                7,
                42,
                t,
                ModelKind::Slope,
                TransistorKind::NEnhancement,
                true,
            )
        };
        assert_eq!(at(Seconds(-0.0)), at(Seconds(0.0)));
        let cache = StageCache::new();
        cache.insert(at(Seconds(0.0)), sample_value());
        assert!(
            cache.lookup(&at(Seconds(-0.0))).is_some(),
            "-0.0 must hit the +0.0 entry"
        );
        // The same aliasing holds for keys built through the cache's
        // configured bucketing (both exact and quantized).
        let quantized = StageCache::with_config(
            1024,
            SlopeBucketing::Quantized {
                width: Seconds(1e-9),
            },
        );
        let qkey = |t: Seconds| {
            quantized.key(
                7,
                42,
                t,
                ModelKind::Slope,
                TransistorKind::NEnhancement,
                true,
            )
        };
        assert_eq!(qkey(Seconds(-0.0)), qkey(Seconds(0.0)));
    }

    #[test]
    fn nan_slopes_collapse_to_one_hittable_key() {
        // Every NaN payload is the same "meaningless slope": they must
        // share one canonical key in both bucketing modes, so a poisoned
        // evaluation is stored (and found) once instead of minting an
        // unbounded family of unreachable entries.
        let payloads = [
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7ff8_0000_0000_0001),
            f64::from_bits(0xfff8_dead_beef_cafe),
        ];
        let quantized = SlopeBucketing::Quantized {
            width: Seconds(1e-9),
        };
        for mode in [SlopeBucketing::Exact, quantized] {
            let canonical = mode.bucket(Seconds(f64::NAN));
            for &p in &payloads {
                assert_eq!(mode.bucket(Seconds(p)), canonical, "{mode:?} payload {p:?}");
            }
            // NaN never aliases a real slope.
            assert_ne!(canonical, mode.bucket(Seconds(0.0)), "{mode:?}");
            assert_ne!(canonical, mode.bucket(Seconds(1e-9)), "{mode:?}");
        }
        // Insertion under one NaN payload is found under another.
        let cache = StageCache::new();
        let at = |t: Seconds| {
            cache.key(
                7,
                42,
                t,
                ModelKind::Slope,
                TransistorKind::NEnhancement,
                true,
            )
        };
        cache.insert(at(Seconds(f64::NAN)), sample_value());
        assert!(cache
            .lookup(&at(Seconds(f64::from_bits(0x7ff8_0000_0000_0001))))
            .is_some());
    }

    #[test]
    fn concurrent_clear_never_yields_inconsistent_snapshots() {
        use std::sync::Arc;
        // Hammer the cache from worker threads while clearing from the
        // main thread; every snapshot must be internally consistent
        // (hit rate within [0, 1] — impossible to violate if hits and
        // misses come from one epoch).
        let cache = Arc::new(StageCache::new());
        let stop = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..3)
            .map(|w| {
                let cache = Arc::clone(&cache);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let key = key_n(w * 1000 + (i % 64));
                        if cache.lookup(&key).is_none() {
                            cache.insert(key, sample_value());
                        }
                        i += 1;
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            let s = cache.stats();
            assert!(s.hit_rate() <= 1.0);
            cache.clear();
            let cleared = cache.stats();
            // Immediately after our clear, only lookups that completed
            // in the new epoch may be visible.
            assert!(cleared.generation >= 1);
        }
        stop.store(1, Ordering::Relaxed);
        for w in workers {
            w.join().expect("worker");
        }
    }
}
