//! Error types for the timing analyzer.

use std::error::Error;
use std::fmt;

/// Errors produced by timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum TimingError {
    /// The scenario references a node that is not in the network.
    UnknownNode {
        /// The offending name or id rendering.
        name: String,
    },
    /// The scenario's switching input is not a primary input.
    NotAnInput {
        /// Name of the node.
        name: String,
    },
    /// The technology has no drive parameters for a device/direction pair
    /// the analysis needed.
    MissingDriveParams {
        /// Description of the pair.
        what: String,
    },
    /// The analysis did not reach the requested node (it never switches in
    /// this scenario).
    NoArrival {
        /// Name of the node.
        name: String,
    },
    /// Iteration failed to settle (combinational loop without timing
    /// convergence).
    NoFixpoint {
        /// Iterations performed.
        iterations: usize,
    },
    /// A malformed parameter.
    BadParameter {
        /// Description.
        message: String,
    },
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::UnknownNode { name } => write!(f, "unknown node `{name}`"),
            TimingError::NotAnInput { name } => {
                write!(f, "node `{name}` is not a primary input")
            }
            TimingError::MissingDriveParams { what } => {
                write!(f, "technology lacks drive parameters for {what}")
            }
            TimingError::NoArrival { name } => {
                write!(f, "node `{name}` never switches in this scenario")
            }
            TimingError::NoFixpoint { iterations } => {
                write!(
                    f,
                    "timing iteration failed to settle after {iterations} rounds"
                )
            }
            TimingError::BadParameter { message } => write!(f, "bad parameter: {message}"),
        }
    }
}

impl Error for TimingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TimingError::NoArrival { name: "out".into() };
        assert!(e.to_string().contains("out"));
        fn is_error<E: std::error::Error + Send + Sync>(_: E) {}
        is_error(e);
    }
}
