//! Error types for the timing analyzer.

use crate::budget::PartialTiming;
use std::error::Error;
use std::fmt;

/// Errors produced by timing analysis.
///
/// Marked `#[non_exhaustive]`: downstream crates must keep a wildcard
/// arm so future failure modes (like [`TimingError::BudgetExhausted`],
/// added after the first release) are not breaking changes.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TimingError {
    /// The scenario references a node that is not in the network.
    UnknownNode {
        /// The offending name or id rendering.
        name: String,
    },
    /// The scenario's switching input is not a primary input.
    NotAnInput {
        /// Name of the node.
        name: String,
    },
    /// The technology has no drive parameters for a device/direction pair
    /// the analysis needed.
    MissingDriveParams {
        /// Description of the pair.
        what: String,
    },
    /// The analysis did not reach the requested node (it never switches in
    /// this scenario).
    NoArrival {
        /// Name of the node.
        name: String,
    },
    /// Iteration failed to settle (combinational loop without timing
    /// convergence).
    NoFixpoint {
        /// Iterations performed.
        iterations: usize,
    },
    /// A configured [`AnalysisBudget`](crate::budget::AnalysisBudget) cap
    /// fired; the partial result carries every arrival computed so far.
    BudgetExhausted {
        /// The work done before the cap fired.
        partial: Box<PartialTiming>,
    },
    /// A malformed parameter.
    BadParameter {
        /// Description.
        message: String,
    },
}

impl TimingError {
    /// `true` when this error is a cooperative-cancellation stop — a
    /// [`TimingError::BudgetExhausted`] whose tripped cap is
    /// [`BudgetExceeded::Cancelled`](crate::budget::BudgetExceeded::Cancelled).
    /// The durable batch layer uses this to classify a watchdog timeout
    /// (retryable) apart from a deterministic budget exhaustion (not).
    pub fn was_cancelled(&self) -> bool {
        matches!(
            self,
            TimingError::BudgetExhausted { partial }
                if partial.exceeded == crate::budget::BudgetExceeded::Cancelled
        )
    }
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::UnknownNode { name } => write!(f, "unknown node `{name}`"),
            TimingError::NotAnInput { name } => {
                write!(f, "node `{name}` is not a primary input")
            }
            TimingError::MissingDriveParams { what } => {
                write!(f, "technology lacks drive parameters for {what}")
            }
            TimingError::NoArrival { name } => {
                write!(f, "node `{name}` never switches in this scenario")
            }
            TimingError::NoFixpoint { iterations } => {
                write!(
                    f,
                    "timing iteration failed to settle after {iterations} rounds"
                )
            }
            TimingError::BudgetExhausted { partial } => {
                write!(
                    f,
                    "analysis budget exhausted ({}); partial result carries {} arrivals \
                     from {} completed rounds",
                    partial.exceeded,
                    partial.result.arrivals().count(),
                    partial.rounds_completed
                )
            }
            TimingError::BadParameter { message } => write!(f, "bad parameter: {message}"),
        }
    }
}

impl Error for TimingError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BudgetExceeded;

    /// Every variant must Display with its payload context intact and
    /// round-trip through the `Error` trait object.
    #[test]
    fn display_round_trip_every_variant() {
        let partial = PartialTiming {
            result: crate::analyzer::TimingResult::empty_for_tests(),
            exceeded: BudgetExceeded::StageEvals { limit: 12 },
            rounds_completed: 3,
        };
        let cases: Vec<(TimingError, &[&str])> = vec![
            (
                TimingError::UnknownNode { name: "n42".into() },
                &["unknown node", "n42"],
            ),
            (
                TimingError::NotAnInput { name: "out".into() },
                &["not a primary input", "out"],
            ),
            (
                TimingError::MissingDriveParams {
                    what: "p-pull-up".into(),
                },
                &["drive parameters", "p-pull-up"],
            ),
            (
                TimingError::NoArrival { name: "w3".into() },
                &["never switches", "w3"],
            ),
            (
                TimingError::NoFixpoint { iterations: 17 },
                &["failed to settle", "17"],
            ),
            (
                TimingError::BudgetExhausted {
                    partial: Box::new(partial),
                },
                &["budget exhausted", "12", "3 completed rounds"],
            ),
            (
                TimingError::BadParameter {
                    message: "negative load".into(),
                },
                &["bad parameter", "negative load"],
            ),
        ];
        for (err, needles) in cases {
            let direct = err.to_string();
            let via_trait = (&err as &dyn Error).to_string();
            assert_eq!(direct, via_trait, "{err:?}");
            for needle in needles {
                assert!(direct.contains(needle), "{direct:?} missing {needle:?}");
            }
        }
    }

    #[test]
    fn was_cancelled_only_for_cancelled_budget_stops() {
        let cancelled = TimingError::BudgetExhausted {
            partial: Box::new(PartialTiming {
                result: crate::analyzer::TimingResult::empty_for_tests(),
                exceeded: BudgetExceeded::Cancelled,
                rounds_completed: 0,
            }),
        };
        assert!(cancelled.was_cancelled());
        let budget = TimingError::BudgetExhausted {
            partial: Box::new(PartialTiming {
                result: crate::analyzer::TimingResult::empty_for_tests(),
                exceeded: BudgetExceeded::StageEvals { limit: 1 },
                rounds_completed: 0,
            }),
        };
        assert!(!budget.was_cancelled());
        assert!(!TimingError::NoFixpoint { iterations: 2 }.was_cancelled());
    }

    #[test]
    fn display_is_informative() {
        let e = TimingError::NoArrival { name: "out".into() };
        assert!(e.to_string().contains("out"));
        fn is_error<E: std::error::Error + Send + Sync>(_: E) {}
        is_error(e);
    }
}
