//! The switch-level static timing analyzer.
//!
//! Given a single-input switching scenario (one primary input transitions,
//! every other input is held at a static level — the same setup the
//! reference simulator measures), the analyzer:
//!
//! 1. solves the switch-level logic state before and after the transition
//!    ([`crate::logic`]), giving the set of *switching nodes* and the
//!    final conduction state of every transistor;
//! 2. extracts, for every switching node, the stages that drive it to its
//!    final value ([`crate::extract`]);
//! 3. propagates `(arrival time, transition time)` pairs from the input
//!    through the stages to a fixpoint, applying the chosen delay model
//!    per stage. For the slope model the propagated transition time feeds
//!    the next stage's slope ratio — the paper's key mechanism.
//!
//! Arrival times are 50%-crossing times; stage delays are 50%→50%.

use crate::budget::{AnalysisBudget, BudgetTracker, CancelToken, PartialTiming};
use crate::error::TimingError;
use crate::extract::stages_to_full;
use crate::logic::{self, LogicState, LogicValue};
use crate::memo::{stage_fingerprint, tech_stamp, CacheStats, CachedEval, StageCache};
use crate::models::{estimate, estimate_with_fallback, ModelKind, TriggerContext};
use crate::obs::{Phase, TraceSink};
use crate::pool::ThreadPool;
use crate::stage::Stage;
use crate::tech::{Direction, Technology};
use mosnet::units::Seconds;
use mosnet::{Network, NodeId, NodeKind, TransistorKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Weight applied to the capacitance of stage nodes whose logic value is
/// the same before and after the transition. Such nodes (e.g. the
/// pre-discharged internal nodes of a series stack) only redistribute
/// charge transiently instead of swinging rail to rail, so they are
/// fully discounted by default; `1.0` restores the classical fully
/// pessimistic treatment (count every stage capacitance). The
/// `exp_ablation` experiment measures the trade: mean gate error 7.0%
/// (0.0) vs 12.2% (0.5) vs 17.8% (1.0), with worst-case optimism at 0.0
/// of only -1.5%.
pub const NON_SWITCHING_CAP_WEIGHT: f64 = 0.0;

/// Whether the analysis computes the latest (setup-style) or earliest
/// (hold-style) arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AnalysisMode {
    /// Latest arrivals: max over stages and triggers (the default).
    #[default]
    WorstCase,
    /// Earliest arrivals: min over stages and triggers — the fast-path
    /// bound used for hold/race checking.
    BestCase,
}

/// How the fixpoint loop picks the nodes to evaluate each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PropagationMode {
    /// Event-driven dirty sets (the default): after each round's merge,
    /// only the nodes observing a changed arrival are re-examined next
    /// round — Crystal's rule. The dirty set is derived from the merged
    /// updates alone, so it is identical at every thread count, and a
    /// node outside it would have reproduced its previous candidate bit
    /// for bit, so the fixpoint (and the round count) matches
    /// [`PropagationMode::FullJacobi`] exactly.
    #[default]
    DirtySet,
    /// Re-evaluate every target every round — the pre-dirty-set
    /// behavior, kept as the reference implementation for equivalence
    /// tests. O(targets × rounds) stage evaluations; only the budget
    /// charge sequence differs from [`PropagationMode::DirtySet`]
    /// (more is charged per round), never the arrivals.
    FullJacobi,
}

/// Tunable knobs of the analysis; [`AnalyzerOptions::default`] matches
/// the behavior of [`analyze`].
#[derive(Debug, Clone)]
pub struct AnalyzerOptions {
    /// Capacitance weight for nodes whose logic value does not change
    /// across the transition (see [`NON_SWITCHING_CAP_WEIGHT`]).
    pub non_switching_cap_weight: f64,
    /// Latest- or earliest-arrival analysis.
    pub mode: AnalysisMode,
    /// Hard caps on the work this analysis may perform; unlimited by
    /// default. When a cap fires the analyzer returns
    /// [`TimingError::BudgetExhausted`] carrying every arrival computed
    /// so far.
    pub budget: AnalysisBudget,
    /// Degrade a stage down the model chain (slope → rc-tree → lumped)
    /// when the requested model cannot produce a usable estimate for it,
    /// recording the substitute in [`Arrival::model`]. `false` restores
    /// the strict single-model behavior.
    pub model_fallback: bool,
    /// Worker threads for stage extraction and per-node evaluation:
    /// `1` (the default) runs serially, `0` uses every hardware thread,
    /// any other value is taken literally. Arrivals — including partial
    /// results from a tripped budget — are **bit-identical for every
    /// thread count**: propagation always evaluates against the previous
    /// round's arrival snapshot, merges in node order, and commits
    /// budgets in node order before parallel dispatch.
    pub threads: usize,
    /// Which nodes each propagation round evaluates (see
    /// [`PropagationMode`]). Both modes produce bit-identical arrivals;
    /// the default dirty-set mode does O(changes) work per round instead
    /// of O(targets).
    pub propagation: PropagationMode,
    /// Shared stage-evaluation memo cache. `None` (the default) disables
    /// memoization; pass a clone of one [`Arc<StageCache>`] to every
    /// analysis that should pool its evaluations. Cached results are
    /// bit-identical to fresh ones (keys include the exact input-slope
    /// bits and a technology content stamp), so attaching a cache never
    /// changes arrivals.
    pub cache: Option<Arc<StageCache>>,
    /// Observability sink ([`crate::obs`]). `None` (the default) records
    /// nothing; pass a shared [`Arc<TraceSink>`] to collect span timings
    /// and per-phase counters for the logic, extraction, evaluation,
    /// propagation, and cache phases. Tracing never affects arrivals.
    pub trace: Option<Arc<TraceSink>>,
    /// External cooperative-cancellation token. `None` (the default)
    /// never cancels. When the token fires, the analysis stops at its
    /// next budget checkpoint and returns
    /// [`TimingError::BudgetExhausted`] whose partial result carries
    /// [`BudgetExceeded::Cancelled`](crate::budget::BudgetExceeded::Cancelled)
    /// — the hook the durable batch watchdog uses to impose per-scenario
    /// wall-clock deadlines from outside the analysis.
    pub cancel: Option<CancelToken>,
}

impl Default for AnalyzerOptions {
    fn default() -> AnalyzerOptions {
        AnalyzerOptions {
            non_switching_cap_weight: NON_SWITCHING_CAP_WEIGHT,
            mode: AnalysisMode::WorstCase,
            budget: AnalysisBudget::unlimited(),
            model_fallback: true,
            threads: 1,
            propagation: PropagationMode::default(),
            cache: None,
            trace: None,
            cancel: None,
        }
    }
}

impl PartialEq for AnalyzerOptions {
    fn eq(&self, other: &AnalyzerOptions) -> bool {
        self.non_switching_cap_weight == other.non_switching_cap_weight
            && self.mode == other.mode
            && self.budget == other.budget
            && self.model_fallback == other.model_fallback
            && self.threads == other.threads
            && self.propagation == other.propagation
            && match (&self.cache, &other.cache) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
            && match (&self.trace, &other.trace) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
            && match (&self.cancel, &other.cancel) {
                (None, None) => true,
                (Some(a), Some(b)) => std::ptr::eq(a.as_atomic(), b.as_atomic()),
                _ => false,
            }
    }
}

/// A signal transition direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Low → high.
    Rising,
    /// High → low.
    Falling,
}

impl Edge {
    /// The logic value after the edge.
    #[inline]
    pub fn final_value(self) -> bool {
        self == Edge::Rising
    }

    /// The opposite edge.
    #[inline]
    pub fn inverted(self) -> Edge {
        match self {
            Edge::Rising => Edge::Falling,
            Edge::Falling => Edge::Rising,
        }
    }
}

/// One timing scenario: which input switches, how fast, and the static
/// levels of the other inputs.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The switching primary input.
    pub input: NodeId,
    /// Direction of the input edge.
    pub edge: Edge,
    /// 10–90% transition time of the input edge.
    pub input_transition: Seconds,
    /// Static levels for the remaining inputs (unlisted inputs are `0`).
    pub statics: HashMap<NodeId, bool>,
}

impl Scenario {
    /// A step scenario: `input` switches with `edge`, everything else low.
    pub fn step(input: NodeId, edge: Edge) -> Scenario {
        Scenario {
            input,
            edge,
            input_transition: Seconds::ZERO,
            statics: HashMap::new(),
        }
    }

    /// Sets a static input level (builder style).
    #[must_use]
    pub fn with_static(mut self, node: NodeId, level: bool) -> Scenario {
        self.statics.insert(node, level);
        self
    }

    /// Sets the input transition time (builder style).
    #[must_use]
    pub fn with_input_transition(mut self, t: Seconds) -> Scenario {
        self.input_transition = t;
        self
    }
}

/// A computed arrival at a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// 50%-crossing time, measured from the input's 50% point.
    pub time: Seconds,
    /// Estimated 10–90% transition time of this node.
    pub transition: Seconds,
    /// Direction of this node's transition.
    pub edge: Edge,
    /// The gate node whose transition triggered the driving stage
    /// (`None` for the scenario input itself).
    pub cause: Option<NodeId>,
    /// The delay model that actually produced this arrival. Matches the
    /// requested model unless fallback degraded the driving stage.
    pub model: ModelKind,
}

/// Accounting of one incremental re-analysis pass over a scenario:
/// how much work the dependency index invalidated versus replayed.
/// Attached to a [`TimingResult`] only by
/// [`IncrementalAnalyzer`](crate::incremental::IncrementalAnalyzer);
/// plain [`analyze`] runs leave it absent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncrementalStats {
    /// Switching targets whose stages were re-extracted and re-evaluated.
    pub invalidated_targets: usize,
    /// Switching targets whose previous arrival was replayed untouched.
    pub reused_targets: usize,
    /// Stages re-extracted for the invalidated targets.
    pub invalidated_stages: usize,
    /// Stages whose previous evaluation was reused via arrival replay.
    pub reused_stages: usize,
    /// Propagation rounds of the subset fixpoint.
    pub rounds: usize,
}

/// The outcome of a timing analysis.
///
/// Equality compares arrivals and the model only: cache statistics and
/// incremental accounting are observability data whose exact counts
/// depend on thread interleaving (two workers can miss on the same key
/// simultaneously) or on edit history, so they are excluded from `==` to
/// keep "same analysis ⇒ equal results" true under concurrency and
/// under incremental replay.
#[derive(Debug, Clone)]
pub struct TimingResult {
    pub(crate) arrivals: Vec<Option<Arrival>>,
    pub(crate) model: ModelKind,
    pub(crate) cache_stats: Option<CacheStats>,
    pub(crate) incremental: Option<IncrementalStats>,
}

impl PartialEq for TimingResult {
    fn eq(&self, other: &TimingResult) -> bool {
        self.arrivals == other.arrivals && self.model == other.model
    }
}

#[cfg(test)]
impl TimingResult {
    /// An empty result for error-formatting tests.
    pub(crate) fn empty_for_tests() -> TimingResult {
        TimingResult {
            arrivals: Vec::new(),
            model: ModelKind::Slope,
            cache_stats: None,
            incremental: None,
        }
    }
}

impl TimingResult {
    /// The model that produced this result.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// Stage-cache hit/miss/eviction counts accrued by *this* analysis
    /// (a delta, not the cache's lifetime totals). `None` when the
    /// analysis ran without a cache.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache_stats
    }

    /// Invalidation/reuse accounting when this result was produced by an
    /// incremental re-analysis
    /// ([`IncrementalAnalyzer`](crate::incremental::IncrementalAnalyzer));
    /// `None` for ordinary full analyses.
    pub fn incremental(&self) -> Option<IncrementalStats> {
        self.incremental
    }

    /// The arrival at `node`, if it switches in this scenario.
    pub fn arrival(&self, node: NodeId) -> Option<&Arrival> {
        self.arrivals[node.index()].as_ref()
    }

    /// The arrival at `node`, as an error when absent.
    ///
    /// # Errors
    /// Returns [`TimingError::NoArrival`] when the node never switches.
    pub fn delay_to(&self, net: &Network, node: NodeId) -> Result<Arrival, TimingError> {
        self.arrival(node)
            .copied()
            .ok_or_else(|| TimingError::NoArrival {
                name: net.node(node).name().to_string(),
            })
    }

    /// The latest-switching node and its arrival.
    pub fn max_arrival(&self) -> Option<(NodeId, &Arrival)> {
        self.arrivals
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.as_ref().map(|a| (NodeId::from_index(i), a)))
            .max_by(|a, b| {
                a.1.time
                    .partial_cmp(&b.1.time)
                    .expect("arrival times are finite")
            })
    }

    /// Back-traces the chain of triggering nodes from `node` to the
    /// scenario input (inclusive), latest first.
    pub fn critical_path(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut at = Some(node);
        while let Some(n) = at {
            if path.contains(&n) {
                break; // defensive: never loop
            }
            path.push(n);
            at = self.arrivals[n.index()].as_ref().and_then(|a| a.cause);
        }
        path
    }

    /// Iterates over all `(node, arrival)` pairs.
    pub fn arrivals(&self) -> impl Iterator<Item = (NodeId, &Arrival)> {
        self.arrivals
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.as_ref().map(|a| (NodeId::from_index(i), a)))
    }
}

/// Runs the analysis.
///
/// # Errors
/// * [`TimingError::NotAnInput`] if the scenario's switching node is not a
///   primary input.
/// * [`TimingError::NoFixpoint`] if arrival propagation fails to settle
///   (pathological feedback).
pub fn analyze(
    net: &Network,
    tech: &Technology,
    model: ModelKind,
    scenario: &Scenario,
) -> Result<TimingResult, TimingError> {
    analyze_with_options(net, tech, model, scenario, AnalyzerOptions::default())
}

/// Runs the analysis with explicit [`AnalyzerOptions`].
///
/// # Errors
/// See [`analyze`].
pub fn analyze_with_options(
    net: &Network,
    tech: &Technology,
    model: ModelKind,
    scenario: &Scenario,
    options: AnalyzerOptions,
) -> Result<TimingResult, TimingError> {
    analyze_subset(net, tech, model, scenario, options, None).map(|outcome| outcome.result)
}

/// Restriction of one analysis to a dependency-closed subset of the
/// switching targets, with every other target's arrival replayed from a
/// previous result. Built only by [`crate::incremental`], which is
/// responsible for the closure invariant: every target whose evaluation
/// can observe a changed input (stage structure, logic state, or the
/// arrival of another affected target) must be in `affected`.
pub(crate) struct SubsetSpec {
    /// Targets to re-extract and re-evaluate, sorted by node id.
    pub affected: Vec<NodeId>,
    /// Replayed `(node, arrival)` pairs for the targets outside
    /// `affected`, installed before propagation starts.
    pub seeded: Vec<(NodeId, Arrival)>,
}

/// A [`TimingResult`] plus the per-target accounting the incremental
/// engine needs to maintain its dependency index across edits.
pub(crate) struct AnalysisOutcome {
    pub result: TimingResult,
    /// `(target, extracted stage count)` for every evaluated target.
    pub target_stages: Vec<(NodeId, usize)>,
    /// Propagation rounds until the fixpoint settled.
    pub rounds: usize,
}

/// The full analysis pipeline, optionally restricted to a subset of
/// targets (see [`SubsetSpec`]). `analyze_with_options` is the public
/// entry point; [`crate::incremental`] calls this directly.
pub(crate) fn analyze_subset(
    net: &Network,
    tech: &Technology,
    model: ModelKind,
    scenario: &Scenario,
    options: AnalyzerOptions,
    subset: Option<&SubsetSpec>,
) -> Result<AnalysisOutcome, TimingError> {
    if net.node(scenario.input).kind() != NodeKind::Input {
        return Err(TimingError::NotAnInput {
            name: net.node(scenario.input).name().to_string(),
        });
    }

    let trace: Option<&TraceSink> = options.trace.as_deref();

    // Steady states before and after the input edge.
    let mut before_inputs = scenario.statics.clone();
    before_inputs.insert(scenario.input, !scenario.edge.final_value());
    let mut after_inputs = scenario.statics.clone();
    after_inputs.insert(scenario.input, scenario.edge.final_value());
    let (before, after) = {
        let _span = trace.map(|t| t.span(Phase::Logic, "steady_states"));
        (
            logic::solve(net, &before_inputs),
            logic::solve(net, &after_inputs),
        )
    };

    // Switching set with final edges.
    let mut edge_of: HashMap<NodeId, Edge> = HashMap::new();
    for (id, node) in net.nodes() {
        if node.kind().is_rail() {
            continue;
        }
        let (b, a) = (before.value(id), after.value(id));
        if a.is_known() && b != a {
            edge_of.insert(
                id,
                if a == LogicValue::One {
                    Edge::Rising
                } else {
                    Edge::Falling
                },
            );
        }
    }

    let conducting = |tid| after.transistor_on(net, tid);
    // Capacitance on nodes whose logic value does not change (e.g. a
    // pre-discharged series-stack internal node) only redistributes
    // charge transiently; counting it in full makes gate stages
    // noticeably pessimistic. Known-static nodes are down-weighted.
    let cap_scale = |node: NodeId| -> f64 {
        let (b, a) = (before.value(node), after.value(node));
        if a.is_known() && b == a {
            options.non_switching_cap_weight
        } else {
            1.0
        }
    };

    // The input arrival is seeded before any budgeted work so that a
    // budget-exhausted partial result is never empty.
    let mut arrivals: Vec<Option<Arrival>> = vec![None; net.node_count()];
    arrivals[scenario.input.index()] = Some(Arrival {
        time: Seconds::ZERO,
        transition: scenario.input_transition,
        edge: scenario.edge,
        cause: None,
        model,
    });
    // Replayed arrivals of untouched targets go in before propagation:
    // affected targets read them as settled trigger inputs from round 0.
    if let Some(spec) = subset {
        for &(node, arrival) in &spec.seeded {
            arrivals[node.index()] = Some(arrival);
        }
    }
    let tracker = BudgetTracker::new(options.budget, options.cancel.clone());
    let pool = ThreadPool::new(options.threads);
    let cache_ref: Option<&StageCache> = options.cache.as_deref();
    // This analysis's share of the cache traffic is counted in private
    // atomics bumped at the probe site — *not* as a start/end delta of
    // the shared cache's lifetime counters. The cache typically serves a
    // whole batch of concurrent analyses, and a window delta also counts
    // every probe the neighbors made in the meantime (observed as ~1.6×
    // inflated hit counts at threads ≥ 2 for identical work).
    let cache_ctx: Option<CacheCtx<'_>> = cache_ref.map(|c| CacheCtx {
        cache: c,
        stamp: tech_stamp(tech),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        evictions: AtomicU64::new(0),
    });
    // Recorded into the trace sink on every exit path, success or
    // budget-exhausted alike.
    let cache_stats_now = || {
        let stats = cache_ctx.as_ref().map(CacheCtx::stats);
        if let (Some(t), Some(s)) = (trace, stats.as_ref()) {
            t.count(Phase::Cache, "hits", s.hits);
            t.count(Phase::Cache, "misses", s.misses);
            t.count(Phase::Cache, "evictions", s.evictions);
        }
        stats
    };
    // Packages whatever has been computed so far into the partial-result
    // error, preserving the prefix property: arrivals are only added or
    // refined, never removed, so the partial node set is a subset of what
    // an unbudgeted run would produce.
    let exhausted = |arrivals: Vec<Option<Arrival>>,
                     exceeded: crate::budget::BudgetExceeded,
                     rounds_completed: usize| {
        TimingError::BudgetExhausted {
            partial: Box::new(PartialTiming {
                result: TimingResult {
                    arrivals,
                    model,
                    cache_stats: cache_stats_now(),
                    incremental: None,
                },
                exceeded,
                rounds_completed,
            }),
        }
    };

    // Targets of stage extraction, in deterministic node order. Under a
    // subset restriction only the affected targets are (re-)extracted;
    // the rest keep their replayed arrivals.
    let mut targets: Vec<(NodeId, Edge)> = edge_of
        .iter()
        .filter(|&(&node, _)| {
            node != scenario.input && !net.node(node).kind().is_driven_externally()
        })
        .map(|(&node, &edge)| (node, edge))
        .collect();
    targets.sort_by_key(|&(node, _)| node);
    if let Some(spec) = subset {
        targets.retain(|(node, _)| spec.affected.binary_search(node).is_ok());
    }

    if let Err(e) = tracker.check_deadline() {
        return Err(exhausted(arrivals, e, 0));
    }
    // Extraction is independent per target node — fan it across the
    // pool. Budget violations are collected and reported afterwards in
    // node order, so which violation surfaces does not depend on worker
    // scheduling.
    type Extracted = Result<(Vec<Stage>, Vec<u128>), crate::budget::BudgetExceeded>;
    let extract_span = trace.map(|t| {
        let mut span = t.span(Phase::Extraction, "extract");
        span.field("targets", targets.len());
        span
    });
    let extracted: Vec<Extracted> =
        pool.map_traced(trace, "extract_fanout", &targets, |_, &(node, edge)| {
            tracker.check_deadline()?;
            let direction = if edge == Edge::Rising {
                Direction::PullUp
            } else {
                Direction::PullDown
            };
            // A path node already sitting (and staying) at logic One is a
            // charge reservoir for a pull-up stage: its stored charge
            // (C·Vdd) supplies the early transition. The discount applies
            // only to charging — a discharged node holds no charge to
            // donate, and treating it as a source makes pull-down stacks
            // optimistic (see `extract::stages_to_full`).
            let reservoir = |n: NodeId| -> bool {
                edge == Edge::Rising
                    && before.value(n) == LogicValue::One
                    && after.value(n) == LogicValue::One
            };
            let stages = stages_to_full(
                net,
                tech,
                &conducting,
                node,
                direction,
                &cap_scale,
                &reservoir,
            );
            tracker.check_paths(stages.len())?;
            let fingerprints = if cache_ctx.is_some() {
                stages.iter().map(stage_fingerprint).collect()
            } else {
                Vec::new()
            };
            Ok((stages, fingerprints))
        });
    drop(extract_span);
    let mut work: Vec<NodeWork> = Vec::with_capacity(targets.len());
    for (&(node, edge), outcome) in targets.iter().zip(extracted) {
        match outcome {
            Ok((stages, fingerprints)) => work.push(NodeWork {
                node,
                edge,
                stages,
                fingerprints,
            }),
            Err(e) => return Err(exhausted(arrivals, e, 0)),
        }
    }
    if let Some(t) = trace {
        let stages: usize = work.iter().map(|w| w.stages.len()).sum();
        t.count(Phase::Extraction, "stages_extracted", stages as u64);
    }
    let mut target_stages: Vec<(NodeId, usize)> =
        work.iter().map(|w| (w.node, w.stages.len())).collect();

    // Reverse dependency map for the event-driven dirty sets: for every
    // work item, the switching nodes whose arrivals `evaluate_node`
    // actually reads — the gates along its stage paths plus the gates of
    // its "releasing" transistors. An item is re-examined in round r+1
    // only when one of those changed in round r (Crystal's rule): an
    // item whose observed arrivals did not change would reproduce its
    // previous candidate bit for bit, so skipping it cannot alter the
    // fixpoint or the round count.
    let mut dependents: HashMap<NodeId, Vec<usize>> = HashMap::new();
    if options.propagation == PropagationMode::DirtySet {
        for (wi, w) in work.iter().enumerate() {
            let mut observed: Vec<NodeId> = Vec::new();
            for stage in &w.stages {
                for &gate in &stage.path_gates {
                    if gate != w.node && edge_of.contains_key(&gate) {
                        observed.push(gate);
                    }
                }
            }
            for &tid in net.channel_neighbors(w.node) {
                if before.transistor_on(net, tid) && !after.transistor_on(net, tid) {
                    let gate = net.transistor(tid).gate();
                    if gate != w.node && edge_of.contains_key(&gate) {
                        observed.push(gate);
                    }
                }
            }
            observed.sort_unstable();
            observed.dedup();
            for gate in observed {
                dependents.entry(gate).or_default().push(wi);
            }
        }
    }

    // Propagation evaluates against the previous round's arrival
    // snapshot for *every* thread count, serial included, then merges
    // the updates in node order. In-round (Gauss-Seidel) updates would
    // make results depend on evaluation order and thus on the worker
    // count; snapshot rounds cost at most a few extra rounds and make
    // `threads = N` bit-identical to `threads = 1`. Round 0 examines
    // every target; under the default dirty-set mode each later round
    // examines only the targets observing an arrival the previous
    // round's merge changed — a set derived from the merged updates
    // alone, hence equally thread-count independent.
    let max_rounds = work.len() + 2;
    let mut dirty: Vec<usize> = (0..work.len()).collect();
    for round in 0..=max_rounds {
        let _round_span = trace.map(|t| {
            let mut span = t.span(Phase::Propagation, "round");
            span.field("round", round);
            span.field("dirty", dirty.len());
            span
        });
        if let Err(e) = tracker.check_deadline() {
            return Err(exhausted(arrivals, e, round));
        }
        // Budget is committed serially, in node order (`dirty` holds
        // ascending work indices and `work` is sorted by node id),
        // *before* parallel dispatch: the round evaluates exactly the
        // prefix of dirty nodes whose charges fit, so a tripped budget
        // yields the same partial result at any thread count.
        let mut cutoff = dirty.len();
        let mut tripped = None;
        for (i, &wi) in dirty.iter().enumerate() {
            if let Err(e) = tracker.charge_stage_evals(work[wi].stages.len()) {
                cutoff = i;
                tripped = Some(e);
                break;
            }
        }
        let ready = &dirty[..cutoff];
        if let Some(t) = trace {
            let evals: usize = ready.iter().map(|&wi| work[wi].stages.len()).sum();
            t.count(Phase::Evaluation, "stage_evals_charged", evals as u64);
        }
        let eval_span = trace.map(|t| {
            let mut span = t.span(Phase::Evaluation, "evaluate");
            span.field("nodes", cutoff);
            span
        });
        let candidates: Vec<Option<Arrival>> =
            pool.map_traced(trace, "evaluate_fanout", ready, |_, &wi| {
                evaluate_node(
                    net,
                    tech,
                    model,
                    &before,
                    &after,
                    &edge_of,
                    &arrivals,
                    &work[wi],
                    options.mode,
                    options.model_fallback,
                    cache_ctx.as_ref(),
                )
            });
        drop(eval_span);
        let mut changed = false;
        let mut next_dirty: Vec<usize> = Vec::new();
        for (&wi, candidate) in ready.iter().zip(candidates) {
            if let Some(candidate) = candidate {
                let node = work[wi].node;
                let update = match &arrivals[node.index()] {
                    None => true,
                    Some(prev) => {
                        (candidate.time.value() - prev.time.value()).abs() > 1e-18
                            || (candidate.transition.value() - prev.transition.value()).abs()
                                > 1e-18
                    }
                };
                if update {
                    arrivals[node.index()] = Some(candidate);
                    changed = true;
                    if let Some(deps) = dependents.get(&node) {
                        next_dirty.extend_from_slice(deps);
                    }
                }
            }
        }
        if let Some(e) = tripped {
            return Err(exhausted(arrivals, e, round));
        }
        if !changed {
            return Ok(AnalysisOutcome {
                result: TimingResult {
                    arrivals,
                    model,
                    cache_stats: cache_stats_now(),
                    incremental: None,
                },
                target_stages: std::mem::take(&mut target_stages),
                rounds: round,
            });
        }
        if round == max_rounds {
            return Err(TimingError::NoFixpoint {
                iterations: max_rounds,
            });
        }
        dirty = match options.propagation {
            PropagationMode::DirtySet => {
                next_dirty.sort_unstable();
                next_dirty.dedup();
                next_dirty
            }
            PropagationMode::FullJacobi => (0..work.len()).collect(),
        };
    }
    unreachable!("loop always returns");
}

/// Shared stage-memo handle plus this analysis's private probe counters
/// (see `analyze_subset` for why the counters are not read off the
/// shared cache).
struct CacheCtx<'a> {
    cache: &'a StageCache,
    stamp: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheCtx<'_> {
    /// Exact per-analysis counts; the generation is the shared cache's,
    /// so `CacheStats::delta_since` keeps treating a concurrent `clear`
    /// as an epoch break.
    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            generation: self.cache.stats().generation,
        }
    }
}

/// One switching node's propagation work: its driving stages plus (when
/// caching) their precomputed fingerprints, parallel to `stages`.
struct NodeWork {
    node: NodeId,
    edge: Edge,
    stages: Vec<Stage>,
    fingerprints: Vec<u128>,
}

/// Computes the worst-case arrival of one switching node, or `None` if no
/// driving stage is ready yet.
#[allow(clippy::too_many_arguments)]
fn evaluate_node(
    net: &Network,
    tech: &Technology,
    model: ModelKind,
    before: &LogicState,
    after: &LogicState,
    edge_of: &HashMap<NodeId, Edge>,
    arrivals: &[Option<Arrival>],
    work: &NodeWork,
    mode: AnalysisMode,
    model_fallback: bool,
    cache: Option<&CacheCtx<'_>>,
) -> Option<Arrival> {
    let node = work.node;
    let _edge = work.edge;
    let trigger_wins = |candidate: Seconds, best: Seconds| match mode {
        AnalysisMode::WorstCase => candidate > best,
        AnalysisMode::BestCase => candidate < best,
    };
    let mut worst: Option<Arrival> = None;
    for (stage_index, stage) in work.stages.iter().enumerate() {
        // Trigger candidates: switching gates along the path (self-gates —
        // a load whose gate is the target itself — excluded)…
        let mut trigger: Option<(Seconds, Seconds, TransistorKind, NodeId)> = None;
        let mut waiting = false;
        for (tid, &gate) in stage.path.iter().zip(&stage.path_gates) {
            if gate == node || !edge_of.contains_key(&gate) {
                continue;
            }
            match &arrivals[gate.index()] {
                Some(a) => {
                    let kind = net.transistor(*tid).kind();
                    if trigger.as_ref().is_none_or(|t| trigger_wins(a.time, t.0)) {
                        trigger = Some((a.time, a.transition, kind, gate));
                    }
                }
                None => waiting = true,
            }
        }
        // …plus "releasing" transistors: devices touching the target that
        // conducted before but not after (the old holding path turning
        // off), e.g. the pull-down under an nMOS depletion load.
        for &tid in net.channel_neighbors(node) {
            let was_on = before.transistor_on(net, tid);
            let is_on = after.transistor_on(net, tid);
            let releases = was_on && !is_on;
            if !releases {
                continue;
            }
            let gate = net.transistor(tid).gate();
            if gate == node || !edge_of.contains_key(&gate) {
                continue;
            }
            match &arrivals[gate.index()] {
                Some(a) => {
                    let kind = stage
                        .path
                        .first()
                        .map(|&t| net.transistor(t).kind())
                        .unwrap_or(TransistorKind::NEnhancement);
                    if trigger.as_ref().is_none_or(|t| trigger_wins(a.time, t.0)) {
                        trigger = Some((a.time, a.transition, kind, gate));
                    }
                }
                None => waiting = true,
            }
        }

        if waiting && trigger.is_none() {
            continue; // not ready this round
        }
        let (t_trig, transition, kind, cause) = trigger.unwrap_or((
            Seconds::ZERO,
            Seconds::ZERO,
            stage
                .path
                .first()
                .map(|&t| net.transistor(t).kind())
                .unwrap_or(TransistorKind::NEnhancement),
            node,
        ));
        let ctx = TriggerContext {
            input_transition: transition,
            trigger_kind: kind,
        };
        // The memo key covers everything the models consume (stage
        // topology, technology stamp, slope bucket, model, trigger kind,
        // fallback flag). With the default exact bucketing a hit is
        // bit-identical to a fresh evaluation; quantized bucketing trades
        // a documented rounding error for hit rate
        // (`memo::SlopeBucketing`). Failed evaluations are not cached:
        // they are rare (broken technology tables) and skipping them is
        // cheap.
        let key = cache.map(|cc| {
            cc.cache.key(
                work.fingerprints[stage_index],
                cc.stamp,
                ctx.input_transition,
                model,
                ctx.trigger_kind,
                model_fallback,
            )
        });
        let memoized = match (cache, &key) {
            (Some(cc), Some(k)) => match cc.cache.lookup(k) {
                Some(v) => {
                    cc.hits.fetch_add(1, Ordering::Relaxed);
                    Some((v.delay, v.used_model))
                }
                None => {
                    cc.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            },
            _ => None,
        };
        let (d, used_model) = match memoized {
            Some(pair) => pair,
            None => {
                let computed = if model_fallback {
                    match estimate_with_fallback(model, tech, stage, ctx) {
                        Ok(pair) => pair,
                        // Fail-soft: when even the lumped model cannot
                        // produce a usable number for this stage, skip it
                        // rather than poisoning the whole analysis with
                        // NaN/negative times.
                        Err(_) => continue,
                    }
                } else {
                    (estimate(model, tech, stage, ctx), model)
                };
                if let (Some(cc), Some(k)) = (cache, &key) {
                    let evicted = cc.cache.insert(
                        *k,
                        CachedEval {
                            delay: computed.0,
                            used_model: computed.1,
                        },
                    );
                    if evicted {
                        cc.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                computed
            }
        };
        let candidate = Arrival {
            time: t_trig + d.delay,
            transition: d.output_transition,
            edge: _edge,
            cause: if cause == node { None } else { Some(cause) },
            model: used_model,
        };
        if worst
            .as_ref()
            .is_none_or(|w| trigger_wins(candidate.time, w.time))
        {
            worst = Some(candidate);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosnet::generators::{decoder2to4, inverter, inverter_chain, nand, pass_chain, Style};
    use mosnet::units::Farads;

    fn tech() -> Technology {
        Technology::nominal()
    }

    #[test]
    fn inverter_falls_when_input_rises() {
        let net = inverter(Style::Cmos, Farads::from_femto(100.0));
        let inp = net.node_by_name("in").unwrap();
        let out = net.node_by_name("out").unwrap();
        let result = analyze(
            &net,
            &tech(),
            ModelKind::Slope,
            &Scenario::step(inp, Edge::Rising),
        )
        .unwrap();
        let a = result.delay_to(&net, out).unwrap();
        assert_eq!(a.edge, Edge::Falling);
        assert!(a.time.value() > 0.0);
        assert_eq!(a.cause, Some(inp));
    }

    #[test]
    fn chain_arrival_accumulates_per_stage() {
        let net = inverter_chain(Style::Cmos, 4, 1.0, Farads::from_femto(100.0)).unwrap();
        let inp = net.node_by_name("in").unwrap();
        let out = net.node_by_name("out").unwrap();
        let result = analyze(
            &net,
            &tech(),
            ModelKind::Slope,
            &Scenario::step(inp, Edge::Rising),
        )
        .unwrap();
        // Arrivals strictly increase along the chain.
        let mut last = Seconds::ZERO;
        for name in ["s1", "s2", "s3", "out"] {
            let n = net.node_by_name(name).unwrap();
            let a = result.delay_to(&net, n).unwrap();
            assert!(a.time > last, "{name} must arrive after its driver");
            last = a.time;
        }
        // Output edge after an even number of inversions matches input.
        assert_eq!(result.delay_to(&net, out).unwrap().edge, Edge::Rising);
        // Critical path traces back to the input.
        let path = result.critical_path(out);
        assert_eq!(path.last(), Some(&inp));
        assert_eq!(path.len(), 5);
    }

    #[test]
    fn nand_only_switches_with_sensitized_side_input() {
        let net = nand(Style::Cmos, 2, Farads::from_femto(100.0)).unwrap();
        let a0 = net.node_by_name("a0").unwrap();
        let a1 = net.node_by_name("a1").unwrap();
        let out = net.node_by_name("out").unwrap();
        // a1 = 1: output responds to a0.
        let result = analyze(
            &net,
            &tech(),
            ModelKind::Slope,
            &Scenario::step(a0, Edge::Rising).with_static(a1, true),
        )
        .unwrap();
        assert_eq!(result.delay_to(&net, out).unwrap().edge, Edge::Falling);
        // a1 = 0: output stays high; no arrival.
        let result = analyze(
            &net,
            &tech(),
            ModelKind::Slope,
            &Scenario::step(a0, Edge::Rising).with_static(a1, false),
        )
        .unwrap();
        assert!(result.arrival(out).is_none());
        assert!(result.delay_to(&net, out).is_err());
    }

    #[test]
    fn nmos_rising_output_is_triggered_by_releasing_pulldown() {
        let net = inverter(Style::Nmos, Farads::from_femto(100.0));
        let inp = net.node_by_name("in").unwrap();
        let out = net.node_by_name("out").unwrap();
        // Input falls ⇒ pull-down releases ⇒ depletion load pulls up.
        let result = analyze(
            &net,
            &tech(),
            ModelKind::Slope,
            &Scenario::step(inp, Edge::Falling),
        )
        .unwrap();
        let a = result.delay_to(&net, out).unwrap();
        assert_eq!(a.edge, Edge::Rising);
        assert!(a.time.value() > 0.0);
        assert_eq!(a.cause, Some(inp));
    }

    #[test]
    fn pass_chain_delay_grows_with_length() {
        let mut last = 0.0;
        for n in [1, 2, 4, 8] {
            let net = pass_chain(
                Style::Cmos,
                n,
                Farads::from_femto(50.0),
                Farads::from_femto(100.0),
            )
            .unwrap();
            let inp = net.node_by_name("in").unwrap();
            let ctl = net.node_by_name("ctl").unwrap();
            let out = net.node_by_name("out").unwrap();
            let result = analyze(
                &net,
                &tech(),
                ModelKind::Slope,
                &Scenario::step(inp, Edge::Falling).with_static(ctl, true),
            )
            .unwrap();
            let t = result.delay_to(&net, out).unwrap().time.value();
            assert!(t > last, "length {n}: {t} not > {last}");
            last = t;
        }
    }

    #[test]
    fn lumped_exceeds_rctree_on_pass_chain_analysis() {
        let net = pass_chain(
            Style::Cmos,
            8,
            Farads::from_femto(50.0),
            Farads::from_femto(100.0),
        )
        .unwrap();
        let inp = net.node_by_name("in").unwrap();
        let ctl = net.node_by_name("ctl").unwrap();
        let out = net.node_by_name("out").unwrap();
        let scenario = Scenario::step(inp, Edge::Falling).with_static(ctl, true);
        let lumped = analyze(&net, &tech(), ModelKind::Lumped, &scenario)
            .unwrap()
            .delay_to(&net, out)
            .unwrap()
            .time;
        let rctree = analyze(&net, &tech(), ModelKind::RcTree, &scenario)
            .unwrap()
            .delay_to(&net, out)
            .unwrap()
            .time;
        assert!(lumped.value() > 1.3 * rctree.value());
    }

    #[test]
    fn slope_model_propagates_transition_times() {
        // A slow input must lengthen the first stage's delay under the
        // slope model but not under lumped/rc-tree.
        let net = inverter_chain(Style::Cmos, 2, 1.0, Farads::from_femto(100.0)).unwrap();
        let inp = net.node_by_name("in").unwrap();
        let out = net.node_by_name("out").unwrap();
        let fast = Scenario::step(inp, Edge::Rising);
        let slow =
            Scenario::step(inp, Edge::Rising).with_input_transition(Seconds::from_nanos(20.0));
        let t_fast = analyze(&net, &tech(), ModelKind::Slope, &fast)
            .unwrap()
            .delay_to(&net, out)
            .unwrap()
            .time;
        let t_slow = analyze(&net, &tech(), ModelKind::Slope, &slow)
            .unwrap()
            .delay_to(&net, out)
            .unwrap()
            .time;
        assert!(t_slow > t_fast);
        for model in [ModelKind::Lumped, ModelKind::RcTree] {
            let a = analyze(&net, &tech(), model, &fast)
                .unwrap()
                .delay_to(&net, out)
                .unwrap()
                .time;
            let b = analyze(&net, &tech(), model, &slow)
                .unwrap()
                .delay_to(&net, out)
                .unwrap()
                .time;
            assert_eq!(a, b, "{model} ignores input slope");
        }
    }

    #[test]
    fn decoder_word_lines_switch_appropriately() {
        let net = decoder2to4(Style::Cmos, Farads::from_femto(100.0)).unwrap();
        let a0 = net.node_by_name("a0").unwrap();
        // a0: 0→1 with a1=0 selects w1 (rising) and deselects w0 (falling).
        let result = analyze(
            &net,
            &tech(),
            ModelKind::Slope,
            &Scenario::step(a0, Edge::Rising),
        )
        .unwrap();
        let w0 = net.node_by_name("w0").unwrap();
        let w1 = net.node_by_name("w1").unwrap();
        assert_eq!(result.delay_to(&net, w0).unwrap().edge, Edge::Falling);
        assert_eq!(result.delay_to(&net, w1).unwrap().edge, Edge::Rising);
        let w3 = net.node_by_name("w3").unwrap();
        assert!(result.arrival(w3).is_none());
        // Something is the global maximum.
        assert!(result.max_arrival().is_some());
    }

    #[test]
    fn rejects_non_input_scenario() {
        let net = inverter(Style::Cmos, Farads::from_femto(10.0));
        let out = net.node_by_name("out").unwrap();
        assert!(matches!(
            analyze(
                &net,
                &tech(),
                ModelKind::Slope,
                &Scenario::step(out, Edge::Rising)
            ),
            Err(TimingError::NotAnInput { .. })
        ));
    }

    #[test]
    fn best_case_arrivals_never_exceed_worst_case() {
        use crate::analyzer::{analyze_with_options, AnalysisMode, AnalyzerOptions};
        use mosnet::generators::barrel_shifter;
        let circuits: Vec<(mosnet::Network, &str, Scenario)> = vec![
            {
                let net = inverter_chain(Style::Cmos, 3, 2.0, Farads::from_femto(100.0)).unwrap();
                let s = Scenario::step(net.node_by_name("in").unwrap(), Edge::Rising);
                (net, "out", s)
            },
            {
                let net = barrel_shifter(Style::Cmos, 4, Farads::from_femto(100.0)).unwrap();
                let s = Scenario::step(net.node_by_name("d0").unwrap(), Edge::Falling)
                    .with_static(net.node_by_name("sh1").unwrap(), true);
                (net, "q3", s)
            },
        ];
        for (net, out_name, scenario) in circuits {
            let out = net.node_by_name(out_name).unwrap();
            let worst = analyze(&net, &tech(), ModelKind::Slope, &scenario)
                .unwrap()
                .delay_to(&net, out)
                .unwrap()
                .time;
            let best = analyze_with_options(
                &net,
                &tech(),
                ModelKind::Slope,
                &scenario,
                AnalyzerOptions {
                    mode: AnalysisMode::BestCase,
                    ..AnalyzerOptions::default()
                },
            )
            .unwrap()
            .delay_to(&net, out)
            .unwrap()
            .time;
            assert!(best <= worst, "{out_name}: best {best:?} > worst {worst:?}");
            assert!(best.value() > 0.0);
        }
    }

    #[test]
    fn best_case_is_strictly_earlier_with_racing_parallel_paths() {
        use crate::analyzer::{analyze_with_options, AnalysisMode, AnalyzerOptions};
        use mosnet::network::NetworkBuilder;
        use mosnet::node::NodeKind;
        use mosnet::{Geometry, TransistorKind};
        // Two parallel pull-ups to `out`: an n-pass gated directly by the
        // input (fires at t = 0) and a p-pass gated by an inverted copy
        // (fires one inverter delay later). Worst case waits for the
        // slower trigger; best case takes the fast one.
        let mut b = NetworkBuilder::new("race");
        let vdd = b.power();
        let gnd = b.ground();
        let inp = b.node("in", NodeKind::Input);
        let ninp = b.node("nin", NodeKind::Internal);
        let out = b.node("out", NodeKind::Output);
        b.set_capacitance(ninp, Farads::from_femto(30.0));
        b.set_capacitance(out, Farads::from_femto(100.0));
        // Inverter producing nin.
        b.add_transistor(
            TransistorKind::NEnhancement,
            inp,
            ninp,
            gnd,
            Geometry::from_microns(8.0, 2.0),
        );
        b.add_transistor(
            TransistorKind::PEnhancement,
            inp,
            ninp,
            vdd,
            Geometry::from_microns(16.0, 2.0),
        );
        // Fast path: n-pass gated by in.
        b.add_transistor(
            TransistorKind::NEnhancement,
            inp,
            vdd,
            out,
            Geometry::from_microns(8.0, 2.0),
        );
        // Slow path: p-pass gated by nin (turns on when nin falls).
        b.add_transistor(
            TransistorKind::PEnhancement,
            ninp,
            vdd,
            out,
            Geometry::from_microns(16.0, 2.0),
        );
        let net = b.build().unwrap();
        let scenario = Scenario::step(inp, Edge::Rising);
        let worst = analyze(&net, &tech(), ModelKind::Slope, &scenario)
            .unwrap()
            .delay_to(&net, out)
            .unwrap();
        let best = analyze_with_options(
            &net,
            &tech(),
            ModelKind::Slope,
            &scenario,
            AnalyzerOptions {
                mode: AnalysisMode::BestCase,
                ..AnalyzerOptions::default()
            },
        )
        .unwrap()
        .delay_to(&net, out)
        .unwrap();
        assert!(
            best.time < worst.time,
            "best {:?} must beat worst {:?}",
            best.time,
            worst.time
        );
        // The two modes pick different winning paths (the weak n-pass
        // fires first but drives slowly; the p-pass fires later but
        // drives hard).
        assert_ne!(worst.cause, best.cause);
    }

    #[test]
    fn best_equals_worst_on_single_path_circuits() {
        use crate::analyzer::{analyze_with_options, AnalysisMode, AnalyzerOptions};
        // A plain inverter has exactly one stage and one trigger: the two
        // modes must coincide.
        let net = inverter(Style::Cmos, Farads::from_femto(100.0));
        let inp = net.node_by_name("in").unwrap();
        let out = net.node_by_name("out").unwrap();
        let scenario = Scenario::step(inp, Edge::Rising);
        let worst = analyze(&net, &tech(), ModelKind::Slope, &scenario)
            .unwrap()
            .delay_to(&net, out)
            .unwrap()
            .time;
        let best = analyze_with_options(
            &net,
            &tech(),
            ModelKind::Slope,
            &scenario,
            AnalyzerOptions {
                mode: AnalysisMode::BestCase,
                ..AnalyzerOptions::default()
            },
        )
        .unwrap()
        .delay_to(&net, out)
        .unwrap()
        .time;
        assert_eq!(best, worst);
    }

    #[test]
    fn unlimited_budget_matches_plain_analyze() {
        let net = decoder2to4(Style::Cmos, Farads::from_femto(100.0)).unwrap();
        let a0 = net.node_by_name("a0").unwrap();
        let s = Scenario::step(a0, Edge::Rising);
        let plain = analyze(&net, &tech(), ModelKind::Slope, &s).unwrap();
        let budgeted = analyze_with_options(
            &net,
            &tech(),
            ModelKind::Slope,
            &s,
            AnalyzerOptions::default(),
        )
        .unwrap();
        assert_eq!(plain, budgeted);
    }

    #[test]
    fn stage_eval_cap_returns_nonempty_partial_prefix() {
        use crate::budget::{AnalysisBudget, BudgetExceeded};
        let net = decoder2to4(Style::Cmos, Farads::from_femto(100.0)).unwrap();
        let a0 = net.node_by_name("a0").unwrap();
        let s = Scenario::step(a0, Edge::Rising);
        let full = analyze(&net, &tech(), ModelKind::Slope, &s).unwrap();
        let options = AnalyzerOptions {
            budget: AnalysisBudget {
                max_stage_evals: Some(2),
                ..AnalysisBudget::default()
            },
            ..AnalyzerOptions::default()
        };
        let err = analyze_with_options(&net, &tech(), ModelKind::Slope, &s, options)
            .expect_err("a 2-eval cap cannot finish a decoder");
        let TimingError::BudgetExhausted { partial } = err else {
            panic!("expected BudgetExhausted, got {err:?}");
        };
        assert_eq!(partial.exceeded, BudgetExceeded::StageEvals { limit: 2 });
        // Non-empty: at least the input arrival is present…
        let partial_nodes: Vec<_> = partial.result.arrivals().map(|(n, _)| n).collect();
        assert!(!partial_nodes.is_empty());
        // …and every partial node also switches in the full result.
        for node in partial_nodes {
            assert!(
                full.arrival(node).is_some(),
                "partial arrival at {node:?} missing from the full result"
            );
        }
    }

    #[test]
    fn budget_trips_identically_with_cache_hits_serial_and_parallel() {
        use crate::budget::{AnalysisBudget, BudgetExceeded};
        use crate::memo::StageCache;
        // A warm cache turns stage evaluations into hits, but a hit must
        // charge the budget exactly like a computed evaluation (charges
        // are committed in node order before dispatch, upstream of the
        // cache probe): the budget trips at the same point and the
        // partial prefix is bit-identical across cache off/warm and any
        // thread count.
        let net = decoder2to4(Style::Cmos, Farads::from_femto(100.0)).unwrap();
        let a0 = net.node_by_name("a0").unwrap();
        let s = Scenario::step(a0, Edge::Rising);
        let warm = Arc::new(StageCache::new());
        analyze_with_options(
            &net,
            &tech(),
            ModelKind::Slope,
            &s,
            AnalyzerOptions {
                cache: Some(Arc::clone(&warm)),
                ..AnalyzerOptions::default()
            },
        )
        .unwrap();
        assert!(warm.stats().misses > 0, "warm-up populated the cache");

        let budget = AnalysisBudget {
            max_stage_evals: Some(3),
            ..AnalysisBudget::default()
        };
        let mut partials = Vec::new();
        for threads in [1, 4] {
            for cache in [None, Some(Arc::clone(&warm))] {
                let cached = cache.is_some();
                let options = AnalyzerOptions {
                    budget,
                    threads,
                    cache,
                    ..AnalyzerOptions::default()
                };
                let err = analyze_with_options(&net, &tech(), ModelKind::Slope, &s, options)
                    .expect_err("a 3-eval cap cannot finish a decoder");
                let TimingError::BudgetExhausted { partial } = err else {
                    panic!("expected BudgetExhausted, got {err:?}");
                };
                partials.push((threads, cached, partial));
            }
        }
        let (_, _, first) = &partials[0];
        assert_eq!(first.exceeded, BudgetExceeded::StageEvals { limit: 3 });
        for (threads, cached, partial) in &partials[1..] {
            let tag = format!("threads={threads} cached={cached}");
            assert_eq!(partial.exceeded, first.exceeded, "{tag}");
            assert_eq!(partial.rounds_completed, first.rounds_completed, "{tag}");
            assert_eq!(partial.result, first.result, "{tag}");
        }
    }

    #[test]
    fn paths_per_node_cap_fires_during_extraction() {
        use crate::budget::{AnalysisBudget, BudgetExceeded};
        let net = decoder2to4(Style::Cmos, Farads::from_femto(100.0)).unwrap();
        let a0 = net.node_by_name("a0").unwrap();
        let s = Scenario::step(a0, Edge::Rising);
        let options = AnalyzerOptions {
            budget: AnalysisBudget {
                max_paths_per_node: Some(0),
                ..AnalysisBudget::default()
            },
            ..AnalyzerOptions::default()
        };
        let err = analyze_with_options(&net, &tech(), ModelKind::Slope, &s, options)
            .expect_err("a zero-path cap fires on the first extracted node");
        let TimingError::BudgetExhausted { partial } = err else {
            panic!("expected BudgetExhausted, got {err:?}");
        };
        assert!(matches!(
            partial.exceeded,
            BudgetExceeded::PathsPerNode { limit: 0, .. }
        ));
        assert_eq!(partial.rounds_completed, 0);
        // The input arrival was seeded before extraction, so even this
        // earliest possible stop carries a non-empty partial.
        assert!(partial.result.arrival(a0).is_some());
    }

    #[test]
    fn expired_deadline_stops_immediately_with_partial() {
        use crate::budget::{AnalysisBudget, BudgetExceeded};
        use std::time::Duration;
        let net = decoder2to4(Style::Cmos, Farads::from_femto(100.0)).unwrap();
        let a0 = net.node_by_name("a0").unwrap();
        let s = Scenario::step(a0, Edge::Rising);
        let options = AnalyzerOptions {
            budget: AnalysisBudget {
                deadline: Some(Duration::ZERO),
                ..AnalysisBudget::default()
            },
            ..AnalyzerOptions::default()
        };
        let err = analyze_with_options(&net, &tech(), ModelKind::Slope, &s, options)
            .expect_err("an already-expired deadline must stop the analysis");
        let TimingError::BudgetExhausted { partial } = err else {
            panic!("expected BudgetExhausted, got {err:?}");
        };
        assert!(matches!(partial.exceeded, BudgetExceeded::Deadline { .. }));
        assert!(partial.result.arrival(a0).is_some());
    }

    /// A technology whose slope reff tables are all non-monotone, so every
    /// slope-model stage must degrade to rc-tree.
    fn broken_slope_tech() -> Technology {
        use crate::tech::{DriveParams, SlopeTable};
        use mosnet::units::Ohms;
        use mosnet::TransistorKind;
        let mut t = Technology::nominal();
        let broken = DriveParams {
            r_square: Ohms(20_000.0),
            reff: SlopeTable::new(vec![(0.0, 1.0), (1.0, 3.0), (2.0, 0.5)])
                .expect("non-monotone values pass construction"),
            tout: SlopeTable::constant(1.0),
        };
        for kind in [
            TransistorKind::NEnhancement,
            TransistorKind::PEnhancement,
            TransistorKind::Depletion,
        ] {
            for dir in [Direction::PullUp, Direction::PullDown] {
                t.set_drive(kind, dir, broken.clone());
            }
        }
        t
    }

    #[test]
    fn arrival_records_fallback_model() {
        let net = inverter(Style::Cmos, Farads::from_femto(100.0));
        let inp = net.node_by_name("in").unwrap();
        let out = net.node_by_name("out").unwrap();
        let s = Scenario::step(inp, Edge::Rising);
        // Healthy technology: the requested model is recorded.
        let healthy = analyze(&net, &tech(), ModelKind::Slope, &s).unwrap();
        assert_eq!(healthy.delay_to(&net, out).unwrap().model, ModelKind::Slope);
        // Broken slope tables: the stage degrades to rc-tree and says so.
        let degraded = analyze(&net, &broken_slope_tech(), ModelKind::Slope, &s).unwrap();
        let a = degraded.delay_to(&net, out).unwrap();
        assert_eq!(a.model, ModelKind::RcTree);
        assert!(a.time.value() > 0.0);
        // With fallback disabled the strict single-model path is used and
        // the (unvalidated) slope estimate is recorded as such.
        let strict = analyze_with_options(
            &net,
            &broken_slope_tech(),
            ModelKind::Slope,
            &s,
            AnalyzerOptions {
                model_fallback: false,
                ..AnalyzerOptions::default()
            },
        )
        .unwrap();
        assert_eq!(strict.delay_to(&net, out).unwrap().model, ModelKind::Slope);
    }

    #[test]
    fn results_are_deterministic() {
        let net = decoder2to4(Style::Cmos, Farads::from_femto(100.0)).unwrap();
        let a0 = net.node_by_name("a0").unwrap();
        let s = Scenario::step(a0, Edge::Rising);
        let r1 = analyze(&net, &tech(), ModelKind::Slope, &s).unwrap();
        let r2 = analyze(&net, &tech(), ModelKind::Slope, &s).unwrap();
        for (id, a) in r1.arrivals() {
            let b = r2.arrival(id).expect("same arrival set");
            assert_eq!(a, b);
        }
    }
}
