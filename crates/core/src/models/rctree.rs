//! The RC-tree model: Elmore first-moment delay with
//! Penfield–Rubinstein-style bounds.
//!
//! Fixes the lumped model's pessimism on distributed paths — capacitance
//! hanging near the driver only counts against the resistance it actually
//! shares with the target — but, like the lumped model, ignores the input
//! waveform.

use crate::models::{lumped::TRANSITION_PER_DELAY, StageDelay};
use crate::stage::Stage;

/// Evaluates the RC-tree model on a stage. The delay estimate is the
/// Elmore delay `T_P`; `bounds` carries the 50%-point lower/upper bounds.
pub fn estimate(stage: &Stage) -> StageDelay {
    let delay = stage.tree.elmore(stage.target_index);
    let bounds = stage.tree.delay_bounds(stage.target_index, 0.5);
    StageDelay {
        delay,
        output_transition: delay * TRANSITION_PER_DELAY,
        bounds: Some(bounds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rctree::uniform_ladder;
    use crate::tech::Direction;
    use mosnet::units::{Farads, Ohms};
    use mosnet::NodeId;

    fn ladder_stage(n: usize) -> Stage {
        let (tree, target_index) = uniform_ladder(n, Ohms(1000.0), Farads(1e-13), Farads(1e-13));
        Stage {
            target: NodeId::from_index(0),
            direction: Direction::PullDown,
            tree,
            target_index,
            path: Vec::new(),
            path_gates: Vec::new(),
        }
    }

    #[test]
    fn elmore_beats_lumped_on_chains() {
        for n in 2..=8 {
            let stage = ladder_stage(n);
            let rc = estimate(&stage).delay.value();
            let lumped = crate::models::lumped::estimate(&stage).delay.value();
            assert!(rc < lumped, "n={n}: elmore {rc} vs lumped {lumped}");
        }
    }

    #[test]
    fn chain_elmore_is_n_n_plus_one_over_two() {
        // Uniform ladder Elmore: Σ_{k=1..n} kRC = n(n+1)/2 · RC.
        let rc = 1000.0 * 1e-13;
        for n in 1..=6 {
            let d = estimate(&ladder_stage(n)).delay.value();
            let expect = (n * (n + 1)) as f64 / 2.0 * rc;
            assert!((d - expect).abs() < 1e-18, "n={n}");
        }
    }

    #[test]
    fn bounds_bracket_and_are_reported() {
        let stage = ladder_stage(4);
        let d = estimate(&stage);
        let (lo, hi) = d.bounds.expect("bounds reported");
        assert!(lo <= hi);
        assert!(d.delay >= lo);
    }
}
