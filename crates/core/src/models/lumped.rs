//! The lumped RC model: the simplest delay estimate the paper starts from.
//!
//! Every transistor on the stage path contributes its full static
//! effective resistance, every capacitance in the stage (path *and* side
//! branches) counts against that total resistance:
//!
//! ```text
//! delay = (Σ R_path) × (Σ C_all)
//! ```
//!
//! Cheap and direction-correct, but pessimistic on distributed chains
//! (roughly 2× for long pass chains) and blind to input slope.

use crate::models::StageDelay;
use crate::stage::Stage;

/// Conventional ratio of a 10–90% transition to the 50% delay for a
/// single-pole response (`ln(9)/ln(2)`), used to synthesize an output
/// transition estimate for models that do not track slopes.
pub(crate) const TRANSITION_PER_DELAY: f64 = 3.17;

/// Evaluates the lumped RC model on a stage.
pub fn estimate(stage: &Stage) -> StageDelay {
    let (r, c) = stage.tree.lumped(stage.target_index);
    let delay = r * c;
    StageDelay {
        delay,
        output_transition: delay * TRANSITION_PER_DELAY,
        bounds: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rctree::uniform_ladder;
    use crate::tech::Direction;
    use mosnet::units::{Farads, Ohms};
    use mosnet::NodeId;

    fn ladder_stage(n: usize) -> Stage {
        let (tree, target_index) = uniform_ladder(n, Ohms(1000.0), Farads(1e-13), Farads(1e-13));
        Stage {
            target: NodeId::from_index(0),
            direction: Direction::PullDown,
            tree,
            target_index,
            path: Vec::new(),
            path_gates: Vec::new(),
        }
    }

    #[test]
    fn single_segment_is_rc() {
        let d = estimate(&ladder_stage(1));
        assert!((d.delay.value() - 1e-10).abs() < 1e-22);
        assert!(d.bounds.is_none());
    }

    #[test]
    fn grows_quadratically_with_chain_length() {
        let d2 = estimate(&ladder_stage(2)).delay.value();
        let d4 = estimate(&ladder_stage(4)).delay.value();
        // R and C both double: delay quadruples.
        assert!((d4 / d2 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn transition_scales_with_delay() {
        let d = estimate(&ladder_stage(3));
        assert!(
            (d.output_transition.value() / d.delay.value() - TRANSITION_PER_DELAY).abs() < 1e-12
        );
    }
}
