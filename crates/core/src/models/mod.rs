//! The three switch-level delay models the paper compares.
//!
//! | Model | Delay | Input slope | Distributed RC |
//! |-------|-------|-------------|----------------|
//! | [`lumped`] | `R_path · C_total` | ignored | ignored (pessimistic) |
//! | [`rctree`] | Elmore `T_P` + Penfield–Rubinstein bounds | ignored | yes |
//! | [`slope`]  | `m(r) · T_P`, `r` = slope ratio | **yes** | yes |
//!
//! All three consume the same extracted [`Stage`], so
//! differences in their predictions come purely from the model, exactly as
//! in the paper's comparison.

pub mod lumped;
pub mod rctree;
pub mod slope;

use crate::stage::Stage;
use crate::tech::Technology;
use mosnet::units::Seconds;
use mosnet::TransistorKind;
use std::fmt;

/// Which delay model to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Lumped RC: total path resistance × total capacitance.
    Lumped,
    /// RC-tree: Elmore first moment with Penfield–Rubinstein bounds.
    RcTree,
    /// The paper's slope model: RC-tree drive modulated by the ratio of
    /// input transition time to intrinsic stage delay.
    Slope,
}

impl ModelKind {
    /// All models, in comparison order.
    pub const ALL: [ModelKind; 3] = [ModelKind::Lumped, ModelKind::RcTree, ModelKind::Slope];

    /// The next model down the graceful-degradation chain:
    /// slope → rc-tree → lumped → (none). Each step drops a modeling
    /// refinement but keeps the analysis alive.
    pub fn fallback(self) -> Option<ModelKind> {
        match self {
            ModelKind::Slope => Some(ModelKind::RcTree),
            ModelKind::RcTree => Some(ModelKind::Lumped),
            ModelKind::Lumped => None,
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ModelKind::Lumped => "lumped",
            ModelKind::RcTree => "rc-tree",
            ModelKind::Slope => "slope",
        })
    }
}

/// A stage delay estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageDelay {
    /// Estimated 50% delay of the stage, measured from its trigger.
    pub delay: Seconds,
    /// Estimated 10–90% transition time of the target node (propagated to
    /// downstream stages by the slope model).
    pub output_transition: Seconds,
    /// Lower/upper 50% bounds where the model provides them (RC-tree).
    pub bounds: Option<(Seconds, Seconds)>,
}

/// Everything a model may consult about the triggering transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TriggerContext {
    /// 10–90% transition time of the triggering input.
    pub input_transition: Seconds,
    /// Device kind of the trigger transistor (selects the slope table).
    pub trigger_kind: TransistorKind,
}

impl TriggerContext {
    /// A step input through an n-enhancement trigger — the default when no
    /// context is known.
    pub fn step() -> TriggerContext {
        TriggerContext {
            input_transition: Seconds::ZERO,
            trigger_kind: TransistorKind::NEnhancement,
        }
    }
}

/// Evaluates `stage` under the chosen model.
pub fn estimate(
    model: ModelKind,
    tech: &Technology,
    stage: &Stage,
    ctx: TriggerContext,
) -> StageDelay {
    match model {
        ModelKind::Lumped => lumped::estimate(stage),
        ModelKind::RcTree => rctree::estimate(stage),
        ModelKind::Slope => slope::estimate(tech, stage, ctx),
    }
}

/// Why a model could not produce a usable estimate for a stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelFailure {
    /// The model that failed.
    pub model: ModelKind,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ModelFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} model failed: {}", self.model, self.reason)
    }
}

/// Evaluates `stage` under `model`, validating that the result is
/// physically usable.
///
/// # Errors
/// Returns [`ModelFailure`] when the model produces a non-finite or
/// negative delay/transition, or (slope model only) when the calibrated
/// effective-resistance table for the trigger is non-monotone — the
/// model's core assumption that slower inputs mean weaker drive no
/// longer holds, so its numbers cannot be trusted.
pub fn try_estimate(
    model: ModelKind,
    tech: &Technology,
    stage: &Stage,
    ctx: TriggerContext,
) -> Result<StageDelay, ModelFailure> {
    if model == ModelKind::Slope {
        let drive = tech.drive(ctx.trigger_kind, stage.direction);
        if !drive.reff.is_monotone_nondecreasing() {
            return Err(ModelFailure {
                model,
                reason: format!(
                    "effective-resistance table for {:?}/{:?} is not monotone",
                    ctx.trigger_kind, stage.direction
                ),
            });
        }
    }
    let d = estimate(model, tech, stage, ctx);
    let bad = |what: &str, v: Seconds| ModelFailure {
        model,
        reason: format!("{what} is {} s (non-finite or negative)", v.value()),
    };
    if !d.delay.value().is_finite() || d.delay.value() < 0.0 {
        return Err(bad("delay", d.delay));
    }
    if !d.output_transition.value().is_finite() || d.output_transition.value() < 0.0 {
        return Err(bad("output transition", d.output_transition));
    }
    Ok(d)
}

/// Evaluates `stage` under `model`, degrading down the fallback chain
/// (slope → rc-tree → lumped) when a higher-fidelity model fails.
/// Returns the estimate together with the model that actually produced
/// it, so callers can record the degradation.
///
/// # Errors
/// Returns the *last* [`ModelFailure`] when even the lumped model cannot
/// produce a usable number.
pub fn estimate_with_fallback(
    model: ModelKind,
    tech: &Technology,
    stage: &Stage,
    ctx: TriggerContext,
) -> Result<(StageDelay, ModelKind), ModelFailure> {
    let mut at = model;
    loop {
        match try_estimate(at, tech, stage, ctx) {
            Ok(d) => return Ok((d, at)),
            Err(failure) => match at.fallback() {
                Some(next) => at = next,
                None => return Err(failure),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::stages_to;
    use crate::tech::Direction;
    use mosnet::generators::{inverter, pass_chain, Style};
    use mosnet::units::Farads;
    use mosnet::TransistorId;

    const ALL_ON: fn(TransistorId) -> bool = |_| true;

    fn inverter_stage() -> Stage {
        let net = inverter(Style::Cmos, Farads::from_femto(100.0));
        let tech = Technology::nominal();
        let out = net.node_by_name("out").unwrap();
        stages_to(&net, &tech, &ALL_ON, out, Direction::PullDown)
            .pop()
            .expect("inverter has a pull-down stage")
    }

    #[test]
    fn models_agree_on_single_stage_with_step_input() {
        // With one lumped segment, lumped R·C equals Elmore, and the slope
        // model at ratio 0 multiplies by reff(0) = 1.
        let tech = Technology::nominal();
        let stage = inverter_stage();
        let l = estimate(ModelKind::Lumped, &tech, &stage, TriggerContext::step());
        let r = estimate(ModelKind::RcTree, &tech, &stage, TriggerContext::step());
        let s = estimate(ModelKind::Slope, &tech, &stage, TriggerContext::step());
        assert!((l.delay.value() - r.delay.value()).abs() < 1e-15);
        assert!((r.delay.value() - s.delay.value()).abs() < 1e-15);
    }

    #[test]
    fn model_divergence_on_pass_chains() {
        // Lumped > Elmore on a distributed chain (the paper's headline
        // observation for Table 3).
        let net = pass_chain(
            Style::Cmos,
            6,
            Farads::from_femto(50.0),
            Farads::from_femto(100.0),
        )
        .unwrap();
        let tech = Technology::nominal();
        let out = net.node_by_name("out").unwrap();
        let stage = stages_to(&net, &tech, &ALL_ON, out, Direction::PullUp)
            .pop()
            .unwrap();
        let l = estimate(ModelKind::Lumped, &tech, &stage, TriggerContext::step());
        let r = estimate(ModelKind::RcTree, &tech, &stage, TriggerContext::step());
        assert!(
            l.delay.value() > 1.4 * r.delay.value(),
            "lumped {} vs rc-tree {}",
            l.delay.nanos(),
            r.delay.nanos()
        );
    }

    #[test]
    fn slope_model_grows_with_input_transition() {
        let tech = Technology::nominal();
        let stage = inverter_stage();
        let fast = estimate(ModelKind::Slope, &tech, &stage, TriggerContext::step());
        let slow_ctx = TriggerContext {
            input_transition: Seconds::from_nanos(50.0),
            trigger_kind: TransistorKind::NEnhancement,
        };
        let slow = estimate(ModelKind::Slope, &tech, &stage, slow_ctx);
        assert!(slow.delay > fast.delay);
        assert!(slow.output_transition > fast.output_transition);
    }

    #[test]
    fn lumped_and_rctree_ignore_input_transition() {
        let tech = Technology::nominal();
        let stage = inverter_stage();
        let slow_ctx = TriggerContext {
            input_transition: Seconds::from_nanos(50.0),
            trigger_kind: TransistorKind::NEnhancement,
        };
        for model in [ModelKind::Lumped, ModelKind::RcTree] {
            let a = estimate(model, &tech, &stage, TriggerContext::step());
            let b = estimate(model, &tech, &stage, slow_ctx);
            assert_eq!(a.delay, b.delay, "{model} must ignore input slope");
        }
    }

    #[test]
    fn rctree_provides_bounds_that_bracket_its_estimate() {
        let tech = Technology::nominal();
        let stage = inverter_stage();
        let r = estimate(ModelKind::RcTree, &tech, &stage, TriggerContext::step());
        let (lo, hi) = r.bounds.expect("rc-tree model reports bounds");
        assert!(lo <= hi);
        // The Elmore estimate is well-known to exceed the true 50% point;
        // it must lie at or above the lower bound.
        assert!(r.delay >= lo);
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelKind::Lumped.to_string(), "lumped");
        assert_eq!(ModelKind::RcTree.to_string(), "rc-tree");
        assert_eq!(ModelKind::Slope.to_string(), "slope");
    }

    #[test]
    fn fallback_chain_descends_to_lumped() {
        assert_eq!(ModelKind::Slope.fallback(), Some(ModelKind::RcTree));
        assert_eq!(ModelKind::RcTree.fallback(), Some(ModelKind::Lumped));
        assert_eq!(ModelKind::Lumped.fallback(), None);
    }

    /// A technology whose slope reff table is non-monotone: physically
    /// impossible (slower input would mean *stronger* drive), so the
    /// slope model must refuse it.
    fn broken_slope_tech() -> Technology {
        use crate::tech::{Direction, DriveParams, SlopeTable};
        use mosnet::units::Ohms;
        let mut tech = Technology::nominal();
        let broken = DriveParams {
            r_square: Ohms(20_000.0),
            reff: SlopeTable::new(vec![(0.0, 1.0), (1.0, 3.0), (2.0, 0.5)])
                .expect("non-monotone values pass construction"),
            tout: SlopeTable::constant(1.0),
        };
        for kind in [
            TransistorKind::NEnhancement,
            TransistorKind::PEnhancement,
            TransistorKind::Depletion,
        ] {
            for dir in [Direction::PullUp, Direction::PullDown] {
                tech.set_drive(kind, dir, broken.clone());
            }
        }
        tech
    }

    #[test]
    fn try_estimate_rejects_non_monotone_slope_table() {
        let tech = broken_slope_tech();
        let stage = inverter_stage();
        let err = try_estimate(ModelKind::Slope, &tech, &stage, TriggerContext::step())
            .expect_err("non-monotone table must fail");
        assert_eq!(err.model, ModelKind::Slope);
        assert!(err.to_string().contains("monotone"), "{err}");
        // The healthy nominal technology passes.
        let ok = try_estimate(
            ModelKind::Slope,
            &Technology::nominal(),
            &stage,
            TriggerContext::step(),
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn fallback_degrades_slope_to_rctree() {
        let tech = broken_slope_tech();
        let stage = inverter_stage();
        let (d, used) =
            estimate_with_fallback(ModelKind::Slope, &tech, &stage, TriggerContext::step())
                .expect("rc-tree rescues the stage");
        assert_eq!(used, ModelKind::RcTree);
        let reference = estimate(ModelKind::RcTree, &tech, &stage, TriggerContext::step());
        assert_eq!(d.delay, reference.delay);
    }

    #[test]
    fn fallback_keeps_requested_model_when_healthy() {
        let tech = Technology::nominal();
        let stage = inverter_stage();
        for model in ModelKind::ALL {
            let (_, used) =
                estimate_with_fallback(model, &tech, &stage, TriggerContext::step()).unwrap();
            assert_eq!(used, model);
        }
    }
}
