//! The slope model — the paper's primary contribution.
//!
//! The weakness shared by the lumped and RC-tree models is that a MOS
//! transistor is not a fixed resistor: while its gate input is still
//! ramping, the device is only partially on, so a *slow input makes a weak
//! driver*. The slope model captures this with one empirical scalar: the
//! **slope ratio**
//!
//! ```text
//! r = t_input / T_P
//! ```
//!
//! the input's 10–90% transition time over the stage's intrinsic (Elmore)
//! drive time. Two fitted tables per (device kind, direction) — calibrated
//! against the reference simulator by the `calibrate` crate — then give
//!
//! * `delay = reff(r) · T_P` — the effective-resistance multiplier, and
//! * `t_out = tout(r) · T_P` — the output transition time,
//!
//! and `t_out` propagates to downstream stages, making the whole analysis
//! slope-aware at switch-level cost.

use crate::models::{StageDelay, TriggerContext};
use crate::stage::Stage;
use crate::tech::Technology;
use mosnet::units::Seconds;

/// Evaluates the slope model on a stage.
///
/// A zero-capacitance (degenerate) stage yields zero delay with a zero
/// output transition.
pub fn estimate(tech: &Technology, stage: &Stage, ctx: TriggerContext) -> StageDelay {
    let t_p = stage.tree.elmore(stage.target_index);
    if t_p.value() <= 0.0 {
        return StageDelay {
            delay: Seconds::ZERO,
            output_transition: Seconds::ZERO,
            bounds: None,
        };
    }
    let ratio = (ctx.input_transition / t_p).max(0.0);
    let drive = tech.drive(ctx.trigger_kind, stage.direction);
    let delay = t_p * drive.reff.eval(ratio);
    let output_transition = t_p * drive.tout.eval(ratio);
    StageDelay {
        delay,
        output_transition,
        bounds: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rctree::{uniform_ladder, RcTree};
    use crate::tech::Direction;
    use mosnet::units::{Farads, Ohms};
    use mosnet::{NodeId, TransistorKind};

    fn stage(direction: Direction) -> Stage {
        let (tree, target_index) = uniform_ladder(1, Ohms(10_000.0), Farads(1e-13), Farads(1e-13));
        Stage {
            target: NodeId::from_index(0),
            direction,
            tree,
            target_index,
            path: Vec::new(),
            path_gates: Vec::new(),
        }
    }

    #[test]
    fn step_input_reduces_to_elmore() {
        let tech = Technology::nominal();
        let s = stage(Direction::PullDown);
        let d = estimate(&tech, &s, TriggerContext::step());
        let t_p = s.tree.elmore(s.target_index);
        assert!((d.delay.value() - t_p.value()).abs() < 1e-18);
    }

    #[test]
    fn delay_is_monotone_in_input_transition() {
        let tech = Technology::nominal();
        let s = stage(Direction::PullDown);
        let mut last = Seconds::ZERO;
        for t_in_ns in [0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0] {
            let ctx = TriggerContext {
                input_transition: Seconds::from_nanos(t_in_ns),
                trigger_kind: TransistorKind::NEnhancement,
            };
            let d = estimate(&tech, &s, ctx).delay;
            assert!(d >= last, "monotonicity violated at {t_in_ns} ns");
            last = d;
        }
    }

    #[test]
    fn multiplier_saturates_beyond_table_range() {
        let tech = Technology::nominal();
        let s = stage(Direction::PullDown);
        let huge = TriggerContext {
            input_transition: Seconds::from_nanos(1e6),
            trigger_kind: TransistorKind::NEnhancement,
        };
        let astronomically_huge = TriggerContext {
            input_transition: Seconds::from_nanos(1e9),
            trigger_kind: TransistorKind::NEnhancement,
        };
        let a = estimate(&tech, &s, huge).delay;
        let b = estimate(&tech, &s, astronomically_huge).delay;
        assert_eq!(a, b, "table must clamp at its last breakpoint");
    }

    #[test]
    fn direction_selects_different_tables() {
        let mut tech = Technology::nominal();
        // Make pull-up tables distinctive.
        let up = crate::tech::DriveParams {
            r_square: Ohms(1.0),
            reff: crate::tech::SlopeTable::constant(7.0),
            tout: crate::tech::SlopeTable::constant(1.0),
        };
        tech.set_drive(TransistorKind::NEnhancement, Direction::PullUp, up);
        let s_up = stage(Direction::PullUp);
        let s_down = stage(Direction::PullDown);
        let d_up = estimate(&tech, &s_up, TriggerContext::step()).delay;
        let d_down = estimate(&tech, &s_down, TriggerContext::step()).delay;
        assert!((d_up.value() / d_down.value() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_stage_is_zero() {
        let tech = Technology::nominal();
        let s = Stage {
            target: NodeId::from_index(0),
            direction: Direction::PullDown,
            tree: RcTree::new(),
            target_index: 0,
            path: Vec::new(),
            path_gates: Vec::new(),
        };
        let d = estimate(&tech, &s, TriggerContext::step());
        assert_eq!(d.delay, Seconds::ZERO);
    }
}
