//! Durable (crash-safe) batch execution: journaled checkpoint/resume,
//! per-scenario watchdogs, a bounded retry ladder, and poison quarantine.
//!
//! [`crate::batch`] makes a batch *fail-soft* — one panicking scenario
//! cannot take down its siblings. This module makes it *durable*:
//!
//! * every scenario outcome is appended to a JSON-lines **journal** with
//!   an fsync'd write, so a `SIGKILL`ed run loses at most the in-flight
//!   scenarios ([`Journal`]);
//! * a resumed run ([`DurableOptions::resume`]) recovers the journal —
//!   including a **torn tail** left by a crash mid-append — and replays
//!   completed scenarios bit-identically instead of re-running them;
//! * a **watchdog** thread enforces a per-scenario wall-clock deadline
//!   by firing the scenario's [`CancelToken`], which the analyzer polls
//!   at its budget checkpoints — a wedged scenario becomes a `timed_out`
//!   record instead of a stalled worker;
//! * retryable failures (panics, timeouts) climb a bounded **retry
//!   ladder** with exponential backoff — retries run under relaxed
//!   options (no memo cache), mirroring the calibration runner's
//!   relaxation retry — and are **quarantined** as `poisoned` records
//!   when the ladder is exhausted, so reruns skip and report them;
//! * a [`ShutdownFlag`] (wired to `SIGINT`/`SIGTERM` by
//!   [`install_signal_handlers`]) triggers a **graceful drain**: no new
//!   scenario starts, in-flight scenarios finish and are journaled, and
//!   the run reports itself interrupted.
//!
//! Determinism contract: a run killed at any point and resumed produces
//! the same set of `(label, outcome, digest, summary)` records as an
//! uninterrupted run, at any thread count. The journal header pins a
//! [`run_fingerprint`] over the netlist, technology, model, and the
//! result-affecting analyzer options (thread count, cache, and tracing
//! are excluded — they never change arrivals), so a resume against
//! different inputs is rejected instead of silently mixing results.

use crate::analyzer::{analyze_with_options, AnalyzerOptions, Scenario, TimingResult};
use crate::batch::panic_message;
use crate::budget::CancelToken;
use crate::error::TimingError;
use crate::models::ModelKind;
use crate::obs::{Phase, TraceSink};
use crate::pool::ThreadPool;
use crate::tech::Technology;
use mosnet::Network;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Journal format version written into the run header.
pub const JOURNAL_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------------

/// Set by the process signal handler; merged into every [`ShutdownFlag`].
static GLOBAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// A graceful-shutdown request flag.
///
/// Cloning shares the same flag. [`ShutdownFlag::is_requested`] also
/// observes the process-global signal flag set by
/// [`install_signal_handlers`], so one durable run reacts both to an
/// in-process [`ShutdownFlag::request`] (tests, embedding) and to a
/// `SIGINT`/`SIGTERM` delivered to the process.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag {
    local: Arc<AtomicBool>,
}

impl ShutdownFlag {
    /// A fresh flag with no shutdown requested.
    pub fn new() -> ShutdownFlag {
        ShutdownFlag::default()
    }

    /// Requests a graceful drain: stop dispatching, finish in-flight work.
    pub fn request(&self) {
        self.local.store(true, Ordering::SeqCst);
    }

    /// `true` once [`ShutdownFlag::request`] was called on any clone or a
    /// handled shutdown signal arrived.
    pub fn is_requested(&self) -> bool {
        self.local.load(Ordering::SeqCst) || GLOBAL_SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// Installs `SIGINT`/`SIGTERM` handlers that set the process-global
/// shutdown flag observed by every [`ShutdownFlag`]. Safe to call more
/// than once. On non-Unix platforms this is a no-op (the in-process
/// [`ShutdownFlag::request`] path still works everywhere).
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn handle(_signum: i32) {
        // Only async-signal-safe work here: one atomic store.
        GLOBAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        let handler = handle as extern "C" fn(i32) as *const () as usize;
        let _ = signal(SIGINT, handler);
        let _ = signal(SIGTERM, handler);
    }
}

/// Non-Unix stub; see the Unix version.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

// ---------------------------------------------------------------------------
// Taxonomy and records
// ---------------------------------------------------------------------------

/// Failure taxonomy recorded in the journal and used to decide retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FailureKind {
    /// The scenario panicked (caught on the worker). Retryable.
    Panic,
    /// The watchdog (or shutdown) cancelled the scenario past its
    /// wall-clock deadline. Retryable.
    Timeout,
    /// A configured [`AnalysisBudget`](crate::budget::AnalysisBudget) cap
    /// fired. Deterministic — never retried.
    Budget,
    /// Any other analysis error (unknown node, no fixpoint, ...).
    /// Deterministic — never retried.
    Analysis,
}

impl FailureKind {
    /// Stable lowercase name used in journal records.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::Budget => "budget",
            FailureKind::Analysis => "analysis",
        }
    }

    fn from_name(name: &str) -> Option<FailureKind> {
        Some(match name {
            "panic" => FailureKind::Panic,
            "timeout" => FailureKind::Timeout,
            "budget" => FailureKind::Budget,
            "analysis" => FailureKind::Analysis,
            _ => return None,
        })
    }

    /// `true` when the retry ladder applies: panics and timeouts are
    /// environmental, everything else is deterministic and retrying it
    /// would only reproduce the same failure slower.
    pub fn is_retryable(self) -> bool {
        matches!(self, FailureKind::Panic | FailureKind::Timeout)
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Final disposition of one scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Outcome {
    /// Analysis succeeded; the record carries the arrival digest.
    Ok,
    /// A deterministic analysis error (budget, unknown node, ...).
    Error,
    /// Timed out with retries disabled (`max_retries = 0`); kept
    /// distinct from [`Outcome::Poisoned`] so the exit code can tell a
    /// plain timeout from an exhausted quarantine.
    TimedOut,
    /// Quarantined: a retryable failure survived the whole retry ladder.
    /// Resumed runs skip and report poisoned scenarios.
    Poisoned,
    /// Never started: a shutdown request arrived first. Not journaled —
    /// a later resume runs the scenario for real.
    Skipped,
}

impl Outcome {
    /// Stable lowercase name used in journal records.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Error => "error",
            Outcome::TimedOut => "timed_out",
            Outcome::Poisoned => "poisoned",
            Outcome::Skipped => "skipped",
        }
    }

    fn from_name(name: &str) -> Option<Outcome> {
        Some(match name {
            "ok" => Outcome::Ok,
            "error" => Outcome::Error,
            "timed_out" => Outcome::TimedOut,
            "poisoned" => Outcome::Poisoned,
            "skipped" => Outcome::Skipped,
            _ => return None,
        })
    }
}

/// One journaled (or skipped) scenario outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRecord {
    /// The scenario label (journal key for resume).
    pub label: String,
    /// Final disposition.
    pub outcome: Outcome,
    /// Failure taxonomy for non-`Ok` outcomes.
    pub taxonomy: Option<FailureKind>,
    /// FNV-1a digest over the result's arrival bit patterns (`Ok` only);
    /// the resume-equivalence self-check recomputes and compares it.
    pub digest: Option<u64>,
    /// Human-readable outcome, exactly as the CLI prints it after
    /// `"{label}: "` — stored so a resume replays bit-identical output.
    pub summary: String,
    /// Attempts made (1 = first try succeeded or failed undeterred).
    pub attempts: u32,
    /// Wall-clock time spent on this scenario, all attempts included.
    pub wall_ms: u64,
    /// `true` when this record was replayed from the journal rather than
    /// computed in this run. Not serialized.
    pub resumed: bool,
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Failures of the durable layer itself (never of a scenario).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DurableError {
    /// Journal file I/O failed.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying error text.
        message: String,
    },
    /// A non-tail journal line failed to parse. (A broken *final* line is
    /// torn-tail damage and recovered silently; damage anywhere else
    /// means the file is not trustworthy.)
    CorruptJournal {
        /// The journal path.
        path: PathBuf,
        /// 1-based line number of the first bad line.
        line: usize,
    },
    /// The journal was written by a run over different inputs (netlist,
    /// technology, model, or result-affecting options).
    FingerprintMismatch {
        /// The journal path.
        path: PathBuf,
        /// Fingerprint in the journal header.
        found: u64,
        /// Fingerprint of the current inputs.
        expected: u64,
        /// Which input(s) changed, when both the journal header and the
        /// current run carry component fingerprints. Empty when the
        /// source cannot be attributed (legacy header or opaque
        /// fingerprint).
        sources: Vec<MismatchSource>,
    },
}

/// Which input a [`DurableError::FingerprintMismatch`] traces back to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MismatchSource {
    /// The netlist content changed (e.g. the `.sim` file was edited on
    /// disk after the journal was written).
    Netlist,
    /// The technology description changed.
    Technology,
    /// The delay model or a result-affecting analyzer option changed.
    Options,
}

impl MismatchSource {
    /// Human-readable name of the changed input.
    pub fn describe(self) -> &'static str {
        match self {
            MismatchSource::Netlist => "netlist",
            MismatchSource::Technology => "technology",
            MismatchSource::Options => "model/options",
        }
    }
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io { path, message } => {
                write!(f, "journal `{}`: {message}", path.display())
            }
            DurableError::CorruptJournal { path, line } => write!(
                f,
                "journal `{}` is corrupt at line {line} (not a torn tail; \
                 delete the file or run without --resume to start over)",
                path.display()
            ),
            DurableError::FingerprintMismatch {
                path,
                found,
                expected,
                sources,
            } => {
                write!(
                    f,
                    "journal `{}` belongs to a different run \
                     (fingerprint {found:016x}, current inputs {expected:016x})",
                    path.display()
                )?;
                if !sources.is_empty() {
                    let names: Vec<&str> = sources.iter().map(|s| s.describe()).collect();
                    write!(
                        f,
                        "; the {} changed since the journal was written",
                        names.join(" and ")
                    )?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for DurableError {}

// ---------------------------------------------------------------------------
// Fingerprints and digests (shared helpers live in `crate::fingerprint`)
// ---------------------------------------------------------------------------

// Re-exported under their historical `durable::` paths: the fingerprint
// code is shared with server sessions now and lives in one place.
pub use crate::fingerprint::{
    result_digest, run_fingerprint, run_fingerprint_parts, RunFingerprint,
};

use crate::fingerprint::{escape_json_into as escape_json, parse_json_object};

/// The CLI's per-scenario success line suffix (after `"{label}: "`),
/// shared by the fresh path, the journal, and the server's report op so
/// replays are bit-identical.
pub fn scenario_summary(net: &Network, result: &TimingResult) -> String {
    match result.max_arrival() {
        Some((node, arrival)) => format!(
            "ok, latest `{}` at {:.4} ns",
            net.node(node).name(),
            arrival.time.nanos()
        ),
        None => "ok, nothing switches".to_string(),
    }
}

// ---------------------------------------------------------------------------
// Fault injection & atomic replacement
// ---------------------------------------------------------------------------

/// A disk-fault injection plan threaded through journal I/O.
///
/// Cloned handles share one countdown, so a plan armed once covers the
/// whole daemon. `fail_writes_after(n)` lets the next `n` journal
/// writes succeed, then fails subsequent ones (likewise
/// `fail_syncs_after(n)` for fsync); `fail_count(m)` bounds how many
/// injected failures fire in total (default: unlimited), which lets a
/// drill degrade exactly one session while its siblings keep
/// journaling. The default plan never fires and costs one relaxed
/// atomic load per check, so production paths run it unconditionally —
/// fault drills exercise the *exact* production code, not a test
/// double.
#[derive(Clone, Debug, Default)]
pub struct JournalFaultPlan {
    inner: Arc<FaultInner>,
}

#[derive(Debug)]
struct FaultInner {
    writes_before_failure: AtomicI64,
    syncs_before_failure: AtomicI64,
    failures_remaining: AtomicI64,
}

impl Default for FaultInner {
    fn default() -> FaultInner {
        FaultInner {
            writes_before_failure: AtomicI64::new(i64::MAX),
            syncs_before_failure: AtomicI64::new(i64::MAX),
            failures_remaining: AtomicI64::new(i64::MAX),
        }
    }
}

impl JournalFaultPlan {
    /// A plan that never injects a fault.
    pub fn none() -> JournalFaultPlan {
        JournalFaultPlan::default()
    }

    /// Arms the plan: the next `n` checked writes succeed, later ones
    /// fail (until the [`JournalFaultPlan::fail_count`] budget runs dry).
    pub fn fail_writes_after(self, n: u64) -> JournalFaultPlan {
        self.inner
            .writes_before_failure
            .store(n.min(i64::MAX as u64) as i64, Ordering::Relaxed);
        self
    }

    /// Arms the plan: the next `n` checked fsyncs succeed, later ones fail.
    pub fn fail_syncs_after(self, n: u64) -> JournalFaultPlan {
        self.inner
            .syncs_before_failure
            .store(n.min(i64::MAX as u64) as i64, Ordering::Relaxed);
        self
    }

    /// Caps the total number of injected failures (write and sync
    /// combined); after `m` faults the plan goes quiet and I/O heals.
    pub fn fail_count(self, m: u64) -> JournalFaultPlan {
        self.inner
            .failures_remaining
            .store(m.min(i64::MAX as u64) as i64, Ordering::Relaxed);
        self
    }

    /// `true` when any fault is armed (used to skip the hint in docs/UI,
    /// never to skip the checks themselves).
    pub fn is_armed(&self) -> bool {
        self.inner.writes_before_failure.load(Ordering::Relaxed) != i64::MAX
            || self.inner.syncs_before_failure.load(Ordering::Relaxed) != i64::MAX
    }

    fn check(&self, budget: &AtomicI64, what: &str, path: &Path) -> std::io::Result<()> {
        if budget.load(Ordering::Relaxed) == i64::MAX {
            return Ok(());
        }
        if budget.fetch_sub(1, Ordering::Relaxed) > 0 {
            return Ok(());
        }
        // The per-operation budget is exhausted; spend one failure from
        // the total cap (if it has one).
        let remaining = &self.inner.failures_remaining;
        if remaining.load(Ordering::Relaxed) != i64::MAX
            && remaining.fetch_sub(1, Ordering::Relaxed) <= 0
        {
            return Ok(());
        }
        Err(std::io::Error::other(format!(
            "injected {what} fault on `{}`",
            path.display()
        )))
    }

    /// Point of injection for a journal write. Call before `write_all`.
    pub fn check_write(&self, path: &Path) -> std::io::Result<()> {
        self.check(&self.inner.writes_before_failure, "write", path)
    }

    /// Point of injection for a journal fsync. Call before `sync_data`.
    pub fn check_sync(&self, path: &Path) -> std::io::Result<()> {
        self.check(&self.inner.syncs_before_failure, "fsync", path)
    }
}

/// Atomically replaces `path` with `bytes`: write `{path}.tmp`, fsync
/// the file, rename over `path`, fsync the directory. A crash at any
/// byte leaves either the old file or the new one — never a mix — which
/// is the invariant journal compaction rests on. The fault plan is
/// checked at the write and fsync points so disk-fault drills cover
/// this path too.
pub fn atomic_replace(path: &Path, bytes: &[u8], faults: &JournalFaultPlan) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    faults.check_write(&tmp)?;
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    faults.check_sync(&tmp)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        if let Ok(dir) = File::open(dir) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// An append-only JSON-lines outcome log with fsync'd writes.
///
/// Line 1 is a run header pinning the format version and the
/// [`run_fingerprint`]; every further line is one scenario record. On
/// resume, a torn final line (crash mid-append) is dropped and the file
/// truncated back to its valid prefix; damage anywhere earlier is
/// reported as [`DurableError::CorruptJournal`].
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Creates (truncating) a fresh journal and writes the run header.
    pub fn create(
        path: &Path,
        fingerprint: impl Into<RunFingerprint>,
    ) -> Result<Journal, DurableError> {
        let fingerprint = fingerprint.into();
        let io_err = |e: std::io::Error| DurableError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        };
        let file = File::create(path).map_err(io_err)?;
        let mut journal = Journal {
            file,
            path: path.to_path_buf(),
        };
        journal.append_line(&header_line(&fingerprint))?;
        Ok(journal)
    }

    /// Opens an existing journal for resume: validates the header
    /// fingerprint, recovers a torn tail (dropping and truncating the
    /// final line if it is damaged or unterminated), and returns the
    /// replayable records plus the journal reopened for appending.
    ///
    /// A missing or empty journal resumes as a fresh run.
    ///
    /// When both the header and the current `fingerprint` carry
    /// component fingerprints (see [`run_fingerprint_parts`]), a
    /// mismatch names which input changed — netlist vs technology vs
    /// model/options — in [`DurableError::FingerprintMismatch`].
    pub fn open_resume(
        path: &Path,
        fingerprint: impl Into<RunFingerprint>,
    ) -> Result<(Journal, Vec<ScenarioRecord>), DurableError> {
        let fingerprint = fingerprint.into();
        let io_err = |e: std::io::Error| DurableError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        };
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(e)),
        };
        if bytes.is_empty() {
            return Ok((Journal::create(path, fingerprint)?, Vec::new()));
        }
        let text = String::from_utf8_lossy(&bytes);
        let mut valid_len = 0usize;
        let mut records = Vec::new();
        let lines: Vec<&str> = text.split_inclusive('\n').collect();
        for (index, raw) in lines.iter().enumerate() {
            let is_last = index + 1 == lines.len();
            let torn_tail = |valid_len| {
                // Only the final line may be damaged (a crash mid-append);
                // drop it and let the scenario re-run.
                if is_last {
                    Ok(valid_len)
                } else {
                    Err(DurableError::CorruptJournal {
                        path: path.to_path_buf(),
                        line: index + 1,
                    })
                }
            };
            if !raw.ends_with('\n') {
                valid_len = torn_tail(valid_len)?;
                break;
            }
            let line = raw.trim_end_matches(['\n', '\r']);
            let Some(fields) = parse_json_object(line) else {
                valid_len = torn_tail(valid_len)?;
                break;
            };
            if index == 0 {
                if fields.get("kind").map(String::as_str) != Some("run") {
                    return Err(DurableError::CorruptJournal {
                        path: path.to_path_buf(),
                        line: 1,
                    });
                }
                let found = fields
                    .get("fingerprint")
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .ok_or(DurableError::CorruptJournal {
                        path: path.to_path_buf(),
                        line: 1,
                    })?;
                if found != fingerprint.combined {
                    // Attribute the mismatch wherever both sides carry
                    // the component fingerprint.
                    let parts = [
                        ("net", fingerprint.netlist, MismatchSource::Netlist),
                        ("tech", fingerprint.tech, MismatchSource::Technology),
                        ("opts", fingerprint.options, MismatchSource::Options),
                    ];
                    let mut sources = Vec::new();
                    for (key, current, source) in parts {
                        let recorded = fields
                            .get(key)
                            .and_then(|s| u64::from_str_radix(s, 16).ok());
                        if let (Some(recorded), Some(current)) = (recorded, current) {
                            if recorded != current {
                                sources.push(source);
                            }
                        }
                    }
                    return Err(DurableError::FingerprintMismatch {
                        path: path.to_path_buf(),
                        found,
                        expected: fingerprint.combined,
                        sources,
                    });
                }
            } else {
                match record_from_fields(&fields) {
                    Some(record) => records.push(record),
                    None => {
                        valid_len = torn_tail(valid_len)?;
                        break;
                    }
                }
            }
            valid_len += raw.len();
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(io_err)?;
        file.set_len(valid_len as u64).map_err(io_err)?;
        let mut file = file;
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
            },
            records,
        ))
    }

    /// Appends one scenario record, fsync'd so it survives a crash that
    /// happens right after.
    pub fn append(&mut self, record: &ScenarioRecord) -> Result<(), DurableError> {
        self.append_line(&record_line(record))
    }

    fn append_line(&mut self, line: &str) -> Result<(), DurableError> {
        let io_err = |path: &Path, e: std::io::Error| DurableError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        };
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| io_err(&self.path, e))?;
        self.file.sync_data().map_err(|e| io_err(&self.path, e))
    }
}

fn header_line(fingerprint: &RunFingerprint) -> String {
    let mut out = format!(
        "{{\"kind\":\"run\",\"v\":{JOURNAL_VERSION},\"fingerprint\":\"{:016x}\"",
        fingerprint.combined
    );
    for (key, part) in [
        ("net", fingerprint.netlist),
        ("tech", fingerprint.tech),
        ("opts", fingerprint.options),
    ] {
        if let Some(part) = part {
            out.push_str(&format!(",\"{key}\":\"{part:016x}\""));
        }
    }
    out.push_str("}\n");
    out
}

fn record_line(record: &ScenarioRecord) -> String {
    let mut out = String::from("{\"kind\":\"scenario\",\"label\":\"");
    escape_json(&record.label, &mut out);
    out.push_str("\",\"outcome\":\"");
    out.push_str(record.outcome.name());
    out.push('"');
    if let Some(kind) = record.taxonomy {
        out.push_str(",\"taxonomy\":\"");
        out.push_str(kind.name());
        out.push('"');
    }
    if let Some(digest) = record.digest {
        out.push_str(&format!(",\"digest\":\"{digest:016x}\""));
    }
    out.push_str(",\"summary\":\"");
    escape_json(&record.summary, &mut out);
    out.push_str(&format!(
        "\",\"attempts\":{},\"wall_ms\":{}}}\n",
        record.attempts, record.wall_ms
    ));
    out
}

fn record_from_fields(fields: &HashMap<String, String>) -> Option<ScenarioRecord> {
    if fields.get("kind").map(String::as_str) != Some("scenario") {
        return None;
    }
    let outcome = Outcome::from_name(fields.get("outcome")?)?;
    let taxonomy = match fields.get("taxonomy") {
        Some(name) => Some(FailureKind::from_name(name)?),
        None => None,
    };
    let digest = match fields.get("digest") {
        Some(hex) => Some(u64::from_str_radix(hex, 16).ok()?),
        None => None,
    };
    Some(ScenarioRecord {
        label: fields.get("label")?.clone(),
        outcome,
        taxonomy,
        digest,
        summary: fields.get("summary")?.clone(),
        attempts: fields.get("attempts")?.parse().ok()?,
        wall_ms: fields.get("wall_ms")?.parse().ok()?,
        resumed: true,
    })
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

/// Deadline slots scanned by the watchdog thread. Workers register a
/// `(deadline, token)` pair per attempt and clear it when the attempt
/// finishes; the watchdog fires expired tokens and mirrors shutdown
/// requests into the pool's dispatch-stop flag.
///
/// Shared with [`crate::server`], which registers one slot per in-flight
/// request to enforce per-request deadlines.
#[derive(Debug, Default)]
pub(crate) struct Watchdog {
    slots: Mutex<Vec<Option<(Instant, CancelToken)>>>,
    done: AtomicBool,
}

impl Watchdog {
    pub(crate) fn register(&self, deadline: Instant, token: CancelToken) -> usize {
        let mut slots = self.slots.lock().expect("watchdog lock");
        if let Some(index) = slots.iter().position(Option::is_none) {
            slots[index] = Some((deadline, token));
            index
        } else {
            slots.push(Some((deadline, token)));
            slots.len() - 1
        }
    }

    pub(crate) fn clear(&self, index: usize) {
        self.slots.lock().expect("watchdog lock")[index] = None;
    }

    pub(crate) fn finish(&self) {
        self.done.store(true, Ordering::Release);
    }

    pub(crate) fn run(&self, shutdown: Option<&ShutdownFlag>, stop: &AtomicBool) {
        while !self.done.load(Ordering::Acquire) {
            if let Some(flag) = shutdown {
                if flag.is_requested() {
                    stop.store(true, Ordering::Release);
                }
            }
            let now = Instant::now();
            {
                let mut slots = self.slots.lock().expect("watchdog lock");
                for slot in slots.iter_mut() {
                    if let Some((deadline, token)) = slot {
                        if *deadline <= now {
                            token.cancel();
                            *slot = None;
                        }
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

// ---------------------------------------------------------------------------
// Options, run outcome, and the generic executor
// ---------------------------------------------------------------------------

/// Knobs of one durable run.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Journal file path.
    pub journal: PathBuf,
    /// Replay completed scenarios from an existing journal instead of
    /// truncating it.
    pub resume: bool,
    /// Per-scenario wall-clock deadline enforced by the watchdog.
    /// `None` never times out. `Some(ZERO)` cancels every attempt before
    /// it starts — a deterministic timeout for tests and fault drills.
    pub scenario_timeout: Option<Duration>,
    /// Retry-ladder length for retryable (panic/timeout) failures; `0`
    /// records the first failure directly.
    pub max_retries: usize,
    /// Base backoff before the first retry; doubles per further retry.
    pub retry_backoff: Duration,
    /// Worker threads across scenarios (same semantics as
    /// [`AnalyzerOptions::threads`](crate::analyzer::AnalyzerOptions)).
    pub threads: usize,
    /// Graceful-shutdown flag to honor; `None` never drains early.
    pub shutdown: Option<ShutdownFlag>,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions {
            journal: PathBuf::from("crystal.journal"),
            resume: false,
            scenario_timeout: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(25),
            threads: 1,
            shutdown: None,
        }
    }
}

/// What one attempt of one scenario produced (the closure contract of
/// [`run_durable_with`]).
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptOutcome {
    /// Success: digest plus the display summary to journal.
    Ok {
        /// [`result_digest`] of the produced result.
        digest: u64,
        /// [`scenario_summary`]-style display text.
        summary: String,
    },
    /// Failure, classified; [`FailureKind::is_retryable`] kinds climb the
    /// retry ladder.
    Failed {
        /// The taxonomy bucket.
        kind: FailureKind,
        /// Human-readable error text.
        message: String,
    },
}

/// The assembled outcome of a durable run: one record per input scenario,
/// in input order, whether computed, replayed, or skipped.
#[derive(Debug, Clone)]
pub struct DurableRun {
    /// One record per scenario, in input order.
    pub records: Vec<ScenarioRecord>,
    /// How many records were replayed from the journal.
    pub resumed: usize,
    /// `true` when a shutdown request skipped at least one scenario.
    pub interrupted: bool,
}

impl DurableRun {
    /// `true` when every scenario completed with [`Outcome::Ok`].
    pub fn all_ok(&self) -> bool {
        !self.interrupted && self.records.iter().all(|r| r.outcome == Outcome::Ok)
    }

    /// Records with the given outcome.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.records.iter().filter(|r| r.outcome == outcome).count()
    }
}

/// The generic durable executor: journaling, resume, watchdog, retry
/// ladder, and graceful drain over an arbitrary attempt closure.
///
/// `attempt(item, cancel, attempt_number)` runs one attempt; it should
/// poll `cancel` (or hand it to the analyzer) so the watchdog can stop
/// it, and is called with `attempt_number` starting at 1 so retries can
/// relax their options. Panics inside the closure are caught and
/// classified [`FailureKind::Panic`].
///
/// `fingerprint` pins the journal to the run's inputs — use
/// [`run_fingerprint_parts`] for real scenarios so a later mismatch can
/// name its source (a bare [`run_fingerprint`] `u64` also works but
/// reports generic mismatches).
pub fn run_durable_with<T, F>(
    items: &[(String, T)],
    fingerprint: impl Into<RunFingerprint>,
    attempt: F,
    durable: &DurableOptions,
    trace: Option<&TraceSink>,
) -> Result<DurableRun, DurableError>
where
    T: Sync,
    F: Fn(&T, &CancelToken, u32) -> AttemptOutcome + Sync,
{
    let fingerprint = fingerprint.into();
    let (journal, prior) = if durable.resume {
        Journal::open_resume(&durable.journal, fingerprint)?
    } else {
        (Journal::create(&durable.journal, fingerprint)?, Vec::new())
    };
    // Later records win (a rerun may append a fresh outcome for a label).
    let mut replay: HashMap<&str, &ScenarioRecord> = HashMap::new();
    for record in &prior {
        replay.insert(record.label.as_str(), record);
    }

    let mut pending: Vec<&(String, T)> = Vec::new();
    let mut resumed = 0usize;
    for item in items {
        if replay.contains_key(item.0.as_str()) {
            resumed += 1;
        } else {
            pending.push(item);
        }
    }
    if let Some(t) = trace {
        t.count(Phase::Durable, "resumed_skips", resumed as u64);
    }

    let journal = Mutex::new(journal);
    let journal_error: Mutex<Option<DurableError>> = Mutex::new(None);
    let stop = AtomicBool::new(false);
    let watchdog = Watchdog::default();
    let pool = ThreadPool::new(durable.threads);
    let fresh: Vec<Option<ScenarioRecord>> = std::thread::scope(|s| {
        let watchdog = &watchdog;
        let ticker = s.spawn(|| watchdog.run(durable.shutdown.as_ref(), &stop));
        let fresh = pool.map_until(&pending, &stop, |_, item| {
            let (label, payload) = *item;
            let record = run_ladder(label, payload, &attempt, durable, watchdog, trace);
            match journal.lock().expect("journal lock").append(&record) {
                Ok(()) => {
                    if let Some(t) = trace {
                        t.count(Phase::Durable, "journal_appends", 1);
                    }
                }
                Err(e) => {
                    let mut slot = journal_error.lock().expect("journal error lock");
                    slot.get_or_insert(e);
                }
            }
            record
        });
        watchdog.finish();
        let _ = ticker.join();
        fresh
    });
    if let Some(e) = journal_error.into_inner().expect("journal error lock") {
        return Err(e);
    }

    // Reassemble in input order: replayed + computed + skipped.
    let mut fresh_iter = fresh.into_iter();
    let mut records = Vec::with_capacity(items.len());
    let mut interrupted = false;
    for (label, _) in items {
        if let Some(record) = replay.get(label.as_str()) {
            records.push((*record).clone());
            continue;
        }
        match fresh_iter.next().expect("one slot per pending item") {
            Some(record) => records.push(record),
            None => {
                interrupted = true;
                if let Some(t) = trace {
                    t.count(Phase::Durable, "skipped_shutdown", 1);
                }
                records.push(ScenarioRecord {
                    label: label.clone(),
                    outcome: Outcome::Skipped,
                    taxonomy: None,
                    digest: None,
                    summary: "SKIPPED (shutdown before start)".to_string(),
                    attempts: 0,
                    wall_ms: 0,
                    resumed: false,
                });
            }
        }
    }
    Ok(DurableRun {
        records,
        resumed,
        interrupted,
    })
}

/// One scenario through the retry ladder; see [`run_durable_with`].
fn run_ladder<T, F>(
    label: &str,
    payload: &T,
    attempt: &F,
    durable: &DurableOptions,
    watchdog: &Watchdog,
    trace: Option<&TraceSink>,
) -> ScenarioRecord
where
    F: Fn(&T, &CancelToken, u32) -> AttemptOutcome,
{
    let started = Instant::now();
    let max_attempts = durable.max_retries + 1;
    let mut attempts = 0u32;
    let mut last_failure = (FailureKind::Panic, String::new());
    for number in 1..=max_attempts {
        attempts = number as u32;
        let token = CancelToken::new();
        let slot = match durable.scenario_timeout {
            Some(limit) if limit.is_zero() => {
                // Deterministic timeout: the attempt sees a fired token
                // at its very first checkpoint regardless of speed.
                token.cancel();
                None
            }
            Some(limit) => Some(watchdog.register(Instant::now() + limit, token.clone())),
            None => None,
        };
        let outcome = {
            let _span = trace.map(|t| {
                let mut span = t.span(Phase::Durable, "attempt");
                span.field("scenario", label);
                span.field("attempt", number);
                span
            });
            match catch_unwind(AssertUnwindSafe(|| attempt(payload, &token, attempts))) {
                Ok(outcome) => outcome,
                Err(payload) => AttemptOutcome::Failed {
                    kind: FailureKind::Panic,
                    message: panic_message(payload.as_ref()),
                },
            }
        };
        if let Some(slot) = slot {
            watchdog.clear(slot);
        }
        let wall_ms = || started.elapsed().as_millis() as u64;
        match outcome {
            AttemptOutcome::Ok { digest, summary } => {
                return ScenarioRecord {
                    label: label.to_string(),
                    outcome: Outcome::Ok,
                    taxonomy: None,
                    digest: Some(digest),
                    summary,
                    attempts,
                    wall_ms: wall_ms(),
                    resumed: false,
                };
            }
            AttemptOutcome::Failed { kind, message } if kind.is_retryable() => {
                if let Some(t) = trace {
                    if kind == FailureKind::Timeout {
                        t.count(Phase::Durable, "timeouts", 1);
                    }
                }
                last_failure = (kind, message);
                if number < max_attempts {
                    if let Some(t) = trace {
                        t.count(Phase::Durable, "retries", 1);
                    }
                    // Exponential backoff: base, 2x, 4x, ...
                    let backoff = durable
                        .retry_backoff
                        .saturating_mul(1 << (number - 1).min(16));
                    std::thread::sleep(backoff);
                }
            }
            AttemptOutcome::Failed { kind, message } => {
                // Deterministic failure: record immediately, never retry.
                return ScenarioRecord {
                    label: label.to_string(),
                    outcome: Outcome::Error,
                    taxonomy: Some(kind),
                    digest: None,
                    summary: format!("FAILED ({message})"),
                    attempts,
                    wall_ms: wall_ms(),
                    resumed: false,
                };
            }
        }
    }
    // Retry ladder exhausted on a retryable failure.
    let (kind, message) = last_failure;
    let wall_ms = started.elapsed().as_millis() as u64;
    if kind == FailureKind::Timeout && durable.max_retries == 0 {
        ScenarioRecord {
            label: label.to_string(),
            outcome: Outcome::TimedOut,
            taxonomy: Some(kind),
            digest: None,
            summary: format!("TIMED OUT ({message})"),
            attempts,
            wall_ms,
            resumed: false,
        }
    } else {
        if let Some(t) = trace {
            t.count(Phase::Durable, "quarantined", 1);
        }
        ScenarioRecord {
            label: label.to_string(),
            outcome: Outcome::Poisoned,
            taxonomy: Some(kind),
            digest: None,
            summary: format!("POISONED after {attempts} attempts ({kind}: {message})"),
            attempts,
            wall_ms,
            resumed: false,
        }
    }
}

/// Classifies one analysis outcome into an [`AttemptOutcome`].
fn classify(net: &Network, result: Result<TimingResult, TimingError>) -> AttemptOutcome {
    match result {
        Ok(result) => AttemptOutcome::Ok {
            digest: result_digest(net, &result),
            summary: scenario_summary(net, &result),
        },
        Err(e) if e.was_cancelled() => AttemptOutcome::Failed {
            kind: FailureKind::Timeout,
            message: e.to_string(),
        },
        Err(e @ TimingError::BudgetExhausted { .. }) => AttemptOutcome::Failed {
            kind: FailureKind::Budget,
            message: e.to_string(),
        },
        Err(e) => AttemptOutcome::Failed {
            kind: FailureKind::Analysis,
            message: e.to_string(),
        },
    }
}

/// Durable timing batch: [`run_durable_with`] over real scenarios.
///
/// Per-scenario analyses run with `threads: 1` (the durable layer fans
/// out across scenarios, like [`crate::batch::run_batch`]); retries drop
/// the memo cache — the relaxed-options rung of the ladder — which is
/// safe because cached results are bit-identical to fresh ones.
pub fn run_durable(
    net: &Network,
    tech: &Technology,
    model: ModelKind,
    scenarios: &[(String, Scenario)],
    options: AnalyzerOptions,
    durable: &DurableOptions,
) -> Result<DurableRun, DurableError> {
    let fingerprint = run_fingerprint_parts(net, tech, model, &options);
    let trace = options.trace.clone();
    let per_scenario = AnalyzerOptions {
        threads: 1,
        ..options
    };
    run_durable_with(
        scenarios,
        fingerprint,
        |scenario, token, attempt| {
            let mut attempt_options = per_scenario.clone();
            attempt_options.cancel = Some(token.clone());
            if attempt > 1 {
                attempt_options.cache = None;
            }
            classify(
                net,
                analyze_with_options(net, tech, model, scenario, attempt_options),
            )
        },
        durable,
        trace.as_deref(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosnet::sim_format;
    use std::sync::atomic::AtomicUsize;

    fn temp_journal(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "crystal_durable_{name}_{}_{:?}.journal",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn items(labels: &[&str]) -> Vec<(String, usize)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.to_string(), i))
            .collect()
    }

    fn ok_attempt(i: &usize) -> AttemptOutcome {
        AttemptOutcome::Ok {
            digest: *i as u64 + 10,
            summary: format!("ok, item {i}"),
        }
    }

    #[test]
    fn journal_record_round_trips() {
        let record = ScenarioRecord {
            label: "a \"rise\"\nweird".to_string(),
            outcome: Outcome::Poisoned,
            taxonomy: Some(FailureKind::Panic),
            digest: Some(0xdead_beef),
            summary: "POISONED after 3 attempts (panic: \\boom\\)".to_string(),
            attempts: 3,
            wall_ms: 41,
            resumed: true,
        };
        let line = record_line(&record);
        assert!(line.ends_with('\n'));
        let fields = parse_json_object(line.trim_end()).expect("parses");
        let back = record_from_fields(&fields).expect("reconstructs");
        assert_eq!(back, record);
    }

    #[test]
    fn fresh_run_journals_and_resume_replays() {
        let path = temp_journal("resume");
        let calls = AtomicUsize::new(0);
        let run = |resume: bool| {
            run_durable_with(
                &items(&["a", "b", "c"]),
                7,
                |i, _, _| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    ok_attempt(i)
                },
                &DurableOptions {
                    journal: path.clone(),
                    resume,
                    ..DurableOptions::default()
                },
                None,
            )
            .expect("runs")
        };
        let first = run(false);
        assert!(first.all_ok());
        assert_eq!(first.resumed, 0);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        let second = run(true);
        assert!(second.all_ok());
        assert_eq!(second.resumed, 3);
        // Nothing re-ran; the records are bit-identical minus the flag.
        assert_eq!(calls.load(Ordering::SeqCst), 3);
        for (a, b) in first.records.iter().zip(&second.records) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.digest, b.digest);
            assert_eq!(a.summary, b.summary);
            assert!(b.resumed);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_recovered_and_scenario_rerun() {
        let path = temp_journal("torn");
        let full = run_durable_with(
            &items(&["a", "b"]),
            7,
            |i, _, _| ok_attempt(i),
            &DurableOptions {
                journal: path.clone(),
                ..DurableOptions::default()
            },
            None,
        )
        .expect("runs");
        // Tear the final record mid-line.
        let bytes = std::fs::read(&path).expect("journal exists");
        std::fs::write(&path, &bytes[..bytes.len() - 5]).expect("truncates");
        let calls = AtomicUsize::new(0);
        let resumed = run_durable_with(
            &items(&["a", "b"]),
            7,
            |i, _, _| {
                calls.fetch_add(1, Ordering::SeqCst);
                ok_attempt(i)
            },
            &DurableOptions {
                journal: path.clone(),
                resume: true,
                ..DurableOptions::default()
            },
            None,
        )
        .expect("recovers");
        // Only the torn scenario re-ran; results match the full run.
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(resumed.resumed, 1);
        assert_eq!(resumed.records.len(), full.records.len());
        for (a, b) in full.records.iter().zip(&resumed.records) {
            assert_eq!((a.label.as_str(), a.digest), (b.label.as_str(), b.digest));
            assert_eq!(a.summary, b.summary);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_middle_line_is_an_error_not_a_recovery() {
        let path = temp_journal("corrupt");
        run_durable_with(
            &items(&["a", "b"]),
            7,
            |i, _, _| ok_attempt(i),
            &DurableOptions {
                journal: path.clone(),
                ..DurableOptions::default()
            },
            None,
        )
        .expect("runs");
        // Damage line 2 of 3 — not the tail, so not recoverable.
        let text = std::fs::read_to_string(&path).expect("reads");
        let mut lines: Vec<&str> = text.lines().collect();
        lines[1] = "{\"kind\":\"scenario\",busted";
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).expect("writes");
        let err = Journal::open_resume(&path, 7).expect_err("corrupt");
        assert!(
            matches!(err, DurableError::CorruptJournal { line: 2, .. }),
            "{err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let path = temp_journal("fp");
        run_durable_with(
            &items(&["a"]),
            7,
            |i, _, _| ok_attempt(i),
            &DurableOptions {
                journal: path.clone(),
                ..DurableOptions::default()
            },
            None,
        )
        .expect("runs");
        let err = Journal::open_resume(&path, 8).expect_err("different inputs");
        assert!(matches!(
            err,
            DurableError::FingerprintMismatch {
                found: 7,
                expected: 8,
                ..
            }
        ));
        let _ = std::fs::remove_file(&path);
    }

    const INVERTER: &str = "| one inverter\ni a\no y\n\
        n a y gnd 2 8\np a y vdd 2 16\nC y 50\n";

    fn tiny_net(text: &str) -> Network {
        sim_format::parse(text, "tiny").expect("fixture parses")
    }

    #[test]
    fn netlist_edited_on_disk_mismatch_names_the_netlist() {
        let path = temp_journal("fp_net_source");
        let tech = Technology::nominal();
        let options = AnalyzerOptions::default();
        let before = tiny_net(INVERTER);
        Journal::create(
            &path,
            run_fingerprint_parts(&before, &tech, ModelKind::Slope, &options),
        )
        .expect("creates");
        // The netlist file is edited between runs: the load doubles.
        let after = tiny_net(&INVERTER.replace("C y 50", "C y 100"));
        let current = run_fingerprint_parts(&after, &tech, ModelKind::Slope, &options);
        let err = Journal::open_resume(&path, current).expect_err("edited netlist");
        match &err {
            DurableError::FingerprintMismatch { sources, .. } => {
                assert_eq!(sources, &[MismatchSource::Netlist]);
            }
            other => panic!("unexpected error {other:?}"),
        }
        let text = err.to_string();
        assert!(
            text.contains("the netlist changed since the journal was written"),
            "{text}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tech_and_option_mismatches_name_their_sources() {
        let path = temp_journal("fp_other_sources");
        let tech = Technology::nominal();
        let options = AnalyzerOptions::default();
        let net = tiny_net(INVERTER);
        Journal::create(
            &path,
            run_fingerprint_parts(&net, &tech, ModelKind::Slope, &options),
        )
        .expect("creates");

        let mut other_tech = tech.clone();
        other_tech.name = "perturbed".to_string();
        let err = Journal::open_resume(
            &path,
            run_fingerprint_parts(&net, &other_tech, ModelKind::Slope, &options),
        )
        .expect_err("tech changed");
        assert!(
            matches!(&err, DurableError::FingerprintMismatch { sources, .. }
                if sources == &[MismatchSource::Technology]),
            "{err:?}"
        );
        assert!(err.to_string().contains("the technology changed"), "{err}");

        let err = Journal::open_resume(
            &path,
            run_fingerprint_parts(&net, &tech, ModelKind::Lumped, &options),
        )
        .expect_err("model changed");
        assert!(
            matches!(&err, DurableError::FingerprintMismatch { sources, .. }
                if sources == &[MismatchSource::Options]),
            "{err:?}"
        );
        assert!(
            err.to_string().contains("the model/options changed"),
            "{err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn legacy_header_mismatch_stays_unattributed() {
        // A journal written with an opaque fingerprint (no component
        // fields) still rejects mismatches, just without a source.
        let path = temp_journal("fp_opaque");
        Journal::create(&path, 7u64).expect("creates");
        let net = tiny_net(INVERTER);
        let current = run_fingerprint_parts(
            &net,
            &Technology::nominal(),
            ModelKind::Slope,
            &AnalyzerOptions::default(),
        );
        let err = Journal::open_resume(&path, current).expect_err("mismatch");
        match &err {
            DurableError::FingerprintMismatch { found, sources, .. } => {
                assert_eq!(*found, 7);
                assert!(sources.is_empty());
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(!err.to_string().contains("changed since"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn retry_ladder_recovers_from_transient_panics() {
        let path = temp_journal("retry_panic");
        let calls = AtomicUsize::new(0);
        let run = run_durable_with(
            &items(&["flaky"]),
            7,
            |i, _, _| {
                // Panic on the first two attempts, succeed on the third.
                if calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("injected flake");
                }
                ok_attempt(i)
            },
            &DurableOptions {
                journal: path.clone(),
                max_retries: 2,
                retry_backoff: Duration::from_millis(1),
                ..DurableOptions::default()
            },
            None,
        )
        .expect("runs");
        assert!(run.all_ok());
        assert_eq!(run.records[0].attempts, 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn persistent_panic_is_quarantined_with_taxonomy() {
        let path = temp_journal("poison");
        let trace = TraceSink::new();
        let run = run_durable_with(
            &items(&["bad"]),
            7,
            |_: &usize, _: &CancelToken, _| -> AttemptOutcome { panic!("always broken") },
            &DurableOptions {
                journal: path.clone(),
                max_retries: 1,
                retry_backoff: Duration::from_millis(1),
                ..DurableOptions::default()
            },
            Some(&trace),
        )
        .expect("runs");
        let record = &run.records[0];
        assert_eq!(record.outcome, Outcome::Poisoned);
        assert_eq!(record.taxonomy, Some(FailureKind::Panic));
        assert_eq!(record.attempts, 2);
        assert!(
            record.summary.contains("always broken"),
            "{}",
            record.summary
        );
        let metrics = trace.metrics();
        assert_eq!(metrics.counter(Phase::Durable, "quarantined"), 1);
        assert_eq!(metrics.counter(Phase::Durable, "retries"), 1);
        // A resumed run skips the quarantined scenario entirely.
        let calls = AtomicUsize::new(0);
        let resumed = run_durable_with(
            &items(&["bad"]),
            7,
            |i, _, _| {
                calls.fetch_add(1, Ordering::SeqCst);
                ok_attempt(i)
            },
            &DurableOptions {
                journal: path.clone(),
                resume: true,
                ..DurableOptions::default()
            },
            None,
        )
        .expect("resumes");
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        assert_eq!(resumed.records[0].outcome, Outcome::Poisoned);
        assert!(resumed.records[0].resumed);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deterministic_failures_are_not_retried() {
        let path = temp_journal("noretry");
        let calls = AtomicUsize::new(0);
        let run = run_durable_with(
            &items(&["capped"]),
            7,
            |_, _, _| {
                calls.fetch_add(1, Ordering::SeqCst);
                AttemptOutcome::Failed {
                    kind: FailureKind::Budget,
                    message: "stage cap".to_string(),
                }
            },
            &DurableOptions {
                journal: path.clone(),
                max_retries: 5,
                retry_backoff: Duration::from_millis(1),
                ..DurableOptions::default()
            },
            None,
        )
        .expect("runs");
        assert_eq!(calls.load(Ordering::SeqCst), 1, "budget errors never retry");
        assert_eq!(run.records[0].outcome, Outcome::Error);
        assert_eq!(run.records[0].taxonomy, Some(FailureKind::Budget));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn watchdog_cancels_an_overrunning_attempt() {
        let path = temp_journal("watchdog");
        let trace = TraceSink::new();
        let run = run_durable_with(
            &items(&["wedged"]),
            7,
            |_, token, _| {
                // Simulate a wedged analysis that honors cooperative
                // cancellation: spin until the watchdog fires the token.
                let start = Instant::now();
                while !token.is_cancelled() {
                    if start.elapsed() > Duration::from_secs(10) {
                        return AttemptOutcome::Failed {
                            kind: FailureKind::Analysis,
                            message: "watchdog never fired".to_string(),
                        };
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                AttemptOutcome::Failed {
                    kind: FailureKind::Timeout,
                    message: "cancelled".to_string(),
                }
            },
            &DurableOptions {
                journal: path.clone(),
                scenario_timeout: Some(Duration::from_millis(10)),
                max_retries: 1,
                retry_backoff: Duration::from_millis(1),
                ..DurableOptions::default()
            },
            Some(&trace),
        )
        .expect("runs");
        let record = &run.records[0];
        assert_eq!(record.outcome, Outcome::Poisoned);
        assert_eq!(record.taxonomy, Some(FailureKind::Timeout));
        assert_eq!(trace.metrics().counter(Phase::Durable, "timeouts"), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn zero_timeout_with_no_retries_is_a_timed_out_record() {
        let path = temp_journal("timeout0");
        let run = run_durable_with(
            &items(&["instant"]),
            7,
            |i, token, _| {
                if token.is_cancelled() {
                    AttemptOutcome::Failed {
                        kind: FailureKind::Timeout,
                        message: "pre-cancelled".to_string(),
                    }
                } else {
                    ok_attempt(i)
                }
            },
            &DurableOptions {
                journal: path.clone(),
                scenario_timeout: Some(Duration::ZERO),
                max_retries: 0,
                ..DurableOptions::default()
            },
            None,
        )
        .expect("runs");
        assert_eq!(run.records[0].outcome, Outcome::TimedOut);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shutdown_drains_without_starting_new_scenarios() {
        let path = temp_journal("shutdown");
        let shutdown = ShutdownFlag::new();
        shutdown.request();
        let calls = AtomicUsize::new(0);
        let run = run_durable_with(
            &items(&["a", "b", "c"]),
            7,
            |i, _, _| {
                calls.fetch_add(1, Ordering::SeqCst);
                ok_attempt(i)
            },
            &DurableOptions {
                journal: path.clone(),
                threads: 1,
                shutdown: Some(shutdown),
                ..DurableOptions::default()
            },
            None,
        )
        .expect("runs");
        // Pre-requested shutdown: the watchdog mirrors it into the stop
        // flag; depending on timing zero or a few scenarios start, but
        // the run must report interruption and mark the rest skipped.
        assert!(run.interrupted);
        assert!(run.count(Outcome::Skipped) >= 1);
        assert_eq!(
            calls.load(Ordering::SeqCst) + run.count(Outcome::Skipped),
            3
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn results_are_identical_at_any_thread_count() {
        let labels: Vec<String> = (0..12).map(|i| format!("s{i}")).collect();
        let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let baseline_path = temp_journal("threads1");
        let baseline = run_durable_with(
            &items(&label_refs),
            7,
            |i, _, _| ok_attempt(i),
            &DurableOptions {
                journal: baseline_path.clone(),
                threads: 1,
                ..DurableOptions::default()
            },
            None,
        )
        .expect("runs");
        for threads in [2, 4] {
            let path = temp_journal(&format!("threads{threads}"));
            let run = run_durable_with(
                &items(&label_refs),
                7,
                |i, _, _| ok_attempt(i),
                &DurableOptions {
                    journal: path.clone(),
                    threads,
                    ..DurableOptions::default()
                },
                None,
            )
            .expect("runs");
            assert_eq!(run.records, baseline.records, "threads={threads}");
            let _ = std::fs::remove_file(&path);
        }
        let _ = std::fs::remove_file(&baseline_path);
    }
}
