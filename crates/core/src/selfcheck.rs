//! Differential self-checking of the timing engine.
//!
//! The paper's claim — slope tracks the reference simulator closely while
//! lumped RC can be off by 2× — is only worth anything if the *optimized*
//! paths (sharded memo cache, parallel propagation) still produce it.
//! This harness re-runs analyzed scenarios three ways and reports every
//! divergence:
//!
//! 1. **cached vs. fresh** — the same scenario analyzed with a shared
//!    [`StageCache`] (twice, so the second run actually hits) must be
//!    bit-identical to an uncached run;
//! 2. **parallel vs. serial** — `threads = N` must be bit-identical to
//!    `threads = 1` (the Jacobi snapshot-round guarantee);
//! 3. **model vs. reference** — each delay model's prediction at the
//!    latest-switching output must sit inside its per-model tolerance
//!    band around a nanospice transient measurement.
//!
//! The first two checks are exact (any difference is a bug); the third is
//! banded, with defaults wide enough for the honest model error on the
//! seed corpus yet tight enough that an off-by-2× result trips them.
//! [`SelfCheckConfig::inject_scale`] deliberately corrupts one model's
//! predictions so CI can verify the harness actually fires.

use crate::analyzer::{analyze_with_options, AnalyzerOptions, Edge, Scenario, TimingResult};
use crate::memo::StageCache;
use crate::models::ModelKind;
use crate::obs::{Phase, TraceSink};
use crate::tech::Technology;
use mosnet::units::Seconds;
use mosnet::{Network, NodeId, NodeKind};
use nanospice::analysis::{
    measure_transition, operating_voltages, Edge as SimEdge, TransitionSpec,
};
use nanospice::MosModelSet;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

/// Per-model tolerance bands: the maximum |percent error| against the
/// transient reference that still counts as agreement.
///
/// The defaults are calibrated on the seed corpus (inverter chain, pass
/// mesh, carry-chain adder) using a [`Technology`] fitted to the
/// reference simulator's device parameters (see
/// `examples/netlists/calibrated.tech`): each band clears the honest
/// worst-case error of its model with margin, while a 2× corruption of a
/// prediction still lands outside. An uncalibrated technology carries a
/// systematic scale error that these bands will (correctly) flag.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToleranceBands {
    /// Band for [`ModelKind::Slope`], in percent.
    pub slope_pct: f64,
    /// Band for [`ModelKind::RcTree`], in percent.
    pub rctree_pct: f64,
    /// Band for [`ModelKind::Lumped`], in percent.
    pub lumped_pct: f64,
}

impl Default for ToleranceBands {
    fn default() -> ToleranceBands {
        ToleranceBands {
            // Honest worst cases on the calibrated seed corpus (input
            // transitions 0–2 ns): slope 10.5%; rc-tree 24.3% on trees
            // but −55.6% on inverter chains, where it degenerates to the
            // lumped value and ignores input slope; lumped
            // −55.6%..+65.9%. A 2× corruption of the worst honest lumped
            // overestimate (+66% → +232%) still clears the 80% band.
            slope_pct: 25.0,
            rctree_pct: 65.0,
            lumped_pct: 80.0,
        }
    }
}

impl ToleranceBands {
    /// The band of one model, in percent.
    pub fn band(&self, model: ModelKind) -> f64 {
        match model {
            ModelKind::Slope => self.slope_pct,
            ModelKind::RcTree => self.rctree_pct,
            ModelKind::Lumped => self.lumped_pct,
        }
    }
}

/// Configuration of a self-check run.
#[derive(Debug, Clone)]
pub struct SelfCheckConfig {
    /// Models to audit (default: all three).
    pub models: Vec<ModelKind>,
    /// Reference-agreement bands.
    pub bands: ToleranceBands,
    /// Worker threads for the parallel leg of the parallel-vs-serial
    /// check (`0` = every hardware thread, the default).
    pub threads: usize,
    /// Cap on the number of scenarios per netlist that get the (much
    /// more expensive) transient reference comparison; the exact checks
    /// run on every scenario regardless.
    pub reference_sample: usize,
    /// Deliberately scale `(model, factor)` predictions before the
    /// reference comparison — a fault-injection hook proving the harness
    /// detects a wrong answer. `None` (default) checks honestly.
    pub inject_scale: Option<(ModelKind, f64)>,
    /// MOS level-1 parameters for the reference simulation.
    pub sim_models: MosModelSet,
    /// Observability sink for [`Phase::Check`] spans and counters.
    pub trace: Option<Arc<TraceSink>>,
}

impl Default for SelfCheckConfig {
    fn default() -> SelfCheckConfig {
        SelfCheckConfig {
            models: ModelKind::ALL.to_vec(),
            bands: ToleranceBands::default(),
            threads: 0,
            reference_sample: 4,
            inject_scale: None,
            sim_models: MosModelSet::default(),
            trace: None,
        }
    }
}

/// One detected divergence.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Divergence {
    /// A cached analysis differed from the uncached one.
    Cache {
        /// Scenario label.
        scenario: String,
        /// The model being audited.
        model: ModelKind,
        /// Which cached pass differed (1 = populating, 2 = hitting).
        pass: usize,
    },
    /// A parallel analysis differed from the serial one.
    Parallel {
        /// Scenario label.
        scenario: String,
        /// The model being audited.
        model: ModelKind,
        /// The worker-thread setting of the diverging run.
        threads: usize,
    },
    /// A model prediction fell outside its reference tolerance band.
    Reference {
        /// Scenario label.
        scenario: String,
        /// The model being audited.
        model: ModelKind,
        /// Name of the measured output node.
        output: String,
        /// The model's 50%→50% delay prediction.
        predicted: Seconds,
        /// The transient reference delay.
        reference: Seconds,
        /// Signed percent error of the prediction.
        percent_error: f64,
        /// The band it had to stay inside, in percent.
        band_pct: f64,
    },
    /// An analysis leg failed outright (one leg erroring while another
    /// succeeds is itself a divergence).
    Failed {
        /// Scenario label.
        scenario: String,
        /// The model being audited.
        model: ModelKind,
        /// Which leg failed.
        leg: &'static str,
        /// The error text.
        error: String,
    },
    /// A journal record replayed on resume does not match a fresh
    /// re-analysis of the same scenario (see
    /// [`check_resume_equivalence`]).
    Resume {
        /// Scenario label.
        scenario: String,
        /// What disagreed (digest, summary, or outcome).
        detail: String,
    },
    /// An incremental re-analysis differed from a fresh full analysis of
    /// the same edited network (see [`check_incremental`]).
    Incremental {
        /// Scenario label.
        scenario: String,
        /// The model being audited.
        model: ModelKind,
        /// 1-based index of the edit after which the divergence appeared
        /// (0 = before any edit, right after session construction).
        edit: usize,
        /// Which session variant diverged (`serial`, `parallel`,
        /// `cache-cold`, `cache-warm`).
        leg: &'static str,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Cache {
                scenario,
                model,
                pass,
            } => write!(
                f,
                "[{scenario}] {model}: cached pass {pass} differs from fresh analysis"
            ),
            Divergence::Parallel {
                scenario,
                model,
                threads,
            } => write!(
                f,
                "[{scenario}] {model}: threads={threads} differs from serial analysis"
            ),
            Divergence::Reference {
                scenario,
                model,
                output,
                predicted,
                reference,
                percent_error,
                band_pct,
            } => write!(
                f,
                "[{scenario}] {model}: `{output}` predicted {:.4} ns vs reference {:.4} ns \
                 ({percent_error:+.1}%, band ±{band_pct:.0}%)",
                predicted.nanos(),
                reference.nanos(),
            ),
            Divergence::Failed {
                scenario,
                model,
                leg,
                error,
            } => write!(f, "[{scenario}] {model}: {leg} leg failed: {error}"),
            Divergence::Resume { scenario, detail } => {
                write!(f, "[{scenario}] resumed journal record: {detail}")
            }
            Divergence::Incremental {
                scenario,
                model,
                edit,
                leg,
            } => write!(
                f,
                "[{scenario}] {model}: incremental {leg} session differs from fresh \
                 full analysis after edit {edit}"
            ),
        }
    }
}

/// The outcome of a self-check run.
#[derive(Debug, Clone, Default)]
pub struct SelfCheckReport {
    /// Total individual comparisons performed.
    pub checks_run: usize,
    /// Scenarios whose reference leg was skipped, with reasons (e.g.
    /// nothing switches, or the transient measurement failed).
    pub skipped: Vec<String>,
    /// Every detected divergence.
    pub divergences: Vec<Divergence>,
}

impl SelfCheckReport {
    /// `true` when no divergence was detected.
    pub fn ok(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Merges another report (e.g. from a second netlist) into this one.
    pub fn merge(&mut self, other: SelfCheckReport) {
        self.checks_run += other.checks_run;
        self.skipped.extend(other.skipped);
        self.divergences.extend(other.divergences);
    }

    /// A human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "self-check: {} comparisons, {} divergences, {} reference legs skipped",
            self.checks_run,
            self.divergences.len(),
            self.skipped.len()
        );
        for d in &self.divergences {
            let _ = writeln!(out, "  DIVERGENCE {d}");
        }
        for s in &self.skipped {
            let _ = writeln!(out, "  skipped: {s}");
        }
        out
    }
}

/// The every-input × both-edges scenario set the CLI's `batch` and
/// `check` commands audit — the standard corpus shape.
pub fn standard_scenarios(
    net: &Network,
    statics: &HashMap<NodeId, bool>,
    input_transition: Seconds,
) -> Vec<(String, Scenario)> {
    let mut scenarios = Vec::new();
    for input in net.inputs() {
        for edge in [Edge::Rising, Edge::Falling] {
            let label = format!(
                "{} {}",
                net.node(input).name(),
                if edge == Edge::Rising { "rise" } else { "fall" }
            );
            let mut scenario = Scenario::step(input, edge).with_input_transition(input_transition);
            for (&node, &level) in statics {
                if node != input {
                    scenario = scenario.with_static(node, level);
                }
            }
            scenarios.push((label, scenario));
        }
    }
    scenarios
}

/// Audits one netlist: every scenario gets the exact cached-vs-fresh and
/// parallel-vs-serial checks per model, and the first
/// [`SelfCheckConfig::reference_sample`] switching scenarios also get the
/// model-vs-transient-reference band check.
pub fn check_network(
    net: &Network,
    tech: &Technology,
    scenarios: &[(String, Scenario)],
    config: &SelfCheckConfig,
) -> SelfCheckReport {
    let trace = config.trace.as_deref();
    let mut report = SelfCheckReport::default();
    // One shared cache per model across all scenarios, mirroring how
    // batch runs actually share it.
    let caches: Vec<Arc<StageCache>> = config
        .models
        .iter()
        .map(|_| Arc::new(StageCache::new()))
        .collect();
    let mut references_done = 0usize;
    for (label, scenario) in scenarios {
        let _span = trace.map(|t| {
            let mut span = t.span(Phase::Check, "scenario");
            span.field("scenario", label);
            span
        });
        let mut fresh_for_reference: Vec<(ModelKind, TimingResult)> = Vec::new();
        for (model, cache) in config.models.iter().copied().zip(&caches) {
            let serial = AnalyzerOptions {
                threads: 1,
                cache: None,
                trace: config.trace.clone(),
                ..AnalyzerOptions::default()
            };
            let fresh = match analyze_with_options(net, tech, model, scenario, serial.clone()) {
                Ok(r) => r,
                Err(e) => {
                    report.divergences.push(Divergence::Failed {
                        scenario: label.clone(),
                        model,
                        leg: "fresh",
                        error: e.to_string(),
                    });
                    continue;
                }
            };

            // Cached vs. fresh: pass 1 populates the shared cache, pass 2
            // must hit it; both must be bit-identical to the fresh run.
            let cached_options = AnalyzerOptions {
                cache: Some(Arc::clone(cache)),
                ..serial.clone()
            };
            for pass in 1..=2 {
                report.checks_run += 1;
                match analyze_with_options(net, tech, model, scenario, cached_options.clone()) {
                    Ok(cached) => {
                        if cached != fresh {
                            report.divergences.push(Divergence::Cache {
                                scenario: label.clone(),
                                model,
                                pass,
                            });
                        }
                    }
                    Err(e) => report.divergences.push(Divergence::Failed {
                        scenario: label.clone(),
                        model,
                        leg: "cached",
                        error: e.to_string(),
                    }),
                }
            }

            // Parallel vs. serial.
            report.checks_run += 1;
            let parallel_options = AnalyzerOptions {
                threads: config.threads,
                cache: None,
                trace: config.trace.clone(),
                ..AnalyzerOptions::default()
            };
            match analyze_with_options(net, tech, model, scenario, parallel_options) {
                Ok(parallel) => {
                    if parallel != fresh {
                        report.divergences.push(Divergence::Parallel {
                            scenario: label.clone(),
                            model,
                            threads: config.threads,
                        });
                    }
                }
                Err(e) => report.divergences.push(Divergence::Failed {
                    scenario: label.clone(),
                    model,
                    leg: "parallel",
                    error: e.to_string(),
                }),
            }

            fresh_for_reference.push((model, fresh));
        }

        // Reference leg: bounded sample, latest-switching output node.
        if references_done < config.reference_sample {
            match check_against_reference(net, scenario, label, &fresh_for_reference, config) {
                ReferenceOutcome::Checked(mut divergences, checks) => {
                    references_done += 1;
                    report.checks_run += checks;
                    report.divergences.append(&mut divergences);
                }
                ReferenceOutcome::Skipped(reason) => report.skipped.push(reason),
            }
        }
    }
    if let Some(t) = trace {
        t.count(Phase::Check, "comparisons", report.checks_run as u64);
        t.count(Phase::Check, "divergences", report.divergences.len() as u64);
        t.count(Phase::Check, "reference_skips", report.skipped.len() as u64);
    }
    report
}

/// Audits a durable run against fresh re-analysis: every journaled `ok`
/// record (resumed or just computed) must match a serial, uncached
/// re-analysis of its scenario bit-for-bit (digest and display summary),
/// and every journaled deterministic `error` must reproduce. Timed-out,
/// poisoned, and skipped records have nothing to compare against and are
/// reported in [`SelfCheckReport::skipped`].
///
/// This is the gate behind `crystal-cli batch --journal --resume
/// --selfcheck-resume` and the CI chaos job: it proves a kill-and-resume
/// run is equivalent to an uninterrupted one.
pub fn check_resume_equivalence(
    net: &Network,
    tech: &Technology,
    model: ModelKind,
    scenarios: &[(String, Scenario)],
    options: &AnalyzerOptions,
    run: &crate::durable::DurableRun,
) -> SelfCheckReport {
    use crate::durable::Outcome;
    let trace = options.trace.as_deref();
    let by_label: HashMap<&str, &Scenario> = scenarios
        .iter()
        .map(|(label, scenario)| (label.as_str(), scenario))
        .collect();
    let mut report = SelfCheckReport::default();
    for record in &run.records {
        let _span = trace.map(|t| {
            let mut span = t.span(Phase::Check, "resume-equivalence");
            span.field("scenario", &record.label);
            span
        });
        let Some(scenario) = by_label.get(record.label.as_str()) else {
            report.divergences.push(Divergence::Resume {
                scenario: record.label.clone(),
                detail: "journal names a scenario absent from this run".to_string(),
            });
            continue;
        };
        // The reference leg: serial, uncached, unbounded by any watchdog —
        // the most deterministic configuration the analyzer has.
        let fresh_options = AnalyzerOptions {
            threads: 1,
            cache: None,
            cancel: None,
            ..options.clone()
        };
        match record.outcome {
            Outcome::Ok => {
                report.checks_run += 1;
                match analyze_with_options(net, tech, model, scenario, fresh_options) {
                    Ok(result) => {
                        let digest = crate::durable::result_digest(net, &result);
                        let summary = crate::durable::scenario_summary(net, &result);
                        if Some(digest) != record.digest {
                            report.divergences.push(Divergence::Resume {
                                scenario: record.label.clone(),
                                detail: format!(
                                    "digest {:016x} journaled, fresh re-analysis gives {digest:016x}",
                                    record.digest.unwrap_or(0)
                                ),
                            });
                        } else if summary != record.summary {
                            report.divergences.push(Divergence::Resume {
                                scenario: record.label.clone(),
                                detail: format!(
                                    "summary `{}` journaled, fresh re-analysis gives `{summary}`",
                                    record.summary
                                ),
                            });
                        }
                    }
                    Err(e) => report.divergences.push(Divergence::Resume {
                        scenario: record.label.clone(),
                        detail: format!("journaled ok, but fresh re-analysis fails: {e}"),
                    }),
                }
            }
            Outcome::Error => {
                report.checks_run += 1;
                if analyze_with_options(net, tech, model, scenario, fresh_options).is_ok() {
                    report.divergences.push(Divergence::Resume {
                        scenario: record.label.clone(),
                        detail: "journaled a deterministic error, but fresh re-analysis succeeds"
                            .to_string(),
                    });
                }
            }
            _ => report.skipped.push(format!(
                "{}: journaled `{}` has no deterministic reference",
                record.label,
                record.outcome.name()
            )),
        }
    }
    if let Some(t) = trace {
        t.count(Phase::Check, "resume_comparisons", report.checks_run as u64);
        t.count(Phase::Check, "divergences", report.divergences.len() as u64);
    }
    report
}

/// Audits the incremental engine over a scripted edit sequence: four
/// independent [`IncrementalAnalyzer`](crate::incremental::IncrementalAnalyzer)
/// sessions — serial, parallel
/// (`config.threads`), cold shared cache, and a cache pre-warmed by a
/// full pass over every scenario — apply the same edits, and after every
/// edit (plus once right after construction) each session's result for
/// every scenario must be **bit-identical** to a fresh serial, uncached
/// full analysis of the edited network. Any mismatch, and any leg that
/// errors where the reference succeeds, is a divergence.
pub fn check_incremental(
    net: &Network,
    tech: &Technology,
    model: ModelKind,
    scenarios: &[(String, Scenario)],
    edits: &[mosnet::diff::Edit],
    config: &SelfCheckConfig,
) -> SelfCheckReport {
    use crate::incremental::IncrementalAnalyzer;
    let trace = config.trace.as_deref();
    let mut report = SelfCheckReport::default();
    let base = AnalyzerOptions {
        threads: 1,
        cache: None,
        trace: config.trace.clone(),
        ..AnalyzerOptions::default()
    };
    let warm_cache = Arc::new(StageCache::new());
    for (_, scenario) in scenarios {
        // Pre-warm: one full pass per scenario; errors surface later via
        // the session itself.
        let _ = analyze_with_options(
            net,
            tech,
            model,
            scenario,
            AnalyzerOptions {
                cache: Some(Arc::clone(&warm_cache)),
                ..base.clone()
            },
        );
    }
    let variants: [(&'static str, AnalyzerOptions); 4] = [
        ("serial", base.clone()),
        (
            "parallel",
            AnalyzerOptions {
                threads: config.threads,
                ..base.clone()
            },
        ),
        (
            "cache-cold",
            AnalyzerOptions {
                cache: Some(Arc::new(StageCache::new())),
                ..base.clone()
            },
        ),
        (
            "cache-warm",
            AnalyzerOptions {
                cache: Some(warm_cache),
                ..base.clone()
            },
        ),
    ];
    for (leg, options) in variants {
        let _span = trace.map(|t| {
            let mut span = t.span(Phase::Check, "incremental");
            span.field("leg", leg);
            span
        });
        let mut session = match IncrementalAnalyzer::new(
            net.clone(),
            tech.clone(),
            model,
            scenarios.to_vec(),
            options,
        ) {
            Ok(session) => session,
            Err(e) => {
                report.divergences.push(Divergence::Failed {
                    scenario: format!("incremental {leg} session"),
                    model,
                    leg: "incremental-init",
                    error: e.to_string(),
                });
                continue;
            }
        };
        // Edit 0 is the freshly built session; then one audit per edit.
        let audit = |session: &IncrementalAnalyzer, edit: usize, report: &mut SelfCheckReport| {
            for (label, _) in scenarios {
                report.checks_run += 1;
                let reference = session.scenario(label).and_then(|scenario| {
                    analyze_with_options(
                        session.network(),
                        tech,
                        model,
                        &scenario,
                        AnalyzerOptions {
                            trace: config.trace.clone(),
                            ..AnalyzerOptions::default()
                        },
                    )
                });
                let diverged = match (session.result(label), &reference) {
                    (Some(incremental), Ok(fresh)) => incremental != fresh,
                    _ => true,
                };
                if diverged {
                    report.divergences.push(Divergence::Incremental {
                        scenario: label.clone(),
                        model,
                        edit,
                        leg,
                    });
                }
            }
        };
        audit(&session, 0, &mut report);
        for (i, edit) in edits.iter().enumerate() {
            match session.apply_edit(edit) {
                Ok(_) => audit(&session, i + 1, &mut report),
                Err(e) => {
                    report.divergences.push(Divergence::Failed {
                        scenario: format!("edit {}", i + 1),
                        model,
                        leg: "incremental-edit",
                        error: e.to_string(),
                    });
                    break;
                }
            }
        }
    }
    if let Some(t) = trace {
        t.count(
            Phase::Check,
            "incremental_comparisons",
            report.checks_run as u64,
        );
        t.count(Phase::Check, "divergences", report.divergences.len() as u64);
    }
    report
}

enum ReferenceOutcome {
    Checked(Vec<Divergence>, usize),
    Skipped(String),
}

/// Picks the measured output: the latest-arriving [`NodeKind::Output`]
/// node, falling back to the latest arrival of any kind.
fn pick_output(net: &Network, result: &TimingResult) -> Option<(NodeId, Edge)> {
    let mut best: Option<(NodeId, Seconds, Edge)> = None;
    for (node, arrival) in result.arrivals() {
        if net.node(node).kind() != NodeKind::Output {
            continue;
        }
        if best.as_ref().is_none_or(|(_, t, _)| arrival.time > *t) {
            best = Some((node, arrival.time, arrival.edge));
        }
    }
    if let Some((node, _, edge)) = best {
        return Some((node, edge));
    }
    result
        .max_arrival()
        .map(|(node, arrival)| (node, arrival.edge))
}

fn check_against_reference(
    net: &Network,
    scenario: &Scenario,
    label: &str,
    fresh: &[(ModelKind, TimingResult)],
    config: &SelfCheckConfig,
) -> ReferenceOutcome {
    let trace = config.trace.as_deref();
    let _span = trace.map(|t| {
        let mut span = t.span(Phase::Check, "reference");
        span.field("scenario", label);
        span
    });
    // The output must switch under every audited model for the delays to
    // be comparable.
    let Some((_, first)) = fresh.first() else {
        return ReferenceOutcome::Skipped(format!("[{label}] no successful analysis"));
    };
    let Some((output, output_edge)) = pick_output(net, first) else {
        return ReferenceOutcome::Skipped(format!("[{label}] nothing switches"));
    };
    // When no downstream node switches, `pick_output` falls back to the
    // scenario's own trigger — comparing the forced input against itself
    // measures simulator edge placement, not a delay model.
    if output == scenario.input {
        return ReferenceOutcome::Skipped(format!(
            "[{label}] only the driven input itself switches"
        ));
    }
    let mut predictions: Vec<(ModelKind, Seconds)> = Vec::new();
    for (model, result) in fresh {
        match result.arrival(output) {
            Some(a) => predictions.push((*model, a.time)),
            None => {
                return ReferenceOutcome::Skipped(format!(
                    "[{label}] `{}` does not switch under {model}",
                    net.node(output).name()
                ))
            }
        }
    }

    // Transient window from the first model's own estimate, exactly the
    // shape the paper-evaluation harness uses (8× the predicted delay,
    // floor 10 ns, stretched for slow input ramps).
    let predicted = predictions
        .iter()
        .map(|(_, t)| t.value())
        .fold(0.0_f64, f64::max);
    let horizon = (8.0 * predicted)
        .max(10e-9)
        .max(4.0 * scenario.input_transition.value())
        + 2.0 * scenario.input_transition.value();
    let (tstop, dt) = (Seconds(horizon), Seconds(horizon / 4000.0));

    let models = &config.sim_models;
    let statics: HashMap<NodeId, f64> = scenario
        .statics
        .iter()
        .map(|(&n, &b)| (n, if b { models.vdd } else { 0.0 }))
        .collect();
    // The settled output level comes from a DC operating point at the
    // final input vector, making the 50% crossing immune to slow settling
    // tails (threshold-dropped pass outputs, ratioed lows).
    let mut final_levels = statics.clone();
    final_levels.insert(
        scenario.input,
        if scenario.edge == Edge::Rising {
            models.vdd
        } else {
            0.0
        },
    );
    // Sanity gates: the reference comparison is only meaningful when the
    // transient measurement itself is well-conditioned. A floating output
    // (cut off mid-scenario), a barely-swinging node (already near its
    // final level), or a crossing found only in the stretched simulation
    // tail all produce delays that measure the test setup, not the model
    // — those scenarios are recorded as skips, never as divergences.
    let mut before_levels: HashMap<NodeId, f64> = scenario
        .statics
        .iter()
        .map(|(&n, &b)| (n, if b { models.vdd } else { 0.0 }))
        .collect();
    before_levels.insert(
        scenario.input,
        if scenario.edge == Edge::Rising {
            0.0
        } else {
            models.vdd
        },
    );
    let v_before = match operating_voltages(net, models, &before_levels) {
        Ok(v) => v[output.index()],
        Err(e) => {
            return ReferenceOutcome::Skipped(format!(
                "[{label}] initial operating point failed: {e}"
            ))
        }
    };
    let v_after = match operating_voltages(net, models, &final_levels) {
        Ok(v) => v[output.index()],
        Err(e) => {
            return ReferenceOutcome::Skipped(format!(
                "[{label}] final operating point failed: {e}"
            ))
        }
    };
    if (v_after - v_before).abs() < 0.5 * models.vdd {
        return ReferenceOutcome::Skipped(format!(
            "[{label}] `{}` swings only {:.2} V (needs >= {:.2} V for a clean 50% crossing)",
            net.node(output).name(),
            (v_after - v_before).abs(),
            0.5 * models.vdd
        ));
    }
    let expected_final = Some(v_after);
    let spec = TransitionSpec {
        input: scenario.input,
        input_edge: match scenario.edge {
            Edge::Rising => SimEdge::Rising,
            Edge::Falling => SimEdge::Falling,
        },
        input_transition: scenario.input_transition,
        output,
        output_edge: match output_edge {
            Edge::Rising => SimEdge::Rising,
            Edge::Falling => SimEdge::Falling,
        },
        statics,
        expected_final,
    };
    let reference = match measure_transition(net, models, &spec, tstop, dt) {
        Ok(m) => m.delay,
        Err(e) => {
            return ReferenceOutcome::Skipped(format!("[{label}] reference simulation failed: {e}"))
        }
    };
    if reference.value() < 1e-12 {
        return ReferenceOutcome::Skipped(format!(
            "[{label}] reference delay below the 1 ps noise floor"
        ));
    }
    if reference.value() > 0.6 * tstop.value() {
        return ReferenceOutcome::Skipped(format!(
            "[{label}] reference crossing found only in the simulation tail \
             ({:.2} ns of a {:.2} ns window)",
            reference.nanos(),
            tstop.nanos()
        ));
    }

    let mut divergences = Vec::new();
    let mut checks = 0usize;
    for (model, mut predicted) in predictions {
        if let Some((inject_model, factor)) = config.inject_scale {
            if inject_model == model {
                predicted = Seconds(predicted.value() * factor);
            }
        }
        checks += 1;
        let percent_error = 100.0 * (predicted.value() - reference.value()) / reference.value();
        let band_pct = config.bands.band(model);
        if percent_error.abs() > band_pct {
            divergences.push(Divergence::Reference {
                scenario: label.to_string(),
                model,
                output: net.node(output).name().to_string(),
                predicted,
                reference,
                percent_error,
                band_pct,
            });
        }
    }
    ReferenceOutcome::Checked(divergences, checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosnet::generators::{carry_chain, inverter_chain, pass_chain, Style};
    use mosnet::units::Farads;

    /// The committed calibrated technology (generated once by
    /// `examples/calibrate_tech.rs` against `MosModelSet::default()`);
    /// reference-agreement checks are only meaningful against it.
    fn calibrated() -> Technology {
        crate::tech_format::parse(include_str!("../../../examples/netlists/calibrated.tech"))
            .expect("committed tech file parses")
    }

    /// The three seed circuits with their static-input requirements.
    fn seed_corpus() -> Vec<(&'static str, Network, HashMap<NodeId, bool>)> {
        let mut corpus = Vec::new();
        let chain = inverter_chain(Style::Cmos, 4, 1.5, Farads::from_femto(100.0)).unwrap();
        corpus.push(("inverter-chain", chain, HashMap::new()));
        let mesh = pass_chain(
            Style::Cmos,
            6,
            Farads::from_femto(50.0),
            Farads::from_femto(100.0),
        )
        .unwrap();
        let ctl = mesh.node_by_name("ctl").unwrap();
        corpus.push(("pass-mesh", mesh, HashMap::from([(ctl, true)])));
        let adder = carry_chain(Style::Cmos, 4, Farads::from_femto(60.0)).unwrap();
        let statics: HashMap<NodeId, bool> = adder
            .inputs()
            .into_iter()
            .map(|n| (n, adder.node(n).name().starts_with('p')))
            .collect();
        corpus.push(("adder", adder, statics));
        corpus
    }

    #[test]
    #[ignore = "probe"]
    fn probe_honest_errors() {
        let tech = calibrated();
        for (name, net, statics) in seed_corpus() {
            for tr in [0.0, 0.5, 2.0] {
                let scenarios = standard_scenarios(&net, &statics, Seconds::from_nanos(tr));
                let config = SelfCheckConfig {
                    reference_sample: usize::MAX,
                    bands: ToleranceBands {
                        slope_pct: 0.0,
                        rctree_pct: 0.0,
                        lumped_pct: 0.0,
                    },
                    ..SelfCheckConfig::default()
                };
                let report = check_network(&net, &tech, &scenarios, &config);
                for d in &report.divergences {
                    if matches!(d, Divergence::Reference { .. }) {
                        println!("{name} tr={tr} {d}");
                    }
                }
                for s in &report.skipped {
                    println!("{name} tr={tr} SKIP {s}");
                }
            }
        }
    }

    /// Sensitized scenario lists per seed circuit — the transitions whose
    /// transient measurement is well-conditioned, mirroring the
    /// hand-sensitized approach of `tests/accuracy.rs`. The adder's
    /// `cin fall` / `g* fall` transitions fight the ratioed restorer and
    /// are genuine (documented) model divergences, so they stay out of
    /// the pass/fail corpus.
    fn sensitized_scenarios(
        name: &str,
        net: &Network,
        statics: &HashMap<NodeId, bool>,
        input_transition: Seconds,
    ) -> Vec<(String, Scenario)> {
        let all = standard_scenarios(net, statics, input_transition);
        match name {
            "adder" => all
                .into_iter()
                .filter(|(label, _)| label == "cin rise")
                .collect(),
            // Pass-mesh `ctl fall` stays in deliberately: nothing
            // downstream switches, so it must come back as a skip, not a
            // divergence.
            _ => all,
        }
    }

    #[test]
    fn seed_corpus_passes_all_three_models() {
        let tech = calibrated();
        let mut total = SelfCheckReport::default();
        for (name, net, statics) in seed_corpus() {
            let scenarios = sensitized_scenarios(name, &net, &statics, Seconds::from_nanos(0.5));
            let config = SelfCheckConfig {
                reference_sample: 2,
                ..SelfCheckConfig::default()
            };
            let report = check_network(&net, &tech, &scenarios, &config);
            assert!(report.ok(), "{name} diverged:\n{}", report.render());
            assert!(report.checks_run > 0, "{name} ran no checks");
            total.merge(report);
        }
        assert!(
            total.checks_run > 20,
            "corpus too small: {}",
            total.checks_run
        );
    }

    #[test]
    fn injected_2x_lumped_is_flagged() {
        let tech = calibrated();
        // Pass-transistor chains are where honest lumped error runs
        // largest (+60..66%); doubling the prediction must clearly trip
        // the 80% band while slope and rc-tree stay honest and in-band.
        let net = pass_chain(
            Style::Cmos,
            6,
            Farads::from_femto(50.0),
            Farads::from_femto(100.0),
        )
        .unwrap();
        let ctl = net.node_by_name("ctl").unwrap();
        let statics = HashMap::from([(ctl, true)]);
        let input = net.node_by_name("in").unwrap();
        let scenarios: Vec<(String, Scenario)> =
            standard_scenarios(&net, &statics, Seconds::from_nanos(0.5))
                .into_iter()
                .filter(|(_, s)| s.input == input)
                .collect();
        let config = SelfCheckConfig {
            inject_scale: Some((ModelKind::Lumped, 2.0)),
            ..SelfCheckConfig::default()
        };
        let report = check_network(&net, &tech, &scenarios, &config);
        assert!(!report.ok(), "2x lumped injection went undetected");
        assert!(
            report.divergences.iter().any(|d| matches!(
                d,
                Divergence::Reference {
                    model: ModelKind::Lumped,
                    ..
                }
            )),
            "divergences blame the wrong model: {}",
            report.render()
        );
        // Only the injected model trips; slope and rc-tree stay clean.
        assert!(
            report.divergences.iter().all(
                |d| matches!(d, Divergence::Reference { model, .. } if *model == ModelKind::Lumped)
            ),
            "{}",
            report.render()
        );
    }

    #[test]
    fn trace_records_check_phase() {
        let tech = Technology::nominal();
        let net = inverter_chain(Style::Cmos, 2, 1.0, Farads::from_femto(50.0)).unwrap();
        let scenarios = standard_scenarios(&net, &HashMap::new(), Seconds::ZERO);
        let sink = Arc::new(TraceSink::new());
        let config = SelfCheckConfig {
            reference_sample: 1,
            trace: Some(Arc::clone(&sink)),
            ..SelfCheckConfig::default()
        };
        let report = check_network(&net, &tech, &scenarios, &config);
        let metrics = sink.metrics();
        assert_eq!(
            metrics.counter(Phase::Check, "comparisons"),
            report.checks_run as u64
        );
        assert!(metrics.phase_total_ns(Phase::Check) > 0);
    }

    #[test]
    fn incremental_sessions_match_full_analysis() {
        use mosnet::diff::Edit;
        use mosnet::Geometry;
        let tech = Technology::nominal();
        let net = carry_chain(Style::Cmos, 4, Farads::from_femto(60.0)).unwrap();
        let statics: HashMap<NodeId, bool> = net
            .inputs()
            .into_iter()
            .map(|n| (n, net.node(n).name().starts_with('p')))
            .collect();
        let scenarios: Vec<(String, Scenario)> =
            standard_scenarios(&net, &statics, Seconds::from_nanos(0.2))
                .into_iter()
                .filter(|(label, _)| label == "cin rise" || label == "g2 rise")
                .collect();
        assert_eq!(scenarios.len(), 2);
        let edits = vec![
            Edit::Resize {
                gate: "p2".into(),
                source: "c1".into(),
                drain: "c2".into(),
                geometry: Geometry::from_microns(6.0, 2.0),
            },
            Edit::SetCapacitance {
                node: "c3".into(),
                capacitance: Farads::from_femto(35.0),
            },
            Edit::Remove {
                gate: "g4".into(),
                source: "cout".into(),
                drain: "gnd".into(),
            },
        ];
        let config = SelfCheckConfig {
            threads: 4,
            ..SelfCheckConfig::default()
        };
        let report = check_incremental(&net, &tech, ModelKind::Slope, &scenarios, &edits, &config);
        assert!(report.ok(), "{}", report.render());
        // 4 session variants × 2 scenarios × (1 initial + 3 edits).
        assert_eq!(report.checks_run, 4 * 2 * 4);
    }

    #[test]
    fn report_render_names_divergences() {
        let mut report = SelfCheckReport {
            checks_run: 3,
            ..Default::default()
        };
        report.divergences.push(Divergence::Cache {
            scenario: "a rise".into(),
            model: ModelKind::Slope,
            pass: 2,
        });
        report.skipped.push("[b fall] nothing switches".into());
        let text = report.render();
        assert!(text.contains("1 divergences"), "{text}");
        assert!(text.contains("cached pass 2"), "{text}");
        assert!(text.contains("nothing switches"), "{text}");
        assert!(!report.ok());
    }
}
