//! A dependency-free work-stealing thread pool for the timing engine.
//!
//! The build environment is offline, so no `rayon`: this module provides
//! the small slice of data parallelism crystal needs — an ordered
//! parallel map over a slice — on plain [`std`] threads.
//!
//! Design:
//!
//! * workers are **persistent**: [`ThreadPool::new`] spawns `workers - 1`
//!   long-lived OS threads once, and every [`ThreadPool::map`] call hands
//!   them a batch over a condition-variable epoch instead of re-spawning.
//!   The analyzer calls `map` once per propagation round (tens of times
//!   per scenario), so per-call spawn/join was a real tax on small
//!   circuits; the calling thread always participates as worker 0, so a
//!   1-worker pool spawns nothing and degenerates to a serial loop;
//! * jobs (item indices) are pre-split into one contiguous deque per
//!   worker; a worker pops from the **front** of its own deque and, once
//!   empty, steals from the **back** of its siblings', so imbalanced
//!   workloads (one pathological scenario among many cheap ones) still
//!   keep every core busy;
//! * results carry their item index and are re-assembled in input order,
//!   so the output of [`ThreadPool::map`] is **bit-identical for any
//!   worker count** — the determinism guarantee the analyzer and batch
//!   runner build on;
//! * a panic inside the closure is caught on the worker, and the payload
//!   of the **lowest-indexed** panicking item is re-raised on the calling
//!   thread after every worker has drained — exactly what a serial
//!   left-to-right loop would have surfaced, so `catch_unwind` isolation
//!   in [`crate::batch`] keeps working unchanged.

use crate::obs::{Phase, TraceSink};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The number of hardware threads, with a serial fallback when the
/// platform cannot say.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a user-facing thread-count knob: `0` means "use every
/// hardware thread", anything else is taken literally (minimum 1).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_parallelism()
    } else {
        threads
    }
}

/// The batch handed to the persistent workers for one epoch: a type- and
/// lifetime-erased `Fn(worker_index)`. The pointee lives on the stack of
/// the `map` call that published it; erasure is sound because `map`
/// blocks until every worker has finished the epoch (and clears the
/// pointer) before its frame unwinds.
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize) + Sync));

// The pointee is `Sync` and the protocol guarantees it outlives every
// access, so shipping the pointer to the workers is safe.
unsafe impl Send for TaskRef {}

/// Epoch state shared between the submitting thread and the workers.
struct PoolState {
    /// Bumped once per batch; a worker runs the task when it observes an
    /// epoch it has not seen yet.
    epoch: u64,
    /// The current batch, present exactly while an epoch is in flight.
    task: Option<TaskRef>,
    /// Persistent workers still inside the current epoch.
    running: usize,
    /// Set by `Drop`; workers exit at the next wakeup.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between batches.
    work_ready: Condvar,
    /// The submitter parks here until `running` drains to zero.
    work_done: Condvar,
}

/// A configured worker count plus the machinery to fan a slice across it.
///
/// With more than one worker the pool owns `workers - 1` long-lived OS
/// threads; the thread calling [`ThreadPool::map`] is always worker 0.
/// Batches are serialized — the pool is not re-entrant, and a closure
/// running on the pool must not call back into the same pool instance
/// (the analyzer gives every analysis its own pool, and
/// [`crate::batch`] runs per-scenario analyses with an inner worker
/// count of 1, so this does not arise in practice).
pub struct ThreadPool {
    workers: usize,
    shared: Option<Arc<PoolShared>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Serializes `map` calls so epochs never overlap.
    submit: Mutex<()>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("workers", &self.workers)
            .finish()
    }
}

impl ThreadPool {
    /// A pool with exactly `workers` workers (clamped to at least 1).
    /// `0` resolves to the hardware thread count. Spawns `workers - 1`
    /// persistent threads; a 1-worker pool spawns none.
    pub fn new(workers: usize) -> ThreadPool {
        let workers = resolve_threads(workers).max(1);
        if workers <= 1 {
            return ThreadPool {
                workers,
                shared: None,
                handles: Vec::new(),
                submit: Mutex::new(()),
            };
        }
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                task: None,
                running: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (1..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("crystal-pool-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            workers,
            shared: Some(shared),
            handles,
            submit: Mutex::new(()),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `body(worker_index)` once on every worker (persistent workers
    /// plus the calling thread as worker 0) and returns after all of them
    /// finish. This is the sole point where the task reference crosses
    /// threads; see [`TaskRef`] for the lifetime argument.
    fn run_on_all(&self, body: &(dyn Fn(usize) + Sync)) {
        let Some(shared) = &self.shared else {
            body(0);
            return;
        };
        let _submit = self.submit.lock().expect("pool submit lock");
        // Erase the borrow's lifetime: the wait loop below guarantees no
        // worker holds the pointer once this function returns.
        let erased: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(body as *const (dyn Fn(usize) + Sync)) };
        {
            let mut state = shared.state.lock().expect("pool state lock");
            state.task = Some(TaskRef(erased));
            state.epoch += 1;
            state.running = self.handles.len();
            shared.work_ready.notify_all();
        }
        body(0);
        let mut state = shared.state.lock().expect("pool state lock");
        while state.running > 0 {
            state = shared.work_done.wait(state).expect("pool state lock");
        }
        state.task = None;
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**, regardless of which worker ran which item.
    ///
    /// # Panics
    /// If `f` panics for one or more items, the payload of the
    /// lowest-indexed panicking item is re-raised on the calling thread
    /// (matching what a serial loop would have done first).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let parts = self.workers.min(items.len());
        if parts <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let slots = self.fan_out(items.len(), parts, |i| {
            catch_unwind(AssertUnwindSafe(|| f(i, &items[i])))
        });
        collect_in_order(slots)
            .into_iter()
            .map(|s| s.expect("every index was executed"))
            .collect()
    }

    /// Like [`ThreadPool::map`], but checks `stop` before **starting**
    /// each item: once the flag is set, not-yet-started items are skipped
    /// and come back as `None`, while items already running are left to
    /// finish normally (their results are kept). This is the graceful
    /// drain the durable batch layer uses on shutdown — stop dispatching,
    /// finish in-flight work, lose nothing already computed.
    ///
    /// Results are in input order; a skipped item is `None`, a completed
    /// one `Some(r)`.
    ///
    /// # Panics
    /// As with [`ThreadPool::map`], the payload of the lowest-indexed
    /// panicking item is re-raised after all workers drain.
    pub fn map_until<T, R, F>(&self, items: &[T], stop: &AtomicBool, f: F) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let parts = self.workers.min(items.len());
        if parts <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    if stop.load(Ordering::Acquire) {
                        None
                    } else {
                        Some(f(i, t))
                    }
                })
                .collect();
        }
        let slots = self.fan_out(items.len(), parts, |i| {
            if stop.load(Ordering::Acquire) {
                None
            } else {
                Some(catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))))
            }
        });
        collect_in_order(slots.into_iter().map(Option::flatten).collect())
    }

    /// The shared fan-out: splits `0..len` into per-worker deques, runs
    /// `job` for every index across the workers (stealing included), and
    /// returns the raw per-index outcomes in input order (`None` for an
    /// index no worker produced — only possible when `job` itself chose
    /// to return nothing, as in the drained tail of `map_until`).
    fn fan_out<R, J>(&self, len: usize, parts: usize, job: J) -> Vec<Option<R>>
    where
        R: Send,
        J: Fn(usize) -> R + Sync,
    {
        // One deque of item indices per participating worker, pre-filled
        // with contiguous chunks so unstolen work retains memory locality.
        let queues: Vec<Mutex<VecDeque<usize>>> = split_indices(len, parts)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
        self.run_on_all(&|w: usize| {
            // With fewer items than workers the surplus workers sit the
            // epoch out (their deques do not exist).
            if w >= parts {
                return;
            }
            let mut local: Vec<(usize, R)> = Vec::new();
            while let Some(i) = next_job(&queues, w) {
                local.push((i, job(i)));
            }
            if !local.is_empty() {
                collected
                    .lock()
                    .expect("pool results lock")
                    .append(&mut local);
            }
        });
        let mut slots: Vec<Option<R>> = (0..len).map(|_| None).collect();
        for (i, r) in collected.into_inner().expect("pool results lock") {
            slots[i] = Some(r);
        }
        slots
    }

    /// [`ThreadPool::map`] wrapped in a [`Phase::Pool`] span recording
    /// the fan-out envelope (worker count, item count, wall time) into
    /// `trace`. With `trace = None` this is exactly `map`.
    pub fn map_traced<T, R, F>(
        &self,
        trace: Option<&TraceSink>,
        label: &str,
        items: &[T],
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let _span = trace.map(|t| {
            let mut span = t.span(Phase::Pool, label.to_string());
            span.field("workers", self.workers.min(items.len().max(1)));
            span.field("items", items.len());
            span
        });
        self.map(items, f)
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.state.lock().expect("pool state lock").shutdown = true;
            shared.work_ready.notify_all();
            for handle in self.handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

impl Default for ThreadPool {
    fn default() -> ThreadPool {
        ThreadPool::new(0)
    }
}

/// The persistent worker body: wait for a new epoch (or shutdown), run
/// the batch once, report done, repeat.
fn worker_loop(shared: &PoolShared, id: usize) {
    let mut seen = 0u64;
    loop {
        let task = {
            let mut state = shared.state.lock().expect("pool state lock");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen {
                    seen = state.epoch;
                    break state.task.expect("task set while epoch is in flight");
                }
                state = shared.work_ready.wait(state).expect("pool state lock");
            }
        };
        // Item panics are already caught inside the batch closure; this
        // outer catch is defense in depth so a worker can never die while
        // holding the epoch open (which would deadlock the submitter).
        let _ = catch_unwind(AssertUnwindSafe(|| unsafe { (&*task.0)(id) }));
        let mut state = shared.state.lock().expect("pool state lock");
        state.running -= 1;
        if state.running == 0 {
            shared.work_done.notify_all();
        }
    }
}

type Caught = Box<dyn std::any::Any + Send + 'static>;

/// Unwraps per-index `catch_unwind` outcomes, re-raising the payload of
/// the lowest-indexed panic (matching serial left-to-right order).
fn collect_in_order<R>(mut slots: Vec<Option<Result<R, Caught>>>) -> Vec<Option<R>> {
    if let Some(first_panic) = slots.iter().position(|s| matches!(s, Some(Err(_)))) {
        match slots.swap_remove(first_panic) {
            Some(Err(payload)) => resume_unwind(payload),
            _ => unreachable!("position() found an Err slot"),
        }
    }
    slots
        .into_iter()
        .map(|s| match s {
            None => None,
            Some(Ok(r)) => Some(r),
            Some(Err(_)) => unreachable!("panics re-raised above"),
        })
        .collect()
}

/// Splits `0..len` into `workers` contiguous runs (sizes differing by at
/// most one).
fn split_indices(len: usize, workers: usize) -> Vec<VecDeque<usize>> {
    let base = len / workers;
    let extra = len % workers;
    let mut start = 0;
    (0..workers)
        .map(|w| {
            let size = base + usize::from(w < extra);
            let q: VecDeque<usize> = (start..start + size).collect();
            start += size;
            q
        })
        .collect()
}

/// Pops the next job for worker `w`: front of its own deque, else steal
/// from the back of a sibling's. Returns `None` when every deque is empty
/// — no job spawns further jobs, so empty-everywhere is terminal.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("queue lock").pop_front() {
        return Some(i);
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = (w + offset) % n;
        if let Some(i) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order_for_any_worker_count() {
        let items: Vec<usize> = (0..100).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for workers in [1, 2, 3, 4, 8] {
            let pool = ThreadPool::new(workers);
            let got = pool.map(&items, |_, &x| x * 3);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn map_handles_tiny_inputs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.map(&[] as &[usize], |_, &x| x), Vec::<usize>::new());
        assert_eq!(pool.map(&[7usize], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..64).collect();
        ThreadPool::new(4).map(&items, |_, &i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn workers_are_reused_across_map_calls() {
        // The whole point of the persistent pool: back-to-back batches on
        // one instance (the analyzer runs one per propagation round) are
        // served by the same worker set, and every batch stays correct.
        let pool = ThreadPool::new(4);
        for round in 0..50usize {
            let items: Vec<usize> = (0..round + 1).collect();
            let got = pool.map(&items, |_, &x| x + round);
            let expect: Vec<usize> = items.iter().map(|&x| x + round).collect();
            assert_eq!(got, expect, "round {round}");
        }
    }

    #[test]
    fn unbalanced_work_is_stolen() {
        // One expensive item at the front of worker 0's chunk: the rest of
        // the chunk must be stolen while worker 0 grinds. We can't observe
        // the stealing directly, but the run must complete with correct
        // results (a non-stealing pool with per-worker fixed chunks also
        // passes; this is a smoke check that heavy skew is safe).
        let items: Vec<u64> = (0..32).map(|i| if i == 0 { 200_000 } else { 10 }).collect();
        let got = ThreadPool::new(4).map(&items, |_, &spin| {
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k ^ (acc << 1));
            }
            std::hint::black_box(acc);
            spin
        });
        assert_eq!(got, items);
    }

    #[test]
    fn lowest_index_panic_wins() {
        let items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            ThreadPool::new(4).map(&items, |_, &i| {
                if i == 5 || i == 20 {
                    panic!("boom {i}");
                }
                i
            })
        });
        let payload = result.expect_err("panic propagates");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(message, "boom 5");
    }

    #[test]
    fn pool_survives_a_panicking_batch() {
        // A panic re-raised on the caller must leave the persistent
        // workers parked and healthy for the next batch.
        let pool = ThreadPool::new(3);
        let items: Vec<usize> = (0..16).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map(&items, |_, &i| {
                if i == 2 {
                    panic!("boom");
                }
                i
            })
        }));
        assert!(result.is_err());
        let got = pool.map(&items, |_, &x| x * 2);
        let expect: Vec<usize> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn map_until_with_clear_flag_matches_map() {
        let items: Vec<usize> = (0..40).collect();
        let stop = AtomicBool::new(false);
        for workers in [1, 4] {
            let got = ThreadPool::new(workers).map_until(&items, &stop, |_, &x| x * 2);
            let expect: Vec<Option<usize>> = items.iter().map(|&x| Some(x * 2)).collect();
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn map_until_skips_everything_when_pre_stopped() {
        let items: Vec<usize> = (0..16).collect();
        let stop = AtomicBool::new(true);
        for workers in [1, 4] {
            let got = ThreadPool::new(workers).map_until(&items, &stop, |_, &x| x);
            assert!(got.iter().all(Option::is_none), "workers={workers}");
        }
    }

    #[test]
    fn map_until_stops_dispatching_after_flag_fires() {
        // The third item sets the flag; with one worker the remaining
        // items must be skipped, while everything before it completed.
        let items: Vec<usize> = (0..10).collect();
        let stop = AtomicBool::new(false);
        let got = ThreadPool::new(1).map_until(&items, &stop, |i, &x| {
            if i == 2 {
                stop.store(true, Ordering::Release);
            }
            x
        });
        assert_eq!(got[0], Some(0));
        assert_eq!(got[1], Some(1));
        assert_eq!(got[2], Some(2));
        assert!(got[3..].iter().all(Option::is_none));
    }

    #[test]
    fn zero_resolves_to_hardware_threads() {
        assert_eq!(ThreadPool::new(0).workers(), available_parallelism());
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn split_covers_all_indices() {
        for len in [0usize, 1, 5, 16, 17] {
            for workers in [1usize, 2, 3, 7] {
                let qs = split_indices(len, workers);
                let mut all: Vec<usize> = qs.iter().flatten().copied().collect();
                all.sort_unstable();
                assert_eq!(all, (0..len).collect::<Vec<_>>());
            }
        }
    }
}
