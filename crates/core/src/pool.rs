//! A dependency-free work-stealing thread pool for the timing engine.
//!
//! The build environment is offline, so no `rayon`: this module provides
//! the small slice of data parallelism crystal needs — an ordered
//! parallel map over a slice — on plain [`std::thread::scope`] workers.
//!
//! Design:
//!
//! * jobs (item indices) are pre-split into one contiguous deque per
//!   worker; a worker pops from the **front** of its own deque and, once
//!   empty, steals from the **back** of its siblings', so imbalanced
//!   workloads (one pathological scenario among many cheap ones) still
//!   keep every core busy;
//! * results carry their item index and are re-assembled in input order,
//!   so the output of [`ThreadPool::map`] is **bit-identical for any
//!   worker count** — the determinism guarantee the analyzer and batch
//!   runner build on;
//! * a panic inside the closure is caught on the worker, and the payload
//!   of the **lowest-indexed** panicking item is re-raised on the calling
//!   thread after every worker has drained — exactly what a serial
//!   left-to-right loop would have surfaced, so `catch_unwind` isolation
//!   in [`crate::batch`] keeps working unchanged.

use crate::obs::{Phase, TraceSink};
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The number of hardware threads, with a serial fallback when the
/// platform cannot say.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a user-facing thread-count knob: `0` means "use every
/// hardware thread", anything else is taken literally (minimum 1).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        available_parallelism()
    } else {
        threads
    }
}

/// A configured worker count plus the machinery to fan a slice across it.
///
/// The pool is scoped: workers are spawned per [`ThreadPool::map`] call
/// with [`std::thread::scope`], so closures may borrow from the caller's
/// stack freely and no worker outlives the call. For the coarse jobs this
/// workspace runs (whole timing scenarios, whole stage extractions) the
/// spawn cost is noise; what matters is the stealing, which keeps the
/// last slow job from serializing the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// A pool with exactly `workers` workers (clamped to at least 1).
    /// `0` resolves to the hardware thread count.
    pub fn new(workers: usize) -> ThreadPool {
        ThreadPool {
            workers: resolve_threads(workers).max(1),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f` to every item and returns the results **in input
    /// order**, regardless of which worker ran which item.
    ///
    /// # Panics
    /// If `f` panics for one or more items, the payload of the
    /// lowest-indexed panicking item is re-raised on the calling thread
    /// (matching what a serial loop would have done first).
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.workers.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }

        // One deque of item indices per worker, pre-filled with contiguous
        // chunks so unstolen work retains memory locality.
        let queues: Vec<Mutex<VecDeque<usize>>> = split_indices(items.len(), workers)
            .into_iter()
            .map(Mutex::new)
            .collect();

        type Caught = Box<dyn std::any::Any + Send + 'static>;
        let mut slots: Vec<Option<Result<R, Caught>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let f = &f;
                    s.spawn(move || {
                        let mut out: Vec<(usize, Result<R, Caught>)> = Vec::new();
                        while let Some(i) = next_job(queues, w) {
                            out.push((i, catch_unwind(AssertUnwindSafe(|| f(i, &items[i])))));
                        }
                        out
                    })
                })
                .collect();
            let mut slots: Vec<Option<Result<R, Caught>>> =
                (0..items.len()).map(|_| None).collect();
            for handle in handles {
                // A worker thread itself cannot panic: the closure runs
                // under catch_unwind. join() errors are thus unreachable.
                for (i, r) in handle.join().expect("worker threads never panic") {
                    slots[i] = Some(r);
                }
            }
            slots
        });

        // Re-raise the earliest panic, matching serial left-to-right order.
        if let Some(first_panic) = slots.iter().position(|s| matches!(s, Some(Err(_)))) {
            match slots.swap_remove(first_panic) {
                Some(Err(payload)) => resume_unwind(payload),
                _ => unreachable!("position() found an Err slot"),
            }
        }
        slots
            .into_iter()
            .map(|s| match s.expect("every index was executed") {
                Ok(r) => r,
                Err(_) => unreachable!("panics re-raised above"),
            })
            .collect()
    }

    /// Like [`ThreadPool::map`], but checks `stop` before **starting**
    /// each item: once the flag is set, not-yet-started items are skipped
    /// and come back as `None`, while items already running are left to
    /// finish normally (their results are kept). This is the graceful
    /// drain the durable batch layer uses on shutdown — stop dispatching,
    /// finish in-flight work, lose nothing already computed.
    ///
    /// Results are in input order; a skipped item is `None`, a completed
    /// one `Some(r)`.
    ///
    /// # Panics
    /// As with [`ThreadPool::map`], the payload of the lowest-indexed
    /// panicking item is re-raised after all workers drain.
    pub fn map_until<T, R, F>(&self, items: &[T], stop: &AtomicBool, f: F) -> Vec<Option<R>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.workers.min(items.len());
        if workers <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| {
                    if stop.load(Ordering::Acquire) {
                        None
                    } else {
                        Some(f(i, t))
                    }
                })
                .collect();
        }

        let queues: Vec<Mutex<VecDeque<usize>>> = split_indices(items.len(), workers)
            .into_iter()
            .map(Mutex::new)
            .collect();

        type Caught = Box<dyn std::any::Any + Send + 'static>;
        let mut slots: Vec<Option<Result<R, Caught>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queues = &queues;
                    let f = &f;
                    s.spawn(move || {
                        let mut out: Vec<(usize, Result<R, Caught>)> = Vec::new();
                        while !stop.load(Ordering::Acquire) {
                            let Some(i) = next_job(queues, w) else { break };
                            out.push((i, catch_unwind(AssertUnwindSafe(|| f(i, &items[i])))));
                        }
                        out
                    })
                })
                .collect();
            let mut slots: Vec<Option<Result<R, Caught>>> =
                (0..items.len()).map(|_| None).collect();
            for handle in handles {
                for (i, r) in handle.join().expect("worker threads never panic") {
                    slots[i] = Some(r);
                }
            }
            slots
        });

        if let Some(first_panic) = slots.iter().position(|s| matches!(s, Some(Err(_)))) {
            match slots.swap_remove(first_panic) {
                Some(Err(payload)) => resume_unwind(payload),
                _ => unreachable!("position() found an Err slot"),
            }
        }
        slots
            .into_iter()
            .map(|s| match s {
                None => None,
                Some(Ok(r)) => Some(r),
                Some(Err(_)) => unreachable!("panics re-raised above"),
            })
            .collect()
    }

    /// [`ThreadPool::map`] wrapped in a [`Phase::Pool`] span recording
    /// the fan-out envelope (worker count, item count, wall time) into
    /// `trace`. With `trace = None` this is exactly `map`.
    pub fn map_traced<T, R, F>(
        &self,
        trace: Option<&TraceSink>,
        label: &str,
        items: &[T],
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let _span = trace.map(|t| {
            let mut span = t.span(Phase::Pool, label.to_string());
            span.field("workers", self.workers.min(items.len().max(1)));
            span.field("items", items.len());
            span
        });
        self.map(items, f)
    }
}

impl Default for ThreadPool {
    fn default() -> ThreadPool {
        ThreadPool::new(0)
    }
}

/// Splits `0..len` into `workers` contiguous runs (sizes differing by at
/// most one).
fn split_indices(len: usize, workers: usize) -> Vec<VecDeque<usize>> {
    let base = len / workers;
    let extra = len % workers;
    let mut start = 0;
    (0..workers)
        .map(|w| {
            let size = base + usize::from(w < extra);
            let q: VecDeque<usize> = (start..start + size).collect();
            start += size;
            q
        })
        .collect()
}

/// Pops the next job for worker `w`: front of its own deque, else steal
/// from the back of a sibling's. Returns `None` when every deque is empty
/// — no job spawns further jobs, so empty-everywhere is terminal.
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("queue lock").pop_front() {
        return Some(i);
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = (w + offset) % n;
        if let Some(i) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order_for_any_worker_count() {
        let items: Vec<usize> = (0..100).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3).collect();
        for workers in [1, 2, 3, 4, 8] {
            let pool = ThreadPool::new(workers);
            let got = pool.map(&items, |_, &x| x * 3);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn map_handles_tiny_inputs() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.map(&[] as &[usize], |_, &x| x), Vec::<usize>::new());
        assert_eq!(pool.map(&[7usize], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..64).collect();
        ThreadPool::new(4).map(&items, |_, &i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "item {i}");
        }
    }

    #[test]
    fn unbalanced_work_is_stolen() {
        // One expensive item at the front of worker 0's chunk: the rest of
        // the chunk must be stolen while worker 0 grinds. We can't observe
        // the stealing directly, but the run must complete with correct
        // results (a non-stealing pool with per-worker fixed chunks also
        // passes; this is a smoke check that heavy skew is safe).
        let items: Vec<u64> = (0..32).map(|i| if i == 0 { 200_000 } else { 10 }).collect();
        let got = ThreadPool::new(4).map(&items, |_, &spin| {
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k ^ (acc << 1));
            }
            std::hint::black_box(acc);
            spin
        });
        assert_eq!(got, items);
    }

    #[test]
    fn lowest_index_panic_wins() {
        let items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            ThreadPool::new(4).map(&items, |_, &i| {
                if i == 5 || i == 20 {
                    panic!("boom {i}");
                }
                i
            })
        });
        let payload = result.expect_err("panic propagates");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(message, "boom 5");
    }

    #[test]
    fn map_until_with_clear_flag_matches_map() {
        let items: Vec<usize> = (0..40).collect();
        let stop = AtomicBool::new(false);
        for workers in [1, 4] {
            let got = ThreadPool::new(workers).map_until(&items, &stop, |_, &x| x * 2);
            let expect: Vec<Option<usize>> = items.iter().map(|&x| Some(x * 2)).collect();
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn map_until_skips_everything_when_pre_stopped() {
        let items: Vec<usize> = (0..16).collect();
        let stop = AtomicBool::new(true);
        for workers in [1, 4] {
            let got = ThreadPool::new(workers).map_until(&items, &stop, |_, &x| x);
            assert!(got.iter().all(Option::is_none), "workers={workers}");
        }
    }

    #[test]
    fn map_until_stops_dispatching_after_flag_fires() {
        // The third item sets the flag; with one worker the remaining
        // items must be skipped, while everything before it completed.
        let items: Vec<usize> = (0..10).collect();
        let stop = AtomicBool::new(false);
        let got = ThreadPool::new(1).map_until(&items, &stop, |i, &x| {
            if i == 2 {
                stop.store(true, Ordering::Release);
            }
            x
        });
        assert_eq!(got[0], Some(0));
        assert_eq!(got[1], Some(1));
        assert_eq!(got[2], Some(2));
        assert!(got[3..].iter().all(Option::is_none));
    }

    #[test]
    fn zero_resolves_to_hardware_threads() {
        assert_eq!(ThreadPool::new(0).workers(), available_parallelism());
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn split_covers_all_indices() {
        for len in [0usize, 1, 5, 16, 17] {
            for workers in [1usize, 2, 3, 7] {
                let qs = split_indices(len, workers);
                let mut all: Vec<usize> = qs.iter().flatten().copied().collect();
                all.sort_unstable();
                assert_eq!(all, (0..len).collect::<Vec<_>>());
            }
        }
    }
}
