//! Plain-text serialization for [`Technology`] — lets a calibration run
//! be saved once and reused by the CLI and experiments.
//!
//! The format is line-oriented and self-describing:
//!
//! ```text
//! # comment
//! technology <name>
//! vdd <volts>
//! cox <F/m^2>
//! cj <F/m>
//! drive <kind> <direction> r_square <ohms>
//! reff <kind> <direction> <ratio> <multiplier>
//! tout <kind> <direction> <ratio> <multiplier>
//! ```
//!
//! `kind ∈ {n, p, d}`, `direction ∈ {up, down}`. Every (kind, direction)
//! pair must have a `drive` line and at least one `reff` and `tout` point.

use crate::error::TimingError;
use crate::tech::{Direction, DriveParams, SlopeTable, Technology};
use mosnet::units::{Ohms, Volts};
use mosnet::TransistorKind;
use std::fmt::Write as _;

fn kind_code(kind: TransistorKind) -> char {
    kind.code()
}

fn direction_code(direction: Direction) -> &'static str {
    match direction {
        Direction::PullUp => "up",
        Direction::PullDown => "down",
    }
}

fn parse_kind(text: &str) -> Option<TransistorKind> {
    text.chars().next().and_then(TransistorKind::from_code)
}

fn parse_direction(text: &str) -> Option<Direction> {
    match text {
        "up" => Some(Direction::PullUp),
        "down" => Some(Direction::PullDown),
        _ => None,
    }
}

/// Serializes a technology to the text format above.
pub fn write(tech: &Technology) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# crystal technology file");
    let _ = writeln!(out, "technology {}", tech.name);
    let _ = writeln!(out, "vdd {}", tech.vdd.value());
    let _ = writeln!(out, "cox {}", tech.cox_per_area);
    let _ = writeln!(out, "cj {}", tech.cj_per_width);
    for kind in TransistorKind::ALL {
        for direction in Direction::ALL {
            let d = tech.drive(kind, direction);
            let (k, dir) = (kind_code(kind), direction_code(direction));
            let _ = writeln!(out, "drive {k} {dir} r_square {}", d.r_square.value());
            for &(ratio, value) in d.reff.points() {
                let _ = writeln!(out, "reff {k} {dir} {ratio} {value}");
            }
            for &(ratio, value) in d.tout.points() {
                let _ = writeln!(out, "tout {k} {dir} {ratio} {value}");
            }
        }
    }
    out
}

/// Parses a technology file produced by [`write()`] (or hand-written in
/// the same format).
///
/// # Errors
/// Returns [`TimingError::BadParameter`] with a line and column for
/// malformed records (NaN, infinite, or out-of-range values included),
/// and for missing `drive`/`reff`/`tout` coverage of any
/// (kind, direction) pair.
pub fn parse(source: &str) -> Result<Technology, TimingError> {
    let mut tech = Technology::nominal();
    let mut r_square = [[None::<f64>; 2]; 3];
    let mut reff_points: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 6];
    let mut tout_points: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 6];

    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let text = raw.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = text.split_whitespace().collect();
        let cols = field_columns(raw);
        let bad = |field: usize, message: String| TimingError::BadParameter {
            message: format!(
                "technology file line {line}, column {column}: {message}",
                column = cols.get(field).copied().unwrap_or(1)
            ),
        };
        match fields[0] {
            "technology" => {
                tech.name = fields.get(1..).map(|f| f.join(" ")).unwrap_or_default();
                if tech.name.is_empty() {
                    return Err(bad(0, "technology needs a name".into()));
                }
            }
            "vdd" | "cox" | "cj" => {
                let value: f64 = fields
                    .get(1)
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad(1, format!("{} needs a number", fields[0])))?;
                if !(value > 0.0 && value.is_finite()) {
                    return Err(bad(
                        1,
                        format!("{} must be positive, got {value}", fields[0]),
                    ));
                }
                match fields[0] {
                    "vdd" => tech.vdd = Volts(value),
                    "cox" => tech.cox_per_area = value,
                    _ => tech.cj_per_width = value,
                }
            }
            "drive" => {
                if fields.len() != 5 || fields[3] != "r_square" {
                    return Err(bad(0, "expected: drive <k> <dir> r_square <ohms>".into()));
                }
                let kind = parse_kind(fields[1])
                    .ok_or_else(|| bad(1, format!("unknown kind `{}`", fields[1])))?;
                let direction = parse_direction(fields[2])
                    .ok_or_else(|| bad(2, format!("unknown direction `{}`", fields[2])))?;
                let value: f64 = fields[4]
                    .parse()
                    .map_err(|_| bad(4, "cannot parse resistance".into()))?;
                if !(value > 0.0 && value.is_finite()) {
                    return Err(bad(4, format!("resistance must be positive, got {value}")));
                }
                r_square[kind.index()][direction.index()] = Some(value);
            }
            table @ ("reff" | "tout") => {
                if fields.len() != 5 {
                    return Err(bad(
                        0,
                        format!("expected: {table} <k> <dir> <ratio> <value>"),
                    ));
                }
                let kind = parse_kind(fields[1])
                    .ok_or_else(|| bad(1, format!("unknown kind `{}`", fields[1])))?;
                let direction = parse_direction(fields[2])
                    .ok_or_else(|| bad(2, format!("unknown direction `{}`", fields[2])))?;
                let ratio: f64 = fields[3]
                    .parse()
                    .map_err(|_| bad(3, "cannot parse ratio".into()))?;
                if !(ratio >= 0.0 && ratio.is_finite()) {
                    return Err(bad(3, format!("ratio must be non-negative, got {ratio}")));
                }
                let value: f64 = fields[4]
                    .parse()
                    .map_err(|_| bad(4, "cannot parse value".into()))?;
                if !(value > 0.0 && value.is_finite()) {
                    return Err(bad(
                        4,
                        format!("{table} value must be positive, got {value}"),
                    ));
                }
                let slot = kind.index() * 2 + direction.index();
                if table == "reff" {
                    reff_points[slot].push((ratio, value));
                } else {
                    tout_points[slot].push((ratio, value));
                }
            }
            other => return Err(bad(0, format!("unknown record `{other}`"))),
        }
    }

    for kind in TransistorKind::ALL {
        for direction in Direction::ALL {
            let slot = kind.index() * 2 + direction.index();
            let missing = |what: &str| TimingError::BadParameter {
                message: format!(
                    "technology file lacks {what} for {kind} {}",
                    direction_code(direction)
                ),
            };
            let r = r_square[kind.index()][direction.index()]
                .ok_or_else(|| missing("a drive record"))?;
            let mut reff = std::mem::take(&mut reff_points[slot]);
            let mut tout = std::mem::take(&mut tout_points[slot]);
            if reff.is_empty() {
                return Err(missing("reff points"));
            }
            if tout.is_empty() {
                return Err(missing("tout points"));
            }
            reff.sort_by(|a, b| a.0.total_cmp(&b.0));
            tout.sort_by(|a, b| a.0.total_cmp(&b.0));
            tech.set_drive(
                kind,
                direction,
                DriveParams {
                    r_square: Ohms(r),
                    reff: SlopeTable::new(reff)?,
                    tout: SlopeTable::new(tout)?,
                },
            );
        }
    }
    Ok(tech)
}

/// 1-based byte column of each whitespace-separated field in `text`.
fn field_columns(text: &str) -> Vec<usize> {
    let mut cols = Vec::new();
    let mut in_token = false;
    for (i, c) in text.char_indices() {
        if c.is_whitespace() {
            in_token = false;
        } else if !in_token {
            in_token = true;
            cols.push(i + 1);
        }
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let mut original = Technology::nominal();
        original.name = "roundtrip-test".into();
        original.vdd = Volts(3.3);
        let text = write(&original);
        let parsed = parse(&text).expect("own output parses");
        assert_eq!(parsed, original);
    }

    #[test]
    fn reports_line_numbers() {
        let text = "technology t\nvdd nope\n";
        match parse(text) {
            Err(TimingError::BadParameter { message }) => {
                assert!(message.contains("line 2, column 5"), "{message}");
            }
            other => panic!("expected BadParameter, got {other:?}"),
        }
    }

    #[test]
    fn rejects_nan_and_infinite_table_points() {
        // A NaN ratio used to panic in the sort instead of erroring.
        match parse("reff n up NaN 2.0\n") {
            Err(TimingError::BadParameter { message }) => {
                assert!(message.contains("column 11"), "{message}");
                assert!(message.contains("non-negative"), "{message}");
            }
            other => panic!("expected BadParameter, got {other:?}"),
        }
        assert!(parse("reff n up 1.0 inf\n").is_err());
        assert!(parse("tout n up 1.0 NaN\n").is_err());
        assert!(parse("tout n up -1 2.0\n").is_err());
        assert!(parse("tout n up 1.0 0\n").is_err());
        assert!(parse("vdd NaN\n").is_err());
    }

    #[test]
    fn detects_missing_coverage() {
        // Header only: every drive record missing.
        let text = "technology t\nvdd 5\ncox 7e-4\ncj 1e-9\n";
        match parse(text) {
            Err(TimingError::BadParameter { message }) => {
                assert!(message.contains("lacks a drive record"), "{message}");
            }
            other => panic!("expected BadParameter, got {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_records_and_kinds() {
        assert!(parse("frobnicate 1\n").is_err());
        assert!(parse("drive z up r_square 100\n").is_err());
        assert!(parse("drive n sideways r_square 100\n").is_err());
        assert!(parse("drive n up r_square -5\n").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored_and_points_sorted() {
        let mut text = String::from("# header\n\ntechnology t\nvdd 5\ncox 7e-4\ncj 1e-9\n");
        for k in ["n", "p", "d"] {
            for d in ["up", "down"] {
                text.push_str(&format!("drive {k} {d} r_square 1000\n"));
                // Deliberately out of order.
                text.push_str(&format!("reff {k} {d} 4 2.0\nreff {k} {d} 0 1.0\n"));
                text.push_str(&format!("tout {k} {d} 0 2.2\n"));
            }
        }
        let tech = parse(&text).expect("parses");
        let d = tech.drive(TransistorKind::NEnhancement, Direction::PullUp);
        assert!((d.reff.eval(2.0) - 1.5).abs() < 1e-12);
    }
}
