//! Charge-sharing analysis for dynamic (pass-transistor) nodes.
//!
//! When a pass transistor turns on and connects a small floating node that
//! stores a logic value to a larger discharged (or charged) floating
//! network, the stored charge redistributes:
//!
//! ```text
//! v_after = Σ C_i·v_i / Σ C_i
//! ```
//!
//! and the stored value can droop past the switching threshold — a
//! functional failure that switch-level timing alone does not see. This
//! module enumerates the charge-sharing events a single transistor
//! turn-on could cause in a given state, the companion check tools of the
//! Crystal generation shipped alongside delay analysis.

use crate::logic::{self, LogicValue};
use crate::tech::Technology;
use mosnet::{Network, NodeId, TransistorId};
use std::collections::HashMap;

/// One potential charge-sharing event.
#[derive(Debug, Clone, PartialEq)]
pub struct ChargeSharingEvent {
    /// The transistor whose turn-on merges the two floating groups.
    pub transistor: TransistorId,
    /// Nodes of the merged group, sorted by id.
    pub group: Vec<NodeId>,
    /// Node whose stored value droops the most.
    pub victim: NodeId,
    /// Victim voltage before the merge (volts).
    pub v_before: f64,
    /// Post-redistribution voltage of the merged group (volts).
    pub v_after: f64,
}

impl ChargeSharingEvent {
    /// Magnitude of the victim's voltage change (volts).
    pub fn droop(&self) -> f64 {
        (self.v_before - self.v_after).abs()
    }
}

/// Finds the floating channel group containing `start` under the current
/// conduction state. Returns `None` if the group touches a rail or an
/// externally driven node (such a group cannot float).
fn floating_group(net: &Network, state: &logic::LogicState, start: NodeId) -> Option<Vec<NodeId>> {
    let mut group = vec![start];
    let mut seen = vec![false; net.node_count()];
    seen[start.index()] = true;
    let mut queue = vec![start];
    while let Some(n) = queue.pop() {
        if net.node(n).kind().is_driven_externally() {
            return None;
        }
        for &tid in net.channel_neighbors(n) {
            if !state.transistor_on(net, tid) {
                continue;
            }
            let other = net.transistor(tid).other_terminal(n);
            if seen[other.index()] {
                continue;
            }
            seen[other.index()] = true;
            group.push(other);
            queue.push(other);
        }
    }
    group.sort();
    Some(group)
}

/// Stored voltage of a floating node: its logic value if the relaxation
/// knows it, else the caller-supplied assumption, else `None`.
fn stored_voltage(
    state: &logic::LogicState,
    stored: &HashMap<NodeId, bool>,
    node: NodeId,
    vdd: f64,
) -> Option<f64> {
    match state.value(node) {
        LogicValue::One => Some(vdd),
        LogicValue::Zero => Some(0.0),
        LogicValue::X => stored.get(&node).map(|&b| if b { vdd } else { 0.0 }),
    }
}

/// Enumerates the charge-sharing events that turning on any single
/// currently-off transistor would cause in the state reached with
/// `inputs`, keeping events whose victim droops by more than
/// `threshold_fraction × vdd`.
///
/// `stored` supplies assumed values for floating (X) nodes — the charge
/// they retained from earlier operation; floating nodes without an
/// assumption are skipped (nothing to corrupt).
pub fn charge_sharing_events(
    net: &Network,
    tech: &Technology,
    inputs: &HashMap<NodeId, bool>,
    stored: &HashMap<NodeId, bool>,
    threshold_fraction: f64,
) -> Vec<ChargeSharingEvent> {
    let state = logic::solve(net, inputs);
    let vdd = tech.vdd.value();
    let mut events = Vec::new();

    for (tid, t) in net.transistors() {
        if state.transistor_on(net, tid) {
            continue; // already conducting — nothing new happens
        }
        let (a, b) = (t.source(), t.drain());
        let group_a = floating_group(net, &state, a);
        let group_b = floating_group(net, &state, b);
        // Charge sharing needs both sides floating; a driven side rewrites
        // the other (a normal write, handled by timing analysis).
        let (Some(group_a), Some(group_b)) = (group_a, group_b) else {
            continue;
        };
        if group_a.contains(&b) {
            continue; // already the same group through another path
        }

        let mut total_c = 0.0;
        let mut total_q = 0.0;
        let mut known = true;
        for node in group_a.iter().chain(&group_b) {
            let c = tech.node_capacitance(net, *node).value();
            match stored_voltage(&state, stored, *node, vdd) {
                Some(v) => {
                    total_c += c;
                    total_q += c * v;
                }
                None => {
                    known = false;
                    break;
                }
            }
        }
        if !known || total_c <= 0.0 {
            continue;
        }
        let v_after = total_q / total_c;

        // The victim is whichever node moves the most.
        let mut victim = None;
        let mut worst = 0.0;
        for node in group_a.iter().chain(&group_b) {
            let v_before = stored_voltage(&state, stored, *node, vdd).expect("checked above");
            let droop = (v_before - v_after).abs();
            if droop > worst {
                worst = droop;
                victim = Some((*node, v_before));
            }
        }
        let Some((victim, v_before)) = victim else {
            continue;
        };
        if worst > threshold_fraction * vdd {
            let mut group: Vec<NodeId> = group_a.iter().chain(&group_b).copied().collect();
            group.sort();
            events.push(ChargeSharingEvent {
                transistor: tid,
                group,
                victim,
                v_before,
                v_after,
            });
        }
    }
    events.sort_by_key(|e| e.transistor);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosnet::network::NetworkBuilder;
    use mosnet::node::NodeKind;
    use mosnet::units::Farads;
    use mosnet::{Geometry, TransistorKind};

    /// A small dynamic node `a` (10 fF, stores 1) behind an off pass
    /// transistor from a large discharged node `b` (90 fF, stores 0).
    fn dynamic_pair(ca_ff: f64, cb_ff: f64) -> Network {
        let mut b = NetworkBuilder::new("dyn");
        b.power();
        b.ground();
        let en = b.node("en", NodeKind::Input);
        let na = b.node("a", NodeKind::Internal);
        let nb = b.node("b", NodeKind::Internal);
        b.set_capacitance(na, Farads::from_femto(ca_ff));
        b.set_capacitance(nb, Farads::from_femto(cb_ff));
        b.add_transistor(
            TransistorKind::NEnhancement,
            en,
            na,
            nb,
            Geometry::default(),
        );
        b.build().expect("valid")
    }

    fn tech() -> Technology {
        let mut t = Technology::nominal();
        // Zero parasitics keep the arithmetic exact for the tests.
        t.cox_per_area = 0.0;
        t.cj_per_width = 0.0;
        t
    }

    #[test]
    fn detects_droop_onto_large_discharged_node() {
        let net = dynamic_pair(10.0, 90.0);
        let en = net.node_by_name("en").unwrap();
        let a = net.node_by_name("a").unwrap();
        let b = net.node_by_name("b").unwrap();
        let stored = HashMap::from([(a, true), (b, false)]);
        let events =
            charge_sharing_events(&net, &tech(), &HashMap::from([(en, false)]), &stored, 0.2);
        assert_eq!(events.len(), 1);
        let e = &events[0];
        assert_eq!(e.victim, a);
        assert!((e.v_before - 5.0).abs() < 1e-9);
        // 10 fF at 5 V into 100 fF total: 0.5 V.
        assert!((e.v_after - 0.5).abs() < 1e-9, "v_after {}", e.v_after);
        assert!((e.droop() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn balanced_capacitance_still_reported_at_low_threshold() {
        let net = dynamic_pair(50.0, 50.0);
        let a = net.node_by_name("a").unwrap();
        let b = net.node_by_name("b").unwrap();
        let en = net.node_by_name("en").unwrap();
        let stored = HashMap::from([(a, true), (b, false)]);
        let inputs = HashMap::from([(en, false)]);
        let events = charge_sharing_events(&net, &tech(), &inputs, &stored, 0.4);
        // Both nodes move by 2.5 V = 0.5 vdd > 0.4 vdd.
        assert_eq!(events.len(), 1);
        // With a stricter threshold the event disappears.
        let events = charge_sharing_events(&net, &tech(), &inputs, &stored, 0.6);
        assert!(events.is_empty());
    }

    #[test]
    fn driven_side_suppresses_event() {
        // If `b` hangs on a conducting path to ground, turning on the pass
        // gate is a write, not charge sharing.
        let mut bld = NetworkBuilder::new("driven");
        bld.power();
        let gnd = bld.ground();
        let en = bld.node("en", NodeKind::Input);
        let hold = bld.node("hold", NodeKind::Input);
        let na = bld.node("a", NodeKind::Internal);
        let nb = bld.node("b", NodeKind::Internal);
        bld.set_capacitance(na, Farads::from_femto(10.0));
        bld.set_capacitance(nb, Farads::from_femto(90.0));
        bld.add_transistor(
            TransistorKind::NEnhancement,
            en,
            na,
            nb,
            Geometry::default(),
        );
        bld.add_transistor(
            TransistorKind::NEnhancement,
            hold,
            nb,
            gnd,
            Geometry::default(),
        );
        let net = bld.build().unwrap();
        let a = net.node_by_name("a").unwrap();
        let stored = HashMap::from([(a, true)]);
        // hold = 1 drives b low: no event.
        let inputs = HashMap::from([(en, false), (hold, true)]);
        let events = charge_sharing_events(&net, &tech(), &inputs, &stored, 0.2);
        assert!(events.is_empty());
        // hold = 0 leaves b floating: event appears (if b's value assumed).
        let b = net.node_by_name("b").unwrap();
        let stored = HashMap::from([(a, true), (b, false)]);
        let inputs = HashMap::from([(en, false), (hold, false)]);
        let events = charge_sharing_events(&net, &tech(), &inputs, &stored, 0.2);
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn unknown_floating_values_are_skipped() {
        let net = dynamic_pair(10.0, 90.0);
        let en = net.node_by_name("en").unwrap();
        let inputs = HashMap::from([(en, false)]);
        // No stored assumptions: nothing to corrupt, no events.
        let events = charge_sharing_events(&net, &tech(), &inputs, &HashMap::new(), 0.1);
        assert!(events.is_empty());
    }

    #[test]
    fn conducting_transistors_produce_no_events() {
        let net = dynamic_pair(10.0, 90.0);
        let en = net.node_by_name("en").unwrap();
        let a = net.node_by_name("a").unwrap();
        let b = net.node_by_name("b").unwrap();
        let stored = HashMap::from([(a, true), (b, false)]);
        // en = 1: the pass gate is already on; the groups are merged.
        let inputs = HashMap::from([(en, true)]);
        let events = charge_sharing_events(&net, &tech(), &inputs, &stored, 0.1);
        assert!(events.is_empty());
    }

    #[test]
    fn pass_chain_taps_share_with_isolated_head() {
        use mosnet::generators::{pass_chain, Style};
        // ctl off: the chain taps float. Assume the head (drv) stores 1
        // and the taps store 0; turning on the first pass transistor
        // would droop drv... but drv is driven by the inverter, so the
        // real events come from tap-to-tap merges deeper in the chain.
        let net = pass_chain(
            Style::Cmos,
            3,
            Farads::from_femto(50.0),
            Farads::from_femto(50.0),
        )
        .unwrap();
        let ctl = net.node_by_name("ctl").unwrap();
        let p1 = net.node_by_name("p1").unwrap();
        let p2 = net.node_by_name("p2").unwrap();
        let out = net.node_by_name("out").unwrap();
        let stored = HashMap::from([(p1, true), (p2, false), (out, false)]);
        let inputs = HashMap::from([(ctl, false)]);
        let events = charge_sharing_events(&net, &Technology::nominal(), &inputs, &stored, 0.3);
        // p1 (stores 1) merging into p2 or out (store 0) must be flagged.
        assert!(
            events.iter().any(|e| e.victim == p1),
            "expected a droop event for p1, got {events:?}"
        );
    }
}
